//! Property-based invariants spanning the workspace crates.

use aaltune::dnn_graph::task::{TuningTask, Workload};
use aaltune::dnn_graph::TaskKind;
use aaltune::gpu_sim::{GpuDevice, Measurer, SimMeasurer};
use aaltune::schedule::feature::{feature_len, features};
use aaltune::schedule::neighborhood::{distance, sample_neighborhood};
use aaltune::schedule::template::space_for_task;
use aaltune::schedule::{ConfigSpace, Knob};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// An arbitrary small-but-varied configuration space.
fn arb_space() -> impl Strategy<Value = ConfigSpace> {
    let split = (2usize..=256, 2usize..=4)
        .prop_map(|(extent, outs)| Knob::split(format!("s{extent}_{outs}"), extent, outs));
    let choice = proptest::collection::vec(-4i64..100, 1..5)
        .prop_map(|vs| Knob::choice(format!("c{}", vs.len()), vs));
    proptest::collection::vec(prop_oneof![split, choice], 1..5)
        .prop_map(|knobs| ConfigSpace::new("prop", knobs))
}

/// An arbitrary conv workload that the templates accept.
fn arb_conv_task() -> impl Strategy<Value = TuningTask> {
    (
        1usize..=2, // batch
        prop_oneof![Just(3usize), Just(16), Just(32), Just(64)],
        prop_oneof![Just(16usize), Just(32), Just(64), Just(96)],
        prop_oneof![Just(7usize), Just(14), Just(28), Just(56)],
        prop_oneof![Just(1usize), Just(3), Just(5)],
        1usize..=2, // stride
    )
        .prop_map(|(batch, ic, oc, hw, k, s)| {
            let workload = Workload::Conv2d {
                batch,
                in_channels: ic,
                out_channels: oc,
                height: hw,
                width: hw,
                kernel: (k, k),
                stride: (s, s),
                padding: (k / 2, k / 2),
                groups: 1,
            };
            TuningTask {
                kind: TaskKind::Conv2d,
                name: format!("prop.conv{ic}_{oc}_{hw}_{k}_{s}"),
                workload,
                occurrences: 1,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_is_bijective(space in arb_space(), salt in 0u64..1000) {
        let idx = salt % space.len();
        let cfg = space.config(idx).unwrap();
        prop_assert_eq!(space.index_of(&cfg.choices), idx);
        // Choices are always within each knob's cardinality.
        for (&c, k) in cfg.choices.iter().zip(space.knobs()) {
            prop_assert!(c < k.cardinality());
        }
    }

    #[test]
    fn features_have_stable_length_and_are_finite(
        space in arb_space(),
        salt in 0u64..1000,
    ) {
        let idx = salt % space.len();
        let cfg = space.config(idx).unwrap();
        let f = features(&space, &cfg);
        prop_assert_eq!(f.len(), feature_len(&space));
        prop_assert!(f.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn neighborhood_sampling_respects_radius_and_bounds(
        space in arb_space(),
        salt in 0u64..1000,
        radius in 1.0f64..6.0,
    ) {
        let idx = salt % space.len();
        let center = space.config(idx).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(salt);
        for cfg in sample_neighborhood(&space, &center, radius, 64, &mut rng) {
            prop_assert!(distance(&center, &cfg) <= radius + 1e-9);
            prop_assert_ne!(cfg.index, center.index);
            for (&c, k) in cfg.choices.iter().zip(space.knobs()) {
                prop_assert!(c < k.cardinality());
            }
        }
    }

    #[test]
    fn simulated_measurement_is_deterministic_and_sane(
        task in arb_conv_task(),
        salt in 0u64..5000,
    ) {
        let space = space_for_task(&task);
        let idx = salt % space.len();
        let cfg = space.config(idx).unwrap();
        let m = SimMeasurer::new(GpuDevice::gtx_1080_ti());
        let a = m.measure(&task, &space, &cfg);
        let b = m.measure(&task, &space, &cfg);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.gflops >= 0.0);
        if a.is_valid() {
            // Valid measurements have a real latency and never exceed peak.
            prop_assert!(a.latency_s > 0.0);
            prop_assert!(a.gflops * 1e9 < GpuDevice::gtx_1080_ti().peak_flops());
        } else {
            // Failed trials carry the zero penalty, not a latency sentinel.
            prop_assert_eq!(a.gflops, 0.0);
            prop_assert_eq!(a.latency_s, 0.0);
        }
    }

    #[test]
    fn lowering_respects_architectural_limits(
        task in arb_conv_task(),
        salt in 0u64..5000,
    ) {
        use aaltune::schedule::kernel::{limits, lower};
        let space = space_for_task(&task);
        let idx = salt % space.len();
        let cfg = space.config(idx).unwrap();
        if let Ok(spec) = lower(&task, &space, &cfg) {
            prop_assert!(spec.threads_per_block >= 1);
            prop_assert!(spec.threads_per_block <= limits::MAX_THREADS_PER_BLOCK);
            prop_assert!(spec.smem_bytes_per_block <= limits::MAX_SMEM_PER_BLOCK);
            prop_assert!(spec.regs_per_thread <= limits::MAX_REGS_PER_THREAD);
            prop_assert!(spec.grid_blocks >= 1);
            // Output is written exactly once.
            let Workload::Conv2d { batch, out_channels, .. } = task.workload else {
                unreachable!()
            };
            let (oh, ow) = task.workload.out_hw().unwrap();
            let out_bytes = (batch * out_channels * oh * ow) as u64 * 4;
            prop_assert_eq!(spec.gmem_write_bytes, out_bytes);
            // Reads at least cover the weights once.
            prop_assert!(spec.gmem_read_bytes >= out_bytes / (oh * ow).max(1) as u64);
            prop_assert!(spec.read_coalesce_eff > 0.0 && spec.read_coalesce_eff <= 1.0);
            prop_assert!(spec.write_coalesce_eff > 0.0 && spec.write_coalesce_eff <= 1.0);
            prop_assert!(spec.bank_conflict_factor >= 1.0);
        }
    }

    #[test]
    fn tiled_execution_matches_reference_for_any_valid_config(
        salt in 0u64..2000,
    ) {
        use aaltune::dnn_graph::task::TaskKind;
        use tensor_exec::tiled::verify_conv_config;
        // Fixed small workload, arbitrary configuration point.
        let task = TuningTask {
            kind: TaskKind::Conv2d,
            name: "prop.tiled".to_string(),
            workload: Workload::Conv2d {
                batch: 1,
                in_channels: 4,
                out_channels: 8,
                height: 6,
                width: 6,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
                groups: 1,
            },
            occurrences: 1,
        };
        let space = space_for_task(&task);
        let cfg = space.config(salt % space.len()).unwrap();
        let diff = verify_conv_config(&task, &space, &cfg, salt);
        prop_assert!(diff < 1e-4, "config {} diverges by {diff}", cfg.index);
    }

    #[test]
    fn workload_flops_are_consistent_with_shapes(task in arb_conv_task()) {
        let Workload::Conv2d { batch, out_channels, in_channels, kernel, .. } =
            task.workload else { unreachable!() };
        let (oh, ow) = task.workload.out_hw().unwrap();
        let expected =
            2 * (batch * out_channels * oh * ow * in_channels * kernel.0 * kernel.1) as u64;
        prop_assert_eq!(task.flops(), expected);
    }
}

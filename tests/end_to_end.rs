//! Cross-crate integration: model → tasks → spaces → tuning → deployment.

use aaltune::active_learning::{tune_model, tune_task, Method, TuneOptions};
use aaltune::dnn_graph::{models, task::extract_tasks};
use aaltune::gpu_sim::{GpuDevice, SimMeasurer};

fn smoke_opts(seed: u64) -> TuneOptions {
    TuneOptions { seed, ..TuneOptions::smoke() }
}

#[test]
fn every_paper_task_is_tunable_by_the_full_framework() {
    let measurer = SimMeasurer::new(GpuDevice::gtx_1080_ti());
    for model in models::paper_models(1) {
        for task in extract_tasks(&model).iter().step_by(4) {
            let opts = TuneOptions { n_trial: 48, early_stopping: 48, ..smoke_opts(1) };
            let r = tune_task(task, &measurer, Method::BtedBao, &opts);
            assert!(r.best_gflops > 0.0, "{} found no valid configuration", task.name);
        }
    }
}

#[test]
fn model_tuning_beats_pure_random_search() {
    // Any single seed can go either way at a 64-trial smoke budget, so
    // compare seed-averaged deployed latency: the model-guided arm must be
    // at least on par with random search overall.
    let g = models::squeezenet_v1_1(1);
    let measurer = SimMeasurer::new(GpuDevice::gtx_1080_ti());
    let mut random_ms = 0.0;
    let mut ours_ms = 0.0;
    for seed in 0..3 {
        let opts = TuneOptions { n_trial: 64, early_stopping: 64, ..smoke_opts(seed) };
        random_ms += tune_model(&g, &measurer, Method::Random, &opts, 200).latency.mean_ms;
        ours_ms += tune_model(&g, &measurer, Method::BtedBao, &opts, 200).latency.mean_ms;
    }
    assert!(
        ours_ms < random_ms * 1.05,
        "bted+bao {ours_ms} ms (3-seed total) should be at least on par with random {random_ms} ms"
    );
}

#[test]
fn tuning_is_reproducible_across_processes_given_a_seed() {
    // Guards against nondeterminism from HashMap iteration or thread
    // scheduling leaking into results.
    let task = extract_tasks(&models::alexnet(1)).remove(2);
    let measurer = SimMeasurer::new(GpuDevice::gtx_1080_ti());
    let opts = smoke_opts(99);
    let a = tune_task(&task, &measurer, Method::BtedBao, &opts);
    let b = tune_task(&task, &measurer, Method::BtedBao, &opts);
    assert_eq!(a.log, b.log);
    let c = tune_task(&task, &measurer, Method::AutoTvm, &opts);
    let d = tune_task(&task, &measurer, Method::AutoTvm, &opts);
    assert_eq!(c.log, d.log);
}

#[test]
fn different_trial_seeds_give_different_runs() {
    let task = extract_tasks(&models::alexnet(1)).remove(0);
    let measurer = SimMeasurer::new(GpuDevice::gtx_1080_ti());
    let a = tune_task(&task, &measurer, Method::BtedBao, &smoke_opts(1));
    let b = tune_task(&task, &measurer, Method::BtedBao, &smoke_opts(2));
    assert_ne!(a.log, b.log);
}

#[test]
fn deployment_latency_scales_with_model_flops() {
    // VGG-16 (~15.5 GFLOPs) must deploy slower than SqueezeNet (~0.7).
    let measurer = SimMeasurer::new(GpuDevice::gtx_1080_ti());
    let opts = TuneOptions { n_trial: 48, early_stopping: 48, ..smoke_opts(5) };
    let vgg = tune_model(&models::vgg16(1), &measurer, Method::AutoTvm, &opts, 100);
    let sq = tune_model(&models::squeezenet_v1_1(1), &measurer, Method::AutoTvm, &opts, 100);
    assert!(
        vgg.latency.mean_ms > 2.0 * sq.latency.mean_ms,
        "vgg {} ms vs squeezenet {} ms",
        vgg.latency.mean_ms,
        sq.latency.mean_ms
    );
}

//! Persistence and reuse: tuning logs on disk, transfer warm starts.

use aaltune::active_learning::records::TuningLog;
use aaltune::active_learning::transfer::warm_start_configs;
use aaltune::active_learning::{tune_task, Method, TuneOptions};
use aaltune::dnn_graph::{models, task::extract_tasks};
use aaltune::gpu_sim::{GpuDevice, SimMeasurer};
use aaltune::schedule::template::space_for_task;
use std::io::BufReader;

#[test]
fn tuning_log_survives_a_disk_round_trip() {
    let task = extract_tasks(&models::mobilenet_v1(1)).remove(4);
    let measurer = SimMeasurer::new(GpuDevice::gtx_1080_ti());
    let opts = TuneOptions { seed: 17, ..TuneOptions::smoke() };
    let r = tune_task(&task, &measurer, Method::Bted, &opts);

    let dir = std::env::temp_dir().join("aaltune-it-records");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("log.jsonl");
    let file = std::fs::File::create(&path).unwrap();
    r.log.write_jsonl(file).unwrap();

    let back = TuningLog::read_jsonl(BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
    assert_eq!(back, r.log);
    assert_eq!(back.best_gflops(), r.best_gflops);
}

#[test]
fn warm_start_from_a_real_log_lands_in_the_new_space() {
    let tasks = extract_tasks(&models::vgg16(1));
    let prior_task = &tasks[7];
    let new_task = &tasks[8];
    let measurer = SimMeasurer::new(GpuDevice::gtx_1080_ti());
    let opts = TuneOptions { seed: 23, ..TuneOptions::smoke() };
    let prior = tune_task(prior_task, &measurer, Method::AutoTvm, &opts);

    let prior_space = space_for_task(prior_task);
    let new_space = space_for_task(new_task);
    let (warm, stats) = warm_start_configs(&new_space, &prior_space, &prior.log, 16);
    assert!(!warm.is_empty(), "same-family tasks must transfer");
    assert_eq!(stats.transferred, warm.len());
    assert_eq!(stats.stale, 0, "a fresh log has no stale records");
    for cfg in &warm {
        // Every transferred config decodes consistently in the new space.
        let decoded = new_space.config(cfg.index).unwrap();
        assert_eq!(decoded.choices, cfg.choices);
    }
}

#[test]
fn logs_from_different_methods_are_distinguishable() {
    let task = extract_tasks(&models::alexnet(1)).remove(1);
    let measurer = SimMeasurer::new(GpuDevice::gtx_1080_ti());
    let opts = TuneOptions { seed: 29, ..TuneOptions::smoke() };
    let a = tune_task(&task, &measurer, Method::AutoTvm, &opts);
    let b = tune_task(&task, &measurer, Method::BtedBao, &opts);
    assert_eq!(a.log.method, "autotvm");
    assert_eq!(b.log.method, "bted+bao");
    assert_eq!(a.log.task_name, b.log.task_name);
}

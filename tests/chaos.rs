//! Chaos properties: the tuning loop must survive injected measurement
//! faults at any rate — completing its trial budget, never panicking, and
//! keeping the per-trial best curve monotone — and the faulted best must
//! stay close to the fault-free best at moderate rates.

use aaltune::active_learning::{tune_task, Method, TuneOptions};
use aaltune::dnn_graph::{models, task::extract_tasks};
use aaltune::gpu_sim::{
    FaultConfig, FaultInjectingMeasurer, GpuDevice, RetryPolicy, RobustMeasurer, SimMeasurer,
};
use proptest::prelude::*;

fn chaos_tune(rate: f64, fault_seed: u64, tune_seed: u64, n_trial: usize) -> (f64, Vec<f64>) {
    let task = extract_tasks(&models::squeezenet_v1_1(1)).remove(0);
    let sim = SimMeasurer::new(GpuDevice::gtx_1080_ti());
    let faulty = FaultInjectingMeasurer::new(sim, FaultConfig { rate, seed: fault_seed });
    let m = RobustMeasurer::new(faulty, RetryPolicy::default());
    let opts = TuneOptions { n_trial, seed: tune_seed, ..TuneOptions::smoke() };
    let r = tune_task(&task, &m, Method::AutoTvm, &opts);
    let curve: Vec<f64> = r.log.records.iter().map(|t| t.best_gflops).collect();
    (r.best_gflops, curve)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn tuning_survives_any_fault_rate(
        rate in prop_oneof![Just(0.0), Just(0.1), Just(0.5)],
        fault_seed in 0u64..1000,
        tune_seed in 0u64..1000,
    ) {
        let (best, curve) = chaos_tune(rate, fault_seed, tune_seed, 48);
        // The loop completes its full budget even at 50% faults.
        prop_assert_eq!(curve.len(), 48);
        // The running best is monotone non-decreasing and finite.
        for w in curve.windows(2) {
            prop_assert!(w[1] >= w[0], "best curve must be monotone: {curve:?}");
        }
        prop_assert!(curve.iter().all(|b| b.is_finite() && *b >= 0.0));
        prop_assert_eq!(*curve.last().unwrap(), best);
        // Even under heavy chaos something real gets measured.
        prop_assert!(best > 0.0, "no valid trial survived rate {rate}");
    }

    #[test]
    fn faulted_runs_are_deterministic(
        rate in prop_oneof![Just(0.1), Just(0.5)],
        seed in 0u64..1000,
    ) {
        let a = chaos_tune(rate, seed, seed, 32);
        let b = chaos_tune(rate, seed, seed, 32);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn moderate_faults_barely_dent_the_best() {
    // Acceptance: at a 10% fault rate the tuner's best stays within 10%
    // of the fault-free best over the same budget (averaged over seeds to
    // keep the check sharp but stable).
    let (mut clean, mut chaos) = (0.0, 0.0);
    for seed in 0..4u64 {
        clean += chaos_tune(0.0, seed, seed, 96).0;
        chaos += chaos_tune(0.1, seed, seed, 96).0;
    }
    assert!(
        chaos >= 0.9 * clean,
        "10% faults cost more than 10% of best: clean {clean:.1}, chaos {chaos:.1}"
    );
}

//! Locks the quantitative claims the paper makes about the *setup* (not the
//! results): task counts, space sizes, and default hyper-parameters.

use aaltune::active_learning::TuneOptions;
use aaltune::dnn_graph::{models, task::extract_tasks};
use aaltune::schedule::template::space_for_task;

#[test]
fn mobilenet_has_19_tasks_like_fig5() {
    assert_eq!(extract_tasks(&models::mobilenet_v1(1)).len(), 19);
}

#[test]
fn five_models_yield_sixty_two_tasks() {
    // The paper reports 58 nodes; our Relay-free extraction yields 62
    // (the delta is in SqueezeNet/VGG dedup details of TVM v0.6). Locked
    // here so changes are deliberate; EXPERIMENTS.md documents the gap.
    let total: usize = models::paper_models(1).iter().map(|m| extract_tasks(m).len()).sum();
    assert_eq!(total, 62);
}

#[test]
fn vgg_first_node_has_about_point_two_billion_points() {
    let task = extract_tasks(&models::vgg16(1)).remove(0);
    assert_eq!(space_for_task(&task).len(), 202_309_632);
}

#[test]
fn every_space_is_huge_but_indexable() {
    for model in models::paper_models(1) {
        for task in extract_tasks(&model) {
            let space = space_for_task(&task);
            assert!(space.len() >= 1000, "{} suspiciously small", task.name);
            let mid = space.len() / 2;
            let cfg = space.config(mid).unwrap();
            assert_eq!(space.index_of(&cfg.choices), mid);
        }
    }
}

#[test]
fn default_options_match_section_v() {
    let o = TuneOptions::default();
    // "by default, 64 points are sampled ... as the initialization set"
    assert_eq!(o.init_points, 64);
    // "the stopping threshold is set as 400"
    assert_eq!(o.early_stopping, 400);
    // "(V = D, mu = 0.1, M = 500, m = 64, B = 10)"
    assert!((o.bted.mu - 0.1).abs() < 1e-12);
    assert_eq!(o.bted.batch_candidates, 500);
    assert_eq!(o.bted.num_batches, 10);
    // "eta is set as 0.05, Gamma is 2, tau is set as 1.5 ... radius R ... 3"
    assert!((o.bao.eta - 0.05).abs() < 1e-12);
    assert_eq!(o.bao.gamma, 2);
    assert!((o.bao.tau - 1.5).abs() < 1e-12);
    assert!((o.bao.radius - 3.0).abs() < 1e-12);
}

#[test]
fn average_mobilenet_space_size_matches_claim_order() {
    // "On average, each node has more than 50 million configuration points."
    let tasks = extract_tasks(&models::mobilenet_v1(1));
    let mean: f64 =
        tasks.iter().map(|t| space_for_task(t).len() as f64).sum::<f64>() / tasks.len() as f64;
    assert!(mean > 5e6, "mean space size {mean:.3e}");
}

//! Statistical shape of the simulated landscape — the properties that make
//! the paper's comparison meaningful must hold for the substrate itself.

use aaltune::dnn_graph::{models, task::extract_tasks};
use aaltune::gpu_sim::{GpuDevice, Measurer, SimMeasurer};
use aaltune::schedule::template::space_for_task;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn best_of_n_improves_with_n() {
    // A meaningful tuning landscape: more search finds better configs.
    let task = extract_tasks(&models::vgg16(1)).remove(3);
    let space = space_for_task(&task);
    let m = SimMeasurer::new(GpuDevice::gtx_1080_ti());
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let samples: Vec<f64> =
        (0..400).map(|_| m.measure(&task, &space, &space.sample(&mut rng)).gflops).collect();
    let best = |n: usize| samples[..n].iter().cloned().fold(0.0, f64::max);
    assert!(best(400) > best(40), "400 samples must beat 40");
    assert!(best(40) > 0.0, "40 samples find something valid");
}

#[test]
fn every_task_has_a_reachable_valid_region() {
    // No task may be all-invalid (tuning would be impossible), and few may
    // be all-valid (validity cliffs are part of the paper's problem).
    let m = SimMeasurer::new(GpuDevice::gtx_1080_ti());
    let mut any_invalid = false;
    for model in models::paper_models(1) {
        for task in extract_tasks(&model).iter().step_by(3) {
            let space = space_for_task(task);
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let mut valid = 0;
            let total = 80;
            for _ in 0..total {
                let r = m.measure(task, &space, &space.sample(&mut rng));
                if r.is_valid() {
                    valid += 1;
                } else {
                    any_invalid = true;
                }
            }
            assert!(valid > 0, "{} has no valid config in {total} samples", task.name);
        }
    }
    assert!(any_invalid, "some invalid configurations must exist somewhere");
}

#[test]
fn depthwise_layers_are_memory_bound_and_slower_per_flop() {
    // MobileNet's motivation: depth-wise convs run at far lower GFLOPS than
    // dense convs. The substrate must reproduce that or Fig. 4/5 are
    // meaningless.
    let tasks = extract_tasks(&models::mobilenet_v1(1));
    let m = SimMeasurer::new(GpuDevice::gtx_1080_ti());
    let best_gflops = |idx: usize| {
        let space = space_for_task(&tasks[idx]);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        (0..300)
            .map(|_| m.measure(&tasks[idx], &space, &space.sample(&mut rng)).gflops)
            .fold(0.0, f64::max)
    };
    // Task 3 (index 2 is pw 32->64; index 1 is dw 32@112): compare a
    // point-wise (dense matmul-like) conv against its depth-wise sibling.
    let dw = best_gflops(1);
    let pw = best_gflops(2);
    assert!(pw > dw, "point-wise conv ({pw:.0} GFLOPS) should outrun depth-wise ({dw:.0})");
}

#[test]
fn the_jetson_is_much_slower_than_the_1080ti() {
    let task = extract_tasks(&models::resnet18(1)).remove(1);
    let space = space_for_task(&task);
    let big = SimMeasurer::new(GpuDevice::gtx_1080_ti());
    let small = SimMeasurer::new(GpuDevice::jetson_tx2());
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut ratio_sum = 0.0;
    let mut n = 0;
    for _ in 0..60 {
        let cfg = space.sample(&mut rng);
        let a = big.measure(&task, &space, &cfg);
        let b = small.measure(&task, &space, &cfg);
        if a.is_valid() && b.is_valid() {
            ratio_sum += a.gflops / b.gflops;
            n += 1;
        }
    }
    assert!(n > 0);
    let mean_ratio = ratio_sum / f64::from(n);
    assert!(mean_ratio > 3.0, "1080 Ti should be several times faster, got {mean_ratio:.1}x");
}

//! # aaltune — Advanced Active Learning for DNN Hardware Deployment
//!
//! A from-scratch Rust reproduction of *“Deep Neural Network Hardware
//! Deployment Optimization via Advanced Active Learning”* (Sun, Bai, Geng,
//! Yu — DATE 2021): batch transductive experimental design (**BTED**) and
//! Bootstrap-guided adaptive optimization (**BAO**) embedded in an
//! AutoTVM-style schedule auto-tuning loop, evaluated on a simulated
//! GTX 1080 Ti.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`dnn_graph`] — graph IR, fusion, model zoo, tuning-task extraction.
//! * [`schedule`] — configuration spaces, codecs, features, lowering.
//! * [`gpu_sim`] — the GPU performance-model substrate standing in for the
//!   paper's on-chip measurements.
//! * [`gbt`] — gradient-boosted regression trees (the evaluation function).
//! * [`active_learning`] — TED/BTED, BS/BAO, simulated annealing, the
//!   AutoTVM baseline tuner and end-to-end model tuning.
//!
//! # Quickstart
//!
//! ```
//! use aaltune::dnn_graph::{models, task::extract_tasks};
//! use aaltune::gpu_sim::{GpuDevice, SimMeasurer};
//! use aaltune::active_learning::{tune_task, Method, TuneOptions};
//!
//! let model = models::mobilenet_v1(1);
//! let task = extract_tasks(&model).remove(0);
//! let measurer = SimMeasurer::new(GpuDevice::gtx_1080_ti());
//! let opts = TuneOptions { n_trial: 128, seed: 7, ..TuneOptions::default() };
//! let result = tune_task(&task, &measurer, Method::BtedBao, &opts);
//! assert!(result.best_gflops > 0.0);
//! ```

pub use active_learning;
pub use dnn_graph;
pub use executor;
pub use gbt;
pub use gpu_sim;
pub use schedule;
pub use tensor_exec;

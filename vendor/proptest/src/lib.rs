//! Offline stand-in for [`proptest`](https://docs.rs/proptest).
//!
//! Implements the slice of the API this workspace's property tests use:
//! the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], [`prop_oneof!`], [`Just`],
//! [`ProptestConfig`], the [`proptest!`] macro, and the `prop_assert*`
//! macros. Differences from the real crate: no shrinking (a failing case
//! reports its inputs via `Debug` but is not minimized), no persistence of
//! regression files, and a fixed deterministic seed per test function.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A generator of arbitrary values.
///
/// Object-safe: `Box<dyn Strategy<Value = T>>` works (needed by
/// [`prop_oneof!`]).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (for heterogeneous collections).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Boxes a strategy with full type inference (unlike an `as` cast, a call
/// lets integer-literal inference flow: `prop_oneof![Just(3usize), Just(16)]`
/// unifies the `16` to `usize`).
pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies — the engine behind
/// [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds from boxed alternatives (must be non-empty).
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: a fixed size or a range.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec`s of values from `element` with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Seeds the per-test RNG: deterministic per test name, overridable with
/// `PROPTEST_SEED` for reproduction.
#[must_use]
pub fn rng_for_test(name: &str) -> TestRng {
    let base: u64 = std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0);
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
    }
    TestRng::seed_from_u64(h ^ base)
}

/// `prop::` namespace mirror (`prop::collection`, `prop::num`, ...).
pub mod prop {
    pub use crate::collection;
}

/// The usual imports.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Uniform choice among alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $($crate::boxed_strategy($strategy)),+
        ])
    };
}

/// Asserts inside a property (here: a plain panic with context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Case filter: in this stub a failed assumption just skips the case (the
/// test body runs inside a closure, so `return` exits only the case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Declares property tests. Each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` that runs `body` over `cases` sampled inputs,
/// reporting the failing case index on panic (no shrinking; re-run with
/// `PROPTEST_SEED` to vary the stream).
#[macro_export]
macro_rules! proptest {
    // Internal muncher arms must precede the catch-all entry arm.
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let ($($pat,)+) = ($($crate::Strategy::sample(&$strategy, &mut rng),)+);
                // The closure gives prop_assume! an early exit that skips
                // just this case.
                let run = || -> () { $body };
                if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!("proptest: case {case}/{} failed for {}", config.cases, stringify!($name));
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };

    // With an explicit config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    // Without one: default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

//! Offline stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! Implements the API slice the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!` — with a simple warm-up +
//! fixed-sample wall-clock measurement and plain-text reporting instead of
//! the real crate's statistical machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Function name + parameter label, rendered as `name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// Times closures.
pub struct Bencher {
    samples: u32,
}

impl Bencher {
    /// Runs `f` repeatedly, timing each batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        std::hint::black_box(f());
        let mut total = Duration::ZERO;
        let mut n = 0u32;
        let budget = Duration::from_secs(3);
        while n < self.samples && total < budget {
            let start = Instant::now();
            std::hint::black_box(f());
            total += start.elapsed();
            n += 1;
        }
        let mean = total / n.max(1);
        println!("    {n} iterations, mean {mean:?}");
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration target.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = u32::try_from(n).unwrap_or(u32::MAX);
        self
    }

    /// Accepted for API compatibility; the measurement budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        println!("  {}/{}", self.name, id.name);
        let mut b = Bencher { samples: self.sample_size };
        f(&mut b);
        self.criterion.ran += 1;
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        println!("  {}/{}", self.name, id.name);
        let mut b = Bencher { samples: self.sample_size };
        f(&mut b, input);
        self.criterion.ran += 1;
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    ran: usize,
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { name, criterion: self, sample_size: 10 }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        println!("  {name}");
        let mut b = Bencher { samples: 10 };
        f(&mut b);
        self.ran += 1;
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        println!("  {}", id.name);
        let mut b = Bencher { samples: 10 };
        f(&mut b, input);
        self.ran += 1;
        self
    }
}

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which the workspace already uses).
pub use std::hint::black_box;

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

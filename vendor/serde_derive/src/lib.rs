//! Offline stand-in for `serde_derive`.
//!
//! The real crate (and its `syn`/`quote` dependencies) cannot be fetched in
//! this build environment, so the derive input is parsed directly from the
//! `proc_macro` token stream and the generated impls are emitted as source
//! strings. Supported input shapes — which cover everything this workspace
//! derives — are:
//!
//! - structs with named fields, tuple structs (newtype and general), unit
//!   structs;
//! - enums with unit, newtype, tuple, and struct variants (externally-tagged
//!   representation, serde's default);
//! - no generic parameters and no `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree flavour; see the `serde` stub).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive generated invalid Rust for Serialize")
}

/// Derives `serde::Deserialize` (value-tree flavour; see the `serde` stub).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive generated invalid Rust for Deserialize")
}

// ---------------------------------------------------------------------------
// A minimal AST of the derive input
// ---------------------------------------------------------------------------

enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields (we only need the arity).
    Tuple(usize),
    /// No fields at all.
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

/// Skips leading attributes (`#[...]`) starting at `i`; returns the new index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, found {other}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic type `{name}` is not supported");
        }
    }

    let body = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            _ => Body::Struct(Fields::Unit),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive stub: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde_derive stub: `{other}` items are not supported"),
    };

    Item { name, body }
}

/// Parses `name: Type, ...` — returns field names. Commas nested inside
/// groups are invisible (they live in sub-streams); commas inside angle
/// brackets (`HashMap<String, u64>`) are skipped via a `<`/`>` depth count.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let fname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stub: expected `:` after `{fname}`, found {other}"),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(fname);
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    // Tolerate a trailing comma: `(A, B,)` has two fields, not three.
    if let Some(TokenTree::Punct(p)) = tokens.last() {
        if p.as_char() == ',' && depth == 0 {
            count -= 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected variant name, found {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (emitted as source text, then re-parsed)
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            let mut s = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert(\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(m)");
            s
        }
        Body::Struct(Fields::Tuple(1)) => {
            // Newtype struct: transparent, like serde.
            "::serde::Serialize::serialize(&self.0)".to_string()
        }
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::serialize(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(x0) => {{\n\
                         let mut m = ::serde::Map::new();\n\
                         m.insert(\"{vname}\".to_string(), ::serde::Serialize::serialize(x0));\n\
                         ::serde::Value::Object(m)\n}}\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(\"{vname}\".to_string(), ::serde::Value::Array(vec![{}]));\n\
                             ::serde::Value::Object(m)\n}}\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut inner = String::from("let mut fm = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "fm.insert(\"{f}\".to_string(), ::serde::Serialize::serialize({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n{inner}\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(\"{vname}\".to_string(), ::serde::Value::Object(fm));\n\
                             ::serde::Value::Object(m)\n}}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            let mut s = format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                s.push_str(&format!("{f}: ::serde::field(obj, \"{f}\")?,\n"));
            }
            s.push_str("})");
            s
        }
        Body::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))")
        }
        Body::Struct(Fields::Tuple(n)) => {
            let mut s = format!(
                "let arr = v.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}\"))?;\n\
                 if arr.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::Error::expected(\"array of length {n}\", \"{name}\"));\n}}\n\
                 ::std::result::Result::Ok({name}(\n"
            );
            for i in 0..*n {
                s.push_str(&format!("::serde::Deserialize::deserialize(&arr[{i}])?,\n"));
            }
            s.push_str("))");
            s
        }
        Body::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vname}\" => return ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                        // Also accept the `{"Variant": null}` form.
                        keyed_arms.push_str(&format!(
                            "\"{vname}\" => return ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                    Fields::Tuple(1) => keyed_arms.push_str(&format!(
                        "\"{vname}\" => return ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::deserialize(inner).map_err(|e| e.context(\"{vname}\"))?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let mut arm = format!(
                            "\"{vname}\" => {{\n\
                             let arr = inner.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}::{vname}\"))?;\n\
                             if arr.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::expected(\"array of length {n}\", \"{name}::{vname}\"));\n}}\n\
                             return ::std::result::Result::Ok({name}::{vname}(\n"
                        );
                        for i in 0..*n {
                            arm.push_str(&format!(
                                "::serde::Deserialize::deserialize(&arr[{i}])?,\n"
                            ));
                        }
                        arm.push_str("));\n}\n");
                        keyed_arms.push_str(&arm);
                    }
                    Fields::Named(fields) => {
                        let mut arm = format!(
                            "\"{vname}\" => {{\n\
                             let fobj = inner.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}::{vname}\"))?;\n\
                             return ::std::result::Result::Ok({name}::{vname} {{\n"
                        );
                        for f in fields {
                            arm.push_str(&format!("{f}: ::serde::field(fobj, \"{f}\")?,\n"));
                        }
                        arm.push_str("});\n}\n");
                        keyed_arms.push_str(&arm);
                    }
                }
            }
            format!(
                "if let ::std::option::Option::Some(s) = v.as_str() {{\n\
                 match s {{\n{unit_arms}_ => {{}}\n}}\n}}\n\
                 if let ::std::option::Option::Some(obj) = v.as_object() {{\n\
                 if obj.len() == 1 {{\n\
                 let (key, inner) = obj.iter().next().expect(\"len checked\");\n\
                 match key.as_str() {{\n{keyed_arms}_ => {{}}\n}}\n}}\n}}\n\
                 ::std::result::Result::Err(::serde::Error::expected(\"a variant of\", \"{name}\"))"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}

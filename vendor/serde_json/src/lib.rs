//! Offline stand-in for [`serde_json`], built on the `serde` stub's owned
//! [`Value`] tree. Provides `to_string`, `to_string_pretty`, `to_writer`,
//! `from_str`, `from_reader`, `from_value`/`to_value`, and the [`json!`]
//! macro — the slice of the real API this workspace uses.

pub use serde::{Map, Number, Value};

use serde::{de::DeserializeOwned, Serialize};
use std::fmt;

/// A serialization/deserialization error (parse errors and shape mismatches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails for this workspace's types; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.serialize().to_string())
}

/// Serializes `value` to pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Never fails for this workspace's types; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&mut out, &value.serialize(), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer
        .write_all(value.serialize().to_string().as_bytes())
        .map_err(|e| Error::new(format!("i/o error: {e}")))
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Reconstructs `T` from a [`Value`] tree.
///
/// # Errors
///
/// Returns an error when the value's shape does not match `T`.
pub fn from_value<T: DeserializeOwned>(value: &Value) -> Result<T> {
    T::deserialize(value).map_err(Error::from)
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::deserialize(&value).map_err(Error::from)
}

/// Reads all of `reader` and parses it as JSON into `T`.
///
/// # Errors
///
/// Returns an error on I/O failure, malformed JSON, or a shape mismatch.
pub fn from_reader<R: std::io::Read, T: DeserializeOwned>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf).map_err(|e| Error::new(format!("i/o error: {e}")))?;
    from_str(&buf)
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                out.push_str(&Value::String(k.clone()).to_string());
                out.push_str(": ");
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parses a complete JSON document (rejecting trailing garbage).
fn parse_value(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_at(b: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err(Error::new("unexpected end of input"));
    };
    match c {
        b'n' => expect_lit(b, pos, "null", Value::Null),
        b't' => expect_lit(b, pos, "true", Value::Bool(true)),
        b'f' => expect_lit(b, pos, "false", Value::Bool(false)),
        b'"' => parse_string(b, pos).map(Value::String),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_at(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut map = Map::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error::new(format!("expected `:` at byte {pos}")));
                }
                *pos += 1;
                let value = parse_at(b, pos)?;
                map.insert(key, value);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        other => Err(Error::new(format!("unexpected character `{}` at byte {pos}", other as char))),
    }
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err(Error::new("unterminated string"));
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = b.get(*pos) else {
                    return Err(Error::new("unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{08}'),
                    b'f' => out.push('\u{0c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        *pos += 4;
                        let hs = std::str::from_utf8(hex)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        let mut cp = u32::from_str_radix(hs, 16)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        // Surrogate pair?
                        if (0xD800..0xDC00).contains(&cp)
                            && b.get(*pos) == Some(&b'\\')
                            && b.get(*pos + 1) == Some(&b'u')
                        {
                            if let Some(lo_hex) = b.get(*pos + 2..*pos + 6) {
                                if let Ok(lo) = u32::from_str_radix(
                                    std::str::from_utf8(lo_hex).unwrap_or(""),
                                    16,
                                ) {
                                    if (0xDC00..0xE000).contains(&lo) {
                                        cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                        *pos += 6;
                                    }
                                }
                            }
                        }
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                    }
                    other => {
                        return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                    }
                }
            }
            // Multi-byte UTF-8: copy the raw bytes of the code point.
            _ if c >= 0x80 => {
                let start = *pos - 1;
                let len = utf8_len(c);
                let end = start + len;
                let chunk =
                    b.get(start..end).ok_or_else(|| Error::new("truncated utf-8 sequence"))?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| Error::new("invalid utf-8"))?);
                *pos = end;
            }
            _ if c < 0x20 => return Err(Error::new("control character in string")),
            _ => out.push(c as char),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut is_float = false;
    if b.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(&b'e') | Some(&b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(b.get(*pos), Some(&b'+') | Some(&b'-')) {
            *pos += 1;
        }
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii digits");
    if !is_float {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::Number(Number::from_u64(n)));
        }
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::Number(Number::from_i64(n)));
        }
    }
    text.parse::<f64>()
        .map(|x| Value::Number(Number::from_f64(x)))
        .map_err(|_| Error::new(format!("invalid number `{text}`")))
}

/// Builds a [`Value`] from JSON-like literal syntax, e.g.
/// `json!({"key": expr, "list": [1, 2]})`.
///
/// Unlike the real `serde_json::json!`, values are Rust expressions: write
/// nested objects as nested `json!({...})` calls. Any `T: Serialize`
/// expression works as a value.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($key.to_string(), ::serde::Serialize::serialize(&$value)); )*
        $crate::Value::Object(m)
    }};
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( ::serde::Serialize::serialize(&$item) ),* ])
    };
    ($other:expr) => {
        ::serde::Serialize::serialize(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_document() {
        let src =
            r#"{"a": 1, "b": [true, null, -2.5], "c": {"s": "x\ny"}, "d": 18446744073709551615}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"][0].as_bool(), Some(true));
        assert!(v["b"][1].is_null());
        assert_eq!(v["b"][2].as_f64(), Some(-2.5));
        assert_eq!(v["c"]["s"].as_str(), Some("x\ny"));
        assert_eq!(v["d"].as_u64(), Some(u64::MAX));
        let back: Value = from_str(&v.to_string()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn float_round_trip() {
        for x in [0.1, 1.0, -3.5e-9, 123456.789, f64::MAX] {
            let s = Value::from(x).to_string();
            let v: Value = from_str(&s).unwrap();
            assert_eq!(v.as_f64(), Some(x), "{s}");
        }
    }

    #[test]
    fn json_macro_shapes() {
        let name = "abc".to_string();
        let v = json!({"name": name, "n": 3, "nested": json!({"ok": true}), "xs": [1, 2]});
        assert_eq!(v["name"].as_str(), Some("abc"));
        assert_eq!(v["n"].as_u64(), Some(3));
        assert_eq!(v["nested"]["ok"].as_bool(), Some(true));
        assert_eq!(v["xs"][1].as_u64(), Some(2));
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}

//! The owned JSON-like value tree shared by the `serde` and `serde_json`
//! stubs.

use std::fmt;
use std::ops::Index;

/// An insertion-ordered string-keyed map.
///
/// Backed by a `Vec` — objects in this workspace are small (tens of keys at
/// most), and insertion order keeps emitted JSONL human-readable.
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts a key (replacing any existing entry with the same key).
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the key is present.
    #[must_use]
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

impl PartialEq for Map {
    /// Order-insensitive equality (JSON objects are unordered).
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self.iter().all(|(k, v)| other.get(k).is_some_and(|ov| ov == v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// A JSON number: exact for 64-bit integers, `f64` otherwise (matching
/// `serde_json` with the `float_roundtrip` feature closely enough for this
/// workspace).
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Anything else.
    Float(f64),
}

impl Number {
    /// From an unsigned integer.
    #[must_use]
    pub fn from_u64(n: u64) -> Self {
        Number::PosInt(n)
    }

    /// From a signed integer.
    #[must_use]
    pub fn from_i64(n: i64) -> Self {
        if n >= 0 {
            Number::PosInt(n as u64)
        } else {
            Number::NegInt(n)
        }
    }

    /// From a float.
    #[must_use]
    pub fn from_f64(x: f64) -> Self {
        Number::Float(x)
    }

    /// As `f64` (lossy for huge integers).
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(x) => x,
        }
    }

    /// As `u64` if exactly representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) => None,
            Number::Float(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => {
                Some(x as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// As `i64` if exactly representable.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(x)
                if x.fract() == 0.0 && x >= i64::MIN as f64 && x <= i64::MAX as f64 =>
            {
                Some(x as i64)
            }
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            // Mixed representations compare numerically.
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) => {
                if x.is_finite() {
                    // `{}` on f64 is shortest-round-trip; force a decimal
                    // point so floats survive a parse as floats.
                    let s = format!("{x}");
                    if s.contains('.') || s.contains('e') || s.contains('E') {
                        f.write_str(&s)
                    } else {
                        write!(f, "{s}.0")
                    }
                } else {
                    // JSON has no NaN/Infinity; serde_json writes null.
                    f.write_str("null")
                }
            }
        }
    }
}

/// A JSON-like value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// `true` for `Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// As bool, if a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As `f64`, if a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// As `u64`, if an exactly-representable non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As `i64`, if an exactly-representable integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As `&str`, if a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As an array slice, if an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As an object, if an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup (`None` for non-objects or missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Writes `s` as a JSON string literal (with escapes).
fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    /// Compact JSON, like `serde_json::Value`'s `Display`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Shared `Null` for `Index` to return on missing keys.
static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;
    /// `value["key"]` — `Null` for non-objects or missing keys, like
    /// `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self {
                #[allow(unused_comparisons)]
                if (n as i128) < 0 {
                    Value::Number(Number::from_i64(n as i64))
                } else {
                    Value::Number(Number::from_u64(n as u64))
                }
            }
        }
    )*};
}
value_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Number(Number::from_f64(x))
    }
}

impl From<f32> for Value {
    fn from(x: f32) -> Self {
        Value::Number(Number::from_f64(f64::from(x)))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

//! Offline stand-in for [`serde`](https://serde.rs).
//!
//! The build environment has no network access and no registry cache, so the
//! real `serde` cannot be fetched. This crate provides the small slice of its
//! API that the workspace actually uses, built on a simplified data model:
//! serialization goes through an owned JSON-like [`Value`] tree instead of
//! serde's streaming `Serializer`/`Deserializer` visitors.
//!
//! What is supported:
//!
//! - `#[derive(Serialize, Deserialize)]` on structs (named, tuple, unit) and
//!   enums (unit, newtype, tuple, and struct variants) without generics,
//!   via the companion `serde_derive` proc-macro crate (re-exported under the
//!   `derive` feature exactly like the real crate).
//! - Externally-tagged enum representation, matching serde's default.
//! - `serde::de::DeserializeOwned` as a bound alias.
//!
//! `serde_json` (the sibling stub) supplies `to_string`, `from_str`, the
//! `json!` macro, and `Value` re-exports on top of this data model.

mod value;

pub use value::{Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// A (de)serialization error: a message plus an optional path breadcrumb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// "expected X while deserializing Y" helper used by derive output.
    pub fn expected(what: &str, ty: &str) -> Self {
        Error { msg: format!("expected {what} while deserializing {ty}") }
    }

    /// Prefixes the error with a field/variant breadcrumb.
    #[must_use]
    pub fn context(self, path: &str) -> Self {
        Error { msg: format!("{path}: {}", self.msg) }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a JSON-like value.
    fn serialize(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON-like value.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape does not match `Self`.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Bound-alias module mirroring `serde::de`.
pub mod de {
    /// Owned deserialization — with this crate's owned data model every
    /// [`Deserialize`](crate::Deserialize) is `DeserializeOwned`.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Mirror of `serde::ser` for path compatibility.
pub mod ser {
    pub use crate::Serialize;
}

/// Deserializes a struct field: missing keys surface as `Null` (so `Option`
/// fields default to `None`, as with real serde) and errors are annotated
/// with the field name. Used by derive-generated code.
///
/// # Errors
///
/// Propagates the field's [`Deserialize`] error, annotated with `name`.
pub fn field<T: Deserialize>(obj: &Map, name: &str) -> Result<T, Error> {
    let v = obj.get(name).unwrap_or(&Value::Null);
    T::deserialize(v).map_err(|e| e.context(name))
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Number(Number::from_f64(f64::from(*self)))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.serialize());
        }
        Value::Object(m)
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Deterministic output: sort keys.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].serialize());
        }
        Value::Object(m)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", "bool"))
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("string", "char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-char string", "char")),
        }
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", "f64"))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|x| x as f32).ok_or_else(|| Error::expected("number", "f32"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::expected("array", "Vec"))?;
        arr.iter().map(T::deserialize).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::expected("array", "array"))?;
        if arr.len() != N {
            return Err(Error::expected(&format!("array of length {N}"), "array"));
        }
        let items: Result<Vec<T>, Error> = arr.iter().map(T::deserialize).collect();
        items.map(|v| v.try_into().map_err(|_| ()).expect("length checked"))
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::expected("array", "tuple"))?;
                if arr.len() != $len {
                    return Err(Error::expected(concat!("array of length ", stringify!($len)), "tuple"));
                }
                Ok(($($t::deserialize(&arr[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::expected("array", "BTreeSet"))?;
        arr.iter().map(T::deserialize).collect()
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::expected("object", "BTreeMap"))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::deserialize(v)?))).collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::expected("object", "HashMap"))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::deserialize(v)?))).collect()
    }
}

//! Offline stand-in for `rand_chacha`.
//!
//! Provides the `ChaCha8Rng`/`ChaCha12Rng`/`ChaCha20Rng` type names the
//! workspace uses. The underlying generator is the `rand` stub's
//! xoshiro256\*\* core (domain-separated per type), not real ChaCha — every
//! consumer in this workspace only relies on determinism and statistical
//! quality, not on the exact ChaCha key stream.

use rand::{RngCore, SeedableRng, Xoshiro256};

macro_rules! chacha_stub {
    ($(#[$doc:meta] $name:ident, $tag:expr;)*) => {$(
        #[$doc]
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name(Xoshiro256);

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                self.0.step()
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];
            fn from_seed(mut seed: [u8; 32]) -> Self {
                // Domain-separate the generator types so the same seed does
                // not produce identical streams across them.
                seed[0] ^= $tag;
                $name(Xoshiro256::from_seed_bytes(seed))
            }
        }
    )*};
}

chacha_stub! {
    /// Stand-in for `rand_chacha::ChaCha8Rng`.
    ChaCha8Rng, 0x08;
    /// Stand-in for `rand_chacha::ChaCha12Rng`.
    ChaCha12Rng, 0x0C;
    /// Stand-in for `rand_chacha::ChaCha20Rng`.
    ChaCha20Rng, 0x14;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible_and_distinct() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha20Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..4).map(|_| c.next_u64()).collect::<Vec<_>>());
    }
}

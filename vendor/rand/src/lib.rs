//! Offline stand-in for the [`rand`](https://docs.rs/rand/0.8) crate.
//!
//! The build environment cannot fetch crates, so this reimplements the API
//! slice the workspace uses: [`RngCore`], [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`, `fill`), [`SeedableRng`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`). The generator core is
//! xoshiro256\*\* seeded via SplitMix64 — deterministic, fast, and
//! statistically strong, but the streams differ from the real `rand`'s
//! (which only matters to tests with hard-coded expectations).

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from the type's "standard" distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * <$t as Standard>::draw(rng)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * <$t as Standard>::draw(rng)
            }
        }
    )*};
}
range_float!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type (32 bytes for every generator here).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same scheme the
    /// real crate uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Seeds from entropy; this offline stub uses a fixed seed (only tests
    /// and examples would call it).
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9E3779B97F4A7C15)
    }
}

/// SplitMix64 — seed expander.
pub(crate) struct SplitMix64 {
    pub(crate) state: u64,
}

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* core shared by [`rngs::StdRng`] (and re-used, with a
/// different type identity, by the `rand_chacha` stub).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Builds the state from 32 seed bytes (never all-zero).
    #[must_use]
    pub fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0, 0, 0, 0] {
            // All-zero is a fixed point of xoshiro; remap like the real crates.
            s = [0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB, 0x2545F4914F6CDD1D];
        }
        Xoshiro256 { s }
    }

    /// Next 64 bits.
    pub fn step(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Stand-in for `rand::rngs::StdRng` (xoshiro256\*\* here).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> Self {
            StdRng(Xoshiro256::from_seed_bytes(seed))
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Stand-in for `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element (`None` if empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// Distribution machinery (minimal `rand::distributions` mirror).
pub mod distributions {
    pub use super::{SampleRange, Standard};
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        let mut c = rngs::StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let x = rng.gen_range(5usize..17);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&y));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = rngs::StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = rngs::StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}

//! End-to-end model deployment: tune every MobileNet-v1 task, deploy the
//! best configurations, and report the 600-run latency statistics — the
//! per-model protocol behind the paper's Table I.
//!
//! ```text
//! cargo run --release --example tune_mobilenet
//! ```
//!
//! (Uses a reduced per-task budget so the example finishes in about a
//! minute; the `table1` bench binary runs the full protocol.)

use aaltune::active_learning::{tune_model, Method, TuneOptions};
use aaltune::dnn_graph::models;
use aaltune::gpu_sim::{GpuDevice, SimMeasurer};

fn main() {
    let model = models::mobilenet_v1(1);
    let measurer = SimMeasurer::new(GpuDevice::gtx_1080_ti());
    let opts = TuneOptions { n_trial: 192, early_stopping: 192, seed: 7, ..TuneOptions::default() };

    println!("tuning {} ({} conv nodes) with two methods...", model.name, 27);
    for method in [Method::AutoTvm, Method::BtedBao] {
        let r = tune_model(&model, &measurer, method, &opts, 600);
        println!(
            "{:<9} latency = {:.4} ms  variance = {:.4}  ({} measurements total)",
            method.to_string(),
            r.latency.mean_ms,
            r.latency.variance,
            r.total_measurements
        );
        // Show the three biggest per-task wins/losses for context.
        let mut tasks: Vec<_> = r.tasks.iter().collect();
        tasks.sort_by(|a, b| b.best_gflops.total_cmp(&a.best_gflops));
        for t in tasks.iter().take(3) {
            println!(
                "    {:<18} {:8.1} GFLOPS in {} configs",
                t.task_name, t.best_gflops, t.num_measured
            );
        }
    }
}

//! Transfer learning across similar tasks ([17] in the paper): seed a new
//! task's initial set with the best configurations from an already-tuned
//! task of the same template family, then compare cold vs warm tuning.
//!
//! ```text
//! cargo run --release --example transfer_learning
//! ```

use aaltune::active_learning::task_tuning::{drive_loop, TuneHooks};
use aaltune::active_learning::transfer::warm_start_configs;
use aaltune::active_learning::tuner::XgbTuner;
use aaltune::active_learning::{tune_task, Method, TuneOptions};
use aaltune::dnn_graph::{models, task::extract_tasks};
use aaltune::gpu_sim::{GpuDevice, SimMeasurer};
use aaltune::schedule::template::space_for_task;

fn main() {
    let tasks = extract_tasks(&models::vgg16(1));
    // Two 3x3 conv workloads with 512 channels at different resolutions —
    // similar enough for configurations to transfer.
    let prior_task = &tasks[7]; // 512 -> 512 @ 28x28
    let new_task = &tasks[8]; // 512 -> 512 @ 14x14
    let measurer = SimMeasurer::new(GpuDevice::gtx_1080_ti());
    let opts = TuneOptions { n_trial: 256, early_stopping: 256, seed: 5, ..TuneOptions::default() };

    println!("prior task: {prior_task}");
    let prior = tune_task(prior_task, &measurer, Method::AutoTvm, &opts);
    println!("  tuned to {:.1} GFLOPS in {} measurements", prior.best_gflops, prior.num_measured);

    println!("new task:   {new_task}");
    let cold = tune_task(new_task, &measurer, Method::AutoTvm, &opts);

    // Warm start: map the prior task's top configurations into the new
    // task's space and use them as (part of) the initial set.
    let new_space = space_for_task(new_task);
    let prior_space = space_for_task(prior_task);
    let (warm, stats) = warm_start_configs(&new_space, &prior_space, &prior.log, 32);
    println!(
        "  transferred {} warm-start configurations ({} stale records skipped)",
        warm.len(),
        stats.stale
    );
    let mut tuner =
        XgbTuner::new(&new_space, warm, opts.gbt, opts.sa, opts.plan_size, opts.epsilon, opts.seed);
    let warm_run = drive_loop(
        new_task,
        &new_space,
        &mut tuner,
        &measurer,
        Method::AutoTvm,
        &opts,
        TuneHooks::default(),
    );

    println!("  cold: {:7.1} GFLOPS in {} measurements", cold.best_gflops, cold.num_measured);
    println!(
        "  warm: {:7.1} GFLOPS in {} measurements",
        warm_run.best_gflops, warm_run.num_measured
    );
}

//! The framework is "independent of the specific forms of evaluation
//! functions" (Section IV). This example swaps the paper's XGBoost-style
//! evaluation function for closed-form ridge regression inside BAO and
//! compares both under the same budget.
//!
//! ```text
//! cargo run --release --example custom_evaluator
//! ```

use aaltune::active_learning::bao::BaoTuner;
use aaltune::active_learning::bted::bted;
use aaltune::active_learning::task_tuning::{drive_loop, TuneHooks};
use aaltune::active_learning::{Method, RidgeEvaluator, TuneOptions};
use aaltune::dnn_graph::{models, task::extract_tasks};
use aaltune::gpu_sim::{GpuDevice, SimMeasurer};
use aaltune::schedule::template::space_for_task;

fn main() {
    let task = extract_tasks(&models::squeezenet_v1_1(1)).remove(2);
    let space = space_for_task(&task);
    let measurer = SimMeasurer::new(GpuDevice::gtx_1080_ti());
    let opts = TuneOptions { n_trial: 224, early_stopping: 224, seed: 3, ..TuneOptions::default() };

    println!("task: {task}");

    // Paper configuration: BTED init + BAO with the GBT evaluation function.
    let init = bted(&space, &opts.bted, opts.seed);
    let mut gbt_bao = BaoTuner::new(&space, init.clone(), opts.bao, opts.gbt, opts.seed);
    let r = drive_loop(
        &task,
        &space,
        &mut gbt_bao,
        &measurer,
        Method::BtedBao,
        &opts,
        TuneHooks::default(),
    );
    println!(
        "BAO + GBT evaluator:   {:7.1} GFLOPS in {} measurements",
        r.best_gflops, r.num_measured
    );

    // Same loop, ridge-regression evaluation function.
    let mut ridge_bao =
        BaoTuner::with_evaluator(&space, init, opts.bao, || RidgeEvaluator::new(1.0), opts.seed);
    let r = drive_loop(
        &task,
        &space,
        &mut ridge_bao,
        &measurer,
        Method::BtedBao,
        &opts,
        TuneHooks::default(),
    );
    println!(
        "BAO + ridge evaluator: {:7.1} GFLOPS in {} measurements",
        r.best_gflops, r.num_measured
    );
}

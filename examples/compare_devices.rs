//! The same layer tuned for three different GPUs: the best configuration is
//! device-specific, which is the whole reason auto-tuning (rather than a
//! fixed schedule) exists. This exercises the simulator's device presets —
//! the paper's "foreseeable development trend" of ever more hardware
//! platforms.
//!
//! ```text
//! cargo run --release --example compare_devices
//! ```

use aaltune::active_learning::{tune_task, Method, TuneOptions};
use aaltune::dnn_graph::{models, task::extract_tasks};
use aaltune::gpu_sim::{GpuDevice, SimMeasurer};
use aaltune::schedule::template::space_for_task;

fn main() {
    let task = extract_tasks(&models::resnet18(1)).remove(1); // 3x3 conv, 64ch @ 56x56
    let space = space_for_task(&task);
    println!("task: {task}");
    println!("space: {} configurations", space.len());

    let opts =
        TuneOptions { n_trial: 256, early_stopping: 256, seed: 11, ..TuneOptions::default() };
    for device in [GpuDevice::gtx_1080_ti(), GpuDevice::tesla_v100(), GpuDevice::jetson_tx2()] {
        let name = device.name.clone();
        let measurer = SimMeasurer::new(device);
        let r = tune_task(&task, &measurer, Method::BtedBao, &opts);
        let cfg = r.best_config.expect("tuning found a valid configuration");
        let knobs: Vec<String> = space
            .values(&cfg)
            .iter()
            .zip(space.knobs())
            .map(|(v, k)| format!("{}={v:?}", k.name()))
            .collect();
        println!("{name:<14} {:8.1} GFLOPS  best: {}", r.best_gflops, knobs.join(" "));
    }
}

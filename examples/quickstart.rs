//! Quickstart: tune one DNN layer on the simulated GTX 1080 Ti with the
//! paper's full framework (BTED initialization + BAO optimization) and
//! compare against stock AutoTVM.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aaltune::active_learning::{tune_task, Method, TuneOptions};
use aaltune::dnn_graph::{models, task::extract_tasks};
use aaltune::gpu_sim::{GpuDevice, SimMeasurer};

fn main() {
    // 1. Build a model and extract its tuning tasks (one per unique
    //    convolution workload).
    let model = models::mobilenet_v1(1);
    let tasks = extract_tasks(&model);
    println!("{} has {} tuning tasks; tuning the first:", model.name, tasks.len());
    println!("  {}", tasks[0]);

    // 2. Point the tuner at a measurer — here the GPU simulator standing in
    //    for the paper's on-chip tests.
    let measurer = SimMeasurer::new(GpuDevice::gtx_1080_ti());

    // 3. Tune with both methods under the same budget.
    let opts =
        TuneOptions { n_trial: 256, early_stopping: 256, seed: 42, ..TuneOptions::default() };
    for method in [Method::AutoTvm, Method::BtedBao] {
        let result = tune_task(&tasks[0], &measurer, method, &opts);
        println!(
            "  {:<9} best = {:7.1} GFLOPS after {} measurements",
            result.method.to_string(),
            result.best_gflops,
            result.num_measured
        );
    }
}

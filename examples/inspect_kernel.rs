//! Tune a layer, then inspect *why* the winning configuration performs the
//! way it does: occupancy, binding resource, launch geometry, and a tuning
//! hint — the post-mortem a deployment engineer runs on a tuned kernel.
//!
//! ```text
//! cargo run --release --example inspect_kernel
//! ```

use aaltune::active_learning::{tune_task, Method, TuneOptions};
use aaltune::dnn_graph::{models, task::extract_tasks};
use aaltune::gpu_sim::{analyze, GpuDevice, SimMeasurer};
use aaltune::schedule::kernel::lower;
use aaltune::schedule::template::space_for_task;

fn main() {
    let task = extract_tasks(&models::vgg16(1)).remove(4); // 128->256 @ 56x56
    let space = space_for_task(&task);
    let device = GpuDevice::gtx_1080_ti();
    let measurer = SimMeasurer::new(device.clone());

    println!("task:  {task}");
    println!("space: {} configurations\n", space.len());

    let opts = TuneOptions { n_trial: 256, early_stopping: 256, seed: 9, ..TuneOptions::default() };
    let result = tune_task(&task, &measurer, Method::BtedBao, &opts);
    let best = result.best_config.expect("tuning found a valid configuration");

    println!(
        "tuned to {:.1} GFLOPS in {} measurements; best configuration #{}:",
        result.best_gflops, result.num_measured, best.index
    );
    for (knob, value) in space.knobs().iter().zip(space.values(&best)) {
        println!("  {:<22} = {value:?}", knob.name());
    }
    println!();

    let spec = lower(&task, &space, &best).expect("best config is valid");
    let analysis = analyze(&spec, &device, best.index);
    print!("{}", analysis.report());
    println!("  hint: {}", analysis.hint());
}

//! Batch-size scaling: the same convolution tuned at batch 1, 4 and 16.
//! The winning schedule changes with batch size (more batch parallelism
//! lifts occupancy limits), which is why deployments re-tune per serving
//! configuration rather than reusing one schedule.
//!
//! ```text
//! cargo run --release --example batch_scaling
//! ```

use aaltune::active_learning::{tune_task, Method, TuneOptions};
use aaltune::dnn_graph::task::{TaskKind, TuningTask, Workload};
use aaltune::gpu_sim::{GpuDevice, SimMeasurer};

fn conv_task(batch: usize) -> TuningTask {
    TuningTask {
        kind: TaskKind::Conv2d,
        name: format!("batch_scaling.b{batch}"),
        workload: Workload::Conv2d {
            batch,
            in_channels: 128,
            out_channels: 128,
            height: 28,
            width: 28,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
            groups: 1,
        },
        occurrences: 1,
    }
}

fn main() {
    let measurer = SimMeasurer::new(GpuDevice::gtx_1080_ti());
    let opts =
        TuneOptions { n_trial: 224, early_stopping: 224, seed: 21, ..TuneOptions::default() };
    println!("conv2d 128->128 3x3 @ 28x28, tuned per batch size:\n");
    println!("{:>6} | {:>10} | {:>12} | {:>12}", "batch", "GFLOPS", "latency (us)", "GFLOPS/img");
    for batch in [1usize, 4, 16] {
        let task = conv_task(batch);
        let r = tune_task(&task, &measurer, Method::BtedBao, &opts);
        let latency_us = task.flops() as f64 / r.best_gflops / 1e3;
        println!(
            "{:>6} | {:>10.1} | {:>12.1} | {:>12.1}",
            batch,
            r.best_gflops,
            latency_us,
            r.best_gflops / batch as f64
        );
    }
    println!("\nThroughput (GFLOPS) should rise with batch while per-image efficiency varies —");
    println!("the schedule trades occupancy against tile reuse differently at each batch size.");
}

//! Bootstrap bagging of GBT models.
//!
//! Section II-C / III-B of the paper: resample Γ sets of cardinality `|X|`
//! *with replacement* from the measured set, fit one evaluation function per
//! resample, and use the **sum** of the Γ functions as the acquisition
//! score. Bagging reduces the variance of the evaluation function, which is
//! what lets BAO pick configurations more reliably than a single model.

use crate::data::Matrix;
use crate::gbm::{Gbt, GbtParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Γ bootstrap-resampled GBT models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaggedGbt {
    models: Vec<Gbt>,
}

impl BaggedGbt {
    /// Fits `gamma` models, each on an independent bootstrap resample of
    /// `(x, y)` (cardinality preserved, drawn with replacement — Algorithm 3
    /// lines 1–5).
    ///
    /// # Panics
    ///
    /// Panics if `gamma == 0`, `x` is empty, or `y.len() != x.rows()`.
    #[must_use]
    pub fn fit(params: &GbtParams, x: &Matrix, y: &[f64], gamma: usize, seed: u64) -> Self {
        assert!(gamma > 0, "need at least one resample");
        assert!(x.rows() > 0, "cannot fit on an empty dataset");
        assert_eq!(x.rows(), y.len(), "label count mismatch");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = x.rows();
        let models = (0..gamma)
            .map(|g| {
                let indices: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                let xg = x.select_rows(&indices);
                let yg: Vec<f64> = indices.iter().map(|&i| y[i]).collect();
                Gbt::fit(params, &xg, &yg, seed.wrapping_add(g as u64 + 1))
            })
            .collect();
        BaggedGbt { models }
    }

    /// The acquisition score of Algorithm 3 line 6: `Σ_γ f_γ(x)`.
    #[must_use]
    pub fn predict_sum_row(&self, row: &[f64]) -> f64 {
        self.models.iter().map(|m| m.predict_row(row)).sum()
    }

    /// Mean prediction across the bag (the bagged regression estimate).
    #[must_use]
    pub fn predict_mean_row(&self, row: &[f64]) -> f64 {
        self.predict_sum_row(row) / self.models.len() as f64
    }

    /// Disagreement (standard deviation) across the bag — an uncertainty
    /// signal usable for exploration-aware extensions.
    ///
    /// A single-model bag (or a bag fit on constant targets) has no
    /// disagreement: the result is exactly `0.0`, never `NaN`.
    #[must_use]
    pub fn predict_std_row(&self, row: &[f64]) -> f64 {
        let preds: Vec<f64> = self.models.iter().map(|m| m.predict_row(row)).collect();
        let mean = preds.iter().sum::<f64>() / preds.len() as f64;
        let var = preds.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / preds.len() as f64;
        // Guard against tiny negative variance from floating-point
        // cancellation; sqrt of that would be NaN.
        var.max(0.0).sqrt()
    }

    /// Batched bagged mean over every row of `x`.
    ///
    /// One pass per model rather than one per `(model, row)` pair — this is
    /// the prediction entry used by the introspection capture path, where a
    /// whole proposal batch is scored at once.
    #[must_use]
    pub fn predict_mean(&self, x: &Matrix) -> Vec<f64> {
        let mut sums = vec![0.0; x.rows()];
        for m in &self.models {
            for (i, s) in sums.iter_mut().enumerate() {
                *s += m.predict_row(x.row(i));
            }
        }
        let inv = 1.0 / self.models.len() as f64;
        sums.iter().map(|s| s * inv).collect()
    }

    /// Batched bagged standard deviation over every row of `x`.
    ///
    /// Accumulates per-row sum and sum-of-squares across the bag, so the
    /// cost is one prediction per `(model, row)` — the same work
    /// [`Self::predict_mean`] does, not Γ× more.
    #[must_use]
    pub fn predict_std(&self, x: &Matrix) -> Vec<f64> {
        let n = self.models.len() as f64;
        let mut sums = vec![0.0; x.rows()];
        let mut sq_sums = vec![0.0; x.rows()];
        for m in &self.models {
            for i in 0..x.rows() {
                let p = m.predict_row(x.row(i));
                sums[i] += p;
                sq_sums[i] += p * p;
            }
        }
        sums.iter()
            .zip(&sq_sums)
            .map(|(s, s2)| {
                let mean = s / n;
                (s2 / n - mean * mean).max(0.0).sqrt()
            })
            .collect()
    }

    /// Number of models (Γ).
    #[must_use]
    pub fn gamma(&self) -> usize {
        self.models.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    fn data() -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> =
            (0..300).map(|i| vec![(i % 30) as f64, (i / 30) as f64]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| r[0] - 0.5 * r[1]).collect();
        (Matrix::from_rows(&rows), ys)
    }

    #[test]
    fn bag_size_is_gamma() {
        let (x, y) = data();
        let b = BaggedGbt::fit(&GbtParams::default(), &x, &y, 4, 0);
        assert_eq!(b.gamma(), 4);
    }

    #[test]
    fn sum_is_gamma_times_mean() {
        let (x, y) = data();
        let b = BaggedGbt::fit(&GbtParams::default(), &x, &y, 3, 0);
        let row = [5.0, 2.0];
        assert!((b.predict_sum_row(&row) - 3.0 * b.predict_mean_row(&row)).abs() < 1e-9);
    }

    #[test]
    fn bagged_mean_is_accurate() {
        let (x, y) = data();
        let b = BaggedGbt::fit(&GbtParams::default(), &x, &y, 2, 0);
        let preds: Vec<f64> = (0..x.rows()).map(|i| b.predict_mean_row(x.row(i))).collect();
        assert!(r2(&y, &preds) > 0.95);
    }

    #[test]
    fn bag_members_disagree_somewhere() {
        let (x, y) = data();
        let b = BaggedGbt::fit(&GbtParams::default(), &x, &y, 4, 0);
        let any_disagreement = (0..x.rows()).any(|i| b.predict_std_row(x.row(i)) > 1e-6);
        assert!(any_disagreement, "resampled models should differ");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = data();
        let a = BaggedGbt::fit(&GbtParams::default(), &x, &y, 2, 7);
        let b = BaggedGbt::fit(&GbtParams::default(), &x, &y, 2, 7);
        assert_eq!(a.predict_sum_row(&[1.0, 1.0]), b.predict_sum_row(&[1.0, 1.0]));
    }

    #[test]
    fn single_bag_std_is_exactly_zero() {
        let (x, y) = data();
        let b = BaggedGbt::fit(&GbtParams::default(), &x, &y, 1, 0);
        assert_eq!(b.gamma(), 1);
        for i in 0..x.rows() {
            let s = b.predict_std_row(x.row(i));
            assert_eq!(s, 0.0, "single-model bag cannot disagree with itself");
        }
        assert!(b.predict_std(&x).iter().all(|&s| s == 0.0));
    }

    #[test]
    fn constant_targets_give_zero_std_not_nan() {
        let (x, _) = data();
        let y = vec![3.5; x.rows()];
        let b = BaggedGbt::fit(&GbtParams::default(), &x, &y, 4, 1);
        for i in 0..x.rows() {
            let s = b.predict_std_row(x.row(i));
            assert!(s.is_finite(), "std must never be NaN");
            assert!(s.abs() < 1e-9, "constant targets leave nothing to disagree on: {s}");
            assert!((b.predict_mean_row(x.row(i)) - 3.5).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_row_predicts_are_finite() {
        // Zero-feature training data: trees cannot split, so an empty row
        // is a legal input and must yield the base score, never a panic or
        // NaN.
        let rows: Vec<Vec<f64>> = vec![Vec::new(); 12];
        let y: Vec<f64> = (0..12).map(f64::from).collect();
        let x = Matrix::from_rows(&rows);
        let b = BaggedGbt::fit(&GbtParams::default(), &x, &y, 3, 3);
        let empty: [f64; 0] = [];
        assert!(b.predict_sum_row(&empty).is_finite());
        assert!(b.predict_mean_row(&empty).is_finite());
        let s = b.predict_std_row(&empty);
        assert!(s.is_finite() && s >= 0.0);
    }

    #[test]
    fn batched_predictions_match_row_by_row() {
        let (x, y) = data();
        let b = BaggedGbt::fit(&GbtParams::default(), &x, &y, 3, 5);
        let means = b.predict_mean(&x);
        let stds = b.predict_std(&x);
        for i in 0..x.rows() {
            assert!((means[i] - b.predict_mean_row(x.row(i))).abs() < 1e-9);
            assert!((stds[i] - b.predict_std_row(x.row(i))).abs() < 1e-9);
        }
    }

    #[test]
    fn batched_predict_on_empty_matrix_is_empty() {
        let (x, y) = data();
        let b = BaggedGbt::fit(&GbtParams::default(), &x, &y, 2, 0);
        let none: Vec<Vec<f64>> = Vec::new();
        let m = Matrix::from_rows(&none);
        assert!(b.predict_mean(&m).is_empty());
        assert!(b.predict_std(&m).is_empty());
    }
}

//! Gradient boosting over regression trees.

use crate::data::Matrix;
use crate::tree::{RegressionTree, TreeParams};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Boosting hyper-parameters. Defaults follow AutoTVM's XGBoost cost-model
/// settings (shallow trees, moderate shrinkage).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbtParams {
    /// Number of boosting rounds.
    pub n_rounds: usize,
    /// Learning rate (shrinkage).
    pub eta: f64,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// L2 regularization on leaf weights.
    pub lambda: f64,
    /// Minimum split gain.
    pub gamma: f64,
    /// Minimum hessian mass per child.
    pub min_child_weight: f64,
    /// Row subsampling fraction per round, in `(0, 1]`.
    pub subsample: f64,
    /// Column subsampling fraction per round, in `(0, 1]`.
    pub colsample: f64,
}

impl Default for GbtParams {
    fn default() -> Self {
        GbtParams {
            n_rounds: 60,
            eta: 0.25,
            max_depth: 4,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            subsample: 1.0,
            colsample: 1.0,
        }
    }
}

impl GbtParams {
    fn tree_params(&self) -> TreeParams {
        TreeParams {
            max_depth: self.max_depth,
            lambda: self.lambda,
            gamma: self.gamma,
            min_child_weight: self.min_child_weight,
        }
    }
}

/// A fitted gradient-boosted model for squared-error regression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gbt {
    base_score: f64,
    eta: f64,
    trees: Vec<RegressionTree>,
    num_features: usize,
}

impl Gbt {
    /// Fits a model to `(x, y)` with the given seed for subsampling.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or `y.len() != x.rows()`.
    #[must_use]
    pub fn fit(params: &GbtParams, x: &Matrix, y: &[f64], seed: u64) -> Self {
        assert!(x.rows() > 0, "cannot fit on an empty dataset");
        assert_eq!(x.rows(), y.len(), "label count mismatch");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = x.rows();
        let d = x.cols();
        let base_score = y.iter().sum::<f64>() / n as f64;
        let mut pred = vec![base_score; n];
        let mut trees = Vec::with_capacity(params.n_rounds);
        let tree_params = params.tree_params();
        let all_cols: Vec<usize> = (0..d).collect();
        // One pre-sort of every feature column serves all boosting rounds.
        let order = crate::tree::FeatureOrder::new(x);

        for _ in 0..params.n_rounds {
            // Squared loss: grad = pred - y, hess = 1 (only on sampled rows;
            // off-sample rows get zero weight so the arena code stays simple).
            let mut grad = vec![0.0; n];
            let mut hess = vec![0.0; n];
            for i in 0..n {
                if params.subsample >= 1.0 || rng.gen::<f64>() < params.subsample {
                    grad[i] = pred[i] - y[i];
                    hess[i] = 1.0;
                }
            }
            let columns: Vec<usize> = if params.colsample >= 1.0 {
                all_cols.clone()
            } else {
                let k = ((d as f64 * params.colsample).ceil() as usize).clamp(1, d);
                let mut cols = all_cols.clone();
                cols.shuffle(&mut rng);
                cols.truncate(k);
                cols
            };
            let tree =
                RegressionTree::fit_presorted(&tree_params, x, &grad, &hess, &columns, &order);
            for (i, p) in pred.iter_mut().enumerate() {
                *p += params.eta * tree.predict_row(x.row(i));
            }
            trees.push(tree);
        }
        Gbt { base_score, eta: params.eta, trees, num_features: d }
    }

    /// Predicts one feature row.
    #[must_use]
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.base_score + self.eta * self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>()
    }

    /// Predicts every row of `x`.
    #[must_use]
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|i| self.predict_row(x.row(i))).collect()
    }

    /// Number of trees in the ensemble.
    #[must_use]
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Split-count feature importance (length = feature count).
    #[must_use]
    pub fn feature_importance(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_features];
        for t in &self.trees {
            t.add_split_counts(&mut counts);
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{r2, rmse};

    fn grid_xy(f: impl Fn(f64, f64) -> f64) -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> =
            (0..400).map(|i| vec![(i % 20) as f64, (i / 20) as f64]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| f(r[0], r[1])).collect();
        (Matrix::from_rows(&rows), ys)
    }

    #[test]
    fn fits_additive_function() {
        let (x, y) = grid_xy(|a, b| 3.0 * a - b);
        let m = Gbt::fit(&GbtParams::default(), &x, &y, 0);
        let pred = m.predict(&x);
        assert!(r2(&y, &pred) > 0.98, "r2 = {}", r2(&y, &pred));
    }

    #[test]
    fn fits_interaction() {
        let (x, y) = grid_xy(|a, b| if a > 10.0 && b > 10.0 { 50.0 } else { 0.0 });
        let m = Gbt::fit(&GbtParams::default(), &x, &y, 0);
        assert!(m.predict_row(&[15.0, 15.0]) > 30.0);
        assert!(m.predict_row(&[2.0, 15.0]) < 15.0);
    }

    #[test]
    fn more_rounds_reduce_training_error() {
        let (x, y) = grid_xy(|a, b| (a * 0.7).sin() * 10.0 + b);
        let short = Gbt::fit(&GbtParams { n_rounds: 5, ..GbtParams::default() }, &x, &y, 0);
        let long = Gbt::fit(&GbtParams { n_rounds: 80, ..GbtParams::default() }, &x, &y, 0);
        assert!(rmse(&y, &long.predict(&x)) < rmse(&y, &short.predict(&x)));
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = grid_xy(|a, b| a + b);
        let p = GbtParams { subsample: 0.7, colsample: 0.5, ..GbtParams::default() };
        let a = Gbt::fit(&p, &x, &y, 9);
        let b = Gbt::fit(&p, &x, &y, 9);
        assert_eq!(a.predict_row(&[3.0, 4.0]), b.predict_row(&[3.0, 4.0]));
    }

    #[test]
    fn subsampling_changes_the_model() {
        let (x, y) = grid_xy(|a, b| a * b);
        let p = GbtParams { subsample: 0.5, ..GbtParams::default() };
        let a = Gbt::fit(&p, &x, &y, 1);
        let b = Gbt::fit(&p, &x, &y, 2);
        assert_ne!(a.predict_row(&[7.0, 7.0]), b.predict_row(&[7.0, 7.0]));
    }

    #[test]
    fn importance_finds_informative_feature() {
        let rows: Vec<Vec<f64>> =
            (0..300).map(|i| vec![(i % 17) as f64, ((i * 7) % 5) as f64]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| r[0] * 2.0).collect();
        let x = Matrix::from_rows(&rows);
        let m = Gbt::fit(&GbtParams::default(), &x, &ys, 0);
        let imp = m.feature_importance();
        assert!(imp[0] > imp[1]);
    }

    #[test]
    fn constant_target_predicts_constant() {
        let (x, _) = grid_xy(|_, _| 0.0);
        let y = vec![7.5; x.rows()];
        let m = Gbt::fit(&GbtParams::default(), &x, &y, 0);
        assert!((m.predict_row(&[1.0, 1.0]) - 7.5).abs() < 1e-9);
    }
}

//! A single regression tree with XGBoost-style regularized splits.

use crate::data::Matrix;
use serde::{Deserialize, Serialize};

/// Tree-growing hyper-parameters (a subset of [`crate::GbtParams`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// L2 regularization on leaf weights (XGBoost `lambda`).
    pub lambda: f64,
    /// Minimum gain to split (XGBoost `gamma`).
    pub gamma: f64,
    /// Minimum hessian mass per child (XGBoost `min_child_weight`).
    pub min_child_weight: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams { max_depth: 4, lambda: 1.0, gamma: 0.0, min_child_weight: 1.0 }
    }
}

/// Node arena entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        weight: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Index of the left child (values `< threshold`).
        left: usize,
        /// Index of the right child.
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

/// Per-feature row orderings, computed once per dataset and shared by every
/// tree of a boosting run (the classic pre-sorted GBT layout — split search
/// then costs one linear scan per feature instead of a sort per node).
#[derive(Debug, Clone)]
pub struct FeatureOrder {
    per_feature: Vec<Vec<u32>>,
}

impl FeatureOrder {
    /// Sorts every feature column of `x`.
    #[must_use]
    pub fn new(x: &Matrix) -> Self {
        let per_feature = (0..x.cols())
            .map(|f| {
                let mut idx: Vec<u32> = (0..x.rows() as u32).collect();
                idx.sort_by(|&a, &b| x.get(a as usize, f).total_cmp(&x.get(b as usize, f)));
                idx
            })
            .collect();
        FeatureOrder { per_feature }
    }
}

struct SplitCandidate {
    gain: f64,
    feature: usize,
    threshold: f64,
}

impl RegressionTree {
    /// Fits a tree to gradient/hessian statistics (second-order boosting).
    ///
    /// `columns` restricts split search to a feature subset (column
    /// subsampling); pass all indices for no subsampling.
    ///
    /// # Panics
    ///
    /// Panics if `grad`, `hess` and the matrix disagree on sample count.
    #[must_use]
    pub fn fit(
        params: &TreeParams,
        x: &Matrix,
        grad: &[f64],
        hess: &[f64],
        columns: &[usize],
    ) -> Self {
        let order = FeatureOrder::new(x);
        Self::fit_presorted(params, x, grad, hess, columns, &order)
    }

    /// Like [`RegressionTree::fit`] but reusing pre-sorted feature orders
    /// (one [`FeatureOrder`] serves every tree in a boosting run).
    ///
    /// # Panics
    ///
    /// Panics if `grad`, `hess` and the matrix disagree on sample count.
    #[must_use]
    pub fn fit_presorted(
        params: &TreeParams,
        x: &Matrix,
        grad: &[f64],
        hess: &[f64],
        columns: &[usize],
        order: &FeatureOrder,
    ) -> Self {
        assert_eq!(x.rows(), grad.len(), "gradient length mismatch");
        assert_eq!(x.rows(), hess.len(), "hessian length mismatch");
        let mut tree = RegressionTree { nodes: Vec::new() };
        let in_node = vec![true; x.rows()];
        tree.grow(params, x, grad, hess, columns, order, in_node, x.rows(), 0);
        tree
    }

    /// Recursively grows a subtree over the rows flagged in `in_node`;
    /// returns its node index.
    #[allow(clippy::too_many_arguments)]
    fn grow(
        &mut self,
        params: &TreeParams,
        x: &Matrix,
        grad: &[f64],
        hess: &[f64],
        columns: &[usize],
        order: &FeatureOrder,
        in_node: Vec<bool>,
        n_rows: usize,
        depth: usize,
    ) -> usize {
        let mut g = 0.0;
        let mut h = 0.0;
        for (i, &inside) in in_node.iter().enumerate() {
            if inside {
                g += grad[i];
                h += hess[i];
            }
        }

        let make_leaf = |nodes: &mut Vec<Node>| {
            let weight = -g / (h + params.lambda);
            nodes.push(Node::Leaf { weight });
            nodes.len() - 1
        };

        if depth >= params.max_depth || n_rows < 2 {
            return make_leaf(&mut self.nodes);
        }

        let best = Self::best_split(params, x, grad, hess, columns, order, &in_node, g, h);
        let Some(split) = best else {
            return make_leaf(&mut self.nodes);
        };

        let mut left_mask = vec![false; in_node.len()];
        let mut right_mask = vec![false; in_node.len()];
        let mut n_left = 0;
        let mut n_right = 0;
        for (i, &inside) in in_node.iter().enumerate() {
            if !inside {
                continue;
            }
            if x.get(i, split.feature) < split.threshold {
                left_mask[i] = true;
                n_left += 1;
            } else {
                right_mask[i] = true;
                n_right += 1;
            }
        }

        // Reserve this node's slot before the children claim indices.
        let id = self.nodes.len();
        self.nodes.push(Node::Leaf { weight: 0.0 });
        let left = self.grow(params, x, grad, hess, columns, order, left_mask, n_left, depth + 1);
        let right =
            self.grow(params, x, grad, hess, columns, order, right_mask, n_right, depth + 1);
        self.nodes[id] =
            Node::Split { feature: split.feature, threshold: split.threshold, left, right };
        id
    }

    /// Exact greedy split search over pre-sorted feature orders: one linear
    /// scan per candidate feature.
    #[allow(clippy::too_many_arguments)]
    fn best_split(
        params: &TreeParams,
        x: &Matrix,
        grad: &[f64],
        hess: &[f64],
        columns: &[usize],
        order: &FeatureOrder,
        in_node: &[bool],
        g_total: f64,
        h_total: f64,
    ) -> Option<SplitCandidate> {
        let score = |g: f64, h: f64| g * g / (h + params.lambda);
        let parent = score(g_total, h_total);
        let mut best: Option<SplitCandidate> = None;
        for &feature in columns {
            let sorted = &order.per_feature[feature];
            let mut gl = 0.0;
            let mut hl = 0.0;
            // Pending boundary: value of the last in-node row scanned.
            let mut prev: Option<f64> = None;
            for &ri in sorted {
                let i = ri as usize;
                if !in_node[i] {
                    continue;
                }
                let v = x.get(i, feature);
                if let Some(pv) = prev {
                    if v > pv {
                        let hr = h_total - hl;
                        if hl >= params.min_child_weight && hr >= params.min_child_weight {
                            let gain = 0.5 * (score(gl, hl) + score(g_total - gl, hr) - parent)
                                - params.gamma;
                            if gain > 0.0 && best.as_ref().is_none_or(|b| gain > b.gain) {
                                best = Some(SplitCandidate {
                                    gain,
                                    feature,
                                    threshold: 0.5 * (pv + v),
                                });
                            }
                        }
                    }
                }
                gl += grad[i];
                hl += hess[i];
                prev = Some(v);
            }
        }
        best
    }

    /// Predicts the leaf weight for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is shorter than a split feature index (i.e. the row
    /// does not come from the training feature layout).
    #[must_use]
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut id = 0;
        loop {
            match &self.nodes[id] {
                Node::Leaf { weight } => return *weight,
                Node::Split { feature, threshold, left, right } => {
                    id = if row[*feature] < *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Accumulates split counts per feature into `counts` (a crude feature
    /// importance).
    pub fn add_split_counts(&self, counts: &mut [usize]) {
        for n in &self.nodes {
            if let Node::Split { feature, .. } = n {
                counts[*feature] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Squared-loss stats for boosting from zero: grad = -y, hess = 1.
    fn stats(ys: &[f64]) -> (Vec<f64>, Vec<f64>) {
        (ys.iter().map(|y| -y).collect(), vec![1.0; ys.len()])
    }

    #[test]
    fn single_leaf_when_no_split_improves() {
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0]]);
        let (g, h) = stats(&[5.0, 5.0, 5.0]);
        let t = RegressionTree::fit(&TreeParams::default(), &x, &g, &h, &[0]);
        assert_eq!(t.num_nodes(), 1);
        // weight = sum(y)/(n + lambda) = 15/4.
        assert!((t.predict_row(&[1.0]) - 3.75).abs() < 1e-12);
    }

    #[test]
    fn splits_a_step_function() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 10.0 }).collect();
        let x = Matrix::from_rows(&rows);
        let (g, h) = stats(&ys);
        let t = RegressionTree::fit(&TreeParams::default(), &x, &g, &h, &[0]);
        assert!(t.predict_row(&[2.0]) < 1.0);
        assert!(t.predict_row(&[15.0]) > 8.0);
    }

    #[test]
    fn respects_max_depth() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let x = Matrix::from_rows(&rows);
        let (g, h) = stats(&ys);
        let p = TreeParams { max_depth: 1, ..TreeParams::default() };
        let t = RegressionTree::fit(&p, &x, &g, &h, &[0]);
        // Depth-1 tree: one split, two leaves.
        assert_eq!(t.num_nodes(), 3);
    }

    #[test]
    fn column_subset_ignores_other_features() {
        // Feature 0 is informative, feature 1 is allowed: tree must not use 0.
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, 0.0]).collect();
        let ys: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let x = Matrix::from_rows(&rows);
        let (g, h) = stats(&ys);
        let t = RegressionTree::fit(&TreeParams::default(), &x, &g, &h, &[1]);
        assert_eq!(t.num_nodes(), 1, "constant allowed feature cannot split");
    }

    #[test]
    fn split_counts_track_used_features() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, (i % 2) as f64]).collect();
        let ys: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let x = Matrix::from_rows(&rows);
        let (g, h) = stats(&ys);
        let t = RegressionTree::fit(&TreeParams::default(), &x, &g, &h, &[0, 1]);
        let mut counts = vec![0, 0];
        t.add_split_counts(&mut counts);
        assert!(counts[0] > 0);
    }
}

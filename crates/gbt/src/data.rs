//! Row-major feature matrix.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64` features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn new(data: Vec<f64>, rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { data, rows, cols }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    #[must_use]
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Self {
        let cols = rows.first().map_or(0, |r| r.as_ref().len());
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.as_ref().len(), cols, "ragged rows");
            data.extend_from_slice(r.as_ref());
        }
        Matrix { data, rows: rows.len(), cols }
    }

    /// Number of rows (samples).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(col < self.cols, "column out of range");
        self.data[row * self.cols + col]
    }

    /// Consumes the matrix, returning its flat row-major buffer — hot
    /// scoring loops recycle the allocation across batches.
    #[must_use]
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// A new matrix containing the given rows (duplicates allowed — this is
    /// how bootstrap resamples are materialized).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix { data, rows: indices.len(), cols: self.cols }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_get() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn select_rows_with_duplicates() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let s = m.select_rows(&[2, 2, 0]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(0), &[3.0]);
        assert_eq!(s.row(1), &[3.0]);
        assert_eq!(s.row(2), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
    }
}

//! Gradient-boosted regression trees, from scratch.
//!
//! The paper's evaluation function is XGBoost regression (reference \[15\] in the
//! paper); AutoTVM fits it on `(configuration features → measured
//! throughput)` pairs after every measurement batch. This crate provides an
//! equivalent second-order gradient-boosting implementation:
//!
//! * [`tree::RegressionTree`] — exact greedy splits with XGBoost's
//!   regularized gain and leaf weights;
//! * [`Gbt`] — shrinkage, row subsampling, column subsampling, early
//!   stopping on a validation slice;
//! * [`BaggedGbt`] — Γ bootstrap-resampled models whose *sum* is the
//!   acquisition score, the exact object Algorithm 3 (BS) maximizes;
//! * [`metrics`] — RMSE, R², Spearman rank correlation.
//!
//! # Example
//!
//! ```
//! use gbt::{Gbt, GbtParams, Matrix};
//!
//! // y = x0 + 2*x1, learnable exactly by boosting on two features.
//! let xs: Vec<Vec<f64>> = (0..200)
//!     .map(|i| vec![(i % 10) as f64, (i / 10 % 10) as f64])
//!     .collect();
//! let ys: Vec<f64> = xs.iter().map(|r| r[0] + 2.0 * r[1]).collect();
//! let x = Matrix::from_rows(&xs);
//! let model = Gbt::fit(&GbtParams::default(), &x, &ys, 42);
//! let pred = model.predict_row(&[3.0, 4.0]);
//! assert!((pred - 11.0).abs() < 1.0);
//! ```

pub mod bagging;
pub mod data;
pub mod gbm;
pub mod metrics;
pub mod tree;

pub use bagging::BaggedGbt;
pub use data::Matrix;
pub use gbm::{Gbt, GbtParams};
pub use tree::RegressionTree;

//! Regression quality metrics.

/// Root-mean-square error.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn rmse(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty inputs");
    let mse =
        truth.iter().zip(pred).map(|(t, p)| (t - p) * (t - p)).sum::<f64>() / truth.len() as f64;
    mse.sqrt()
}

/// Coefficient of determination R². 1.0 is perfect; 0.0 is the mean
/// predictor; negative is worse than the mean.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn r2(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty inputs");
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_res: f64 = truth.iter().zip(pred).map(|(t, p)| (t - p) * (t - p)).sum();
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Average rank of each value (ties share the average of their positions).
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation — the metric that matters for a tuner's cost
/// model, since only the *ordering* of candidates drives selection.
///
/// # Panics
///
/// Panics if the slices differ in length or have fewer than 2 items.
#[must_use]
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(a.len() >= 2, "need at least two samples");
    let ra = ranks(a);
    let rb = ranks(b);
    let n = a.len() as f64;
    let ma = ra.iter().sum::<f64>() / n;
    let mb = rb.iter().sum::<f64>() / n;
    let cov: f64 = ra.iter().zip(&rb).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = ra.iter().map(|x| (x - ma) * (x - ma)).sum();
    let vb: f64 = rb.iter().map(|y| (y - mb) * (y - mb)).sum();
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_zero_on_perfect() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn rmse_known_value() {
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn r2_perfect_and_mean() {
        let y = [1.0, 2.0, 3.0, 4.0];
        assert!((r2(&y, &y) - 1.0).abs() < 1e-12);
        let mean = [2.5, 2.5, 2.5, 2.5];
        assert!(r2(&y, &mean).abs() < 1e-12);
    }

    #[test]
    fn spearman_monotone_is_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 100.0, 1000.0, 10000.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_reversed_is_minus_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 2.0, 3.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 10.0, 5.0]), vec![2.5, 2.5, 1.0]);
    }
}

//! Property-based invariants of the boosting implementation.

use gbt::{BaggedGbt, Gbt, GbtParams, Matrix, RegressionTree};
use proptest::prelude::*;

/// An arbitrary small regression dataset with finite values.
fn arb_dataset() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    (2usize..6, 5usize..60).prop_flat_map(|(d, n)| {
        let rows =
            proptest::collection::vec(proptest::collection::vec(-100.0f64..100.0, d..=d), n..=n);
        let ys = proptest::collection::vec(-1000.0f64..1000.0, n..=n);
        (rows, ys)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn predictions_are_finite_everywhere((rows, ys) in arb_dataset()) {
        let x = Matrix::from_rows(&rows);
        let m = Gbt::fit(&GbtParams { n_rounds: 10, ..GbtParams::default() }, &x, &ys, 1);
        for r in &rows {
            prop_assert!(m.predict_row(r).is_finite());
        }
        // Extrapolation stays finite too.
        let far: Vec<f64> = vec![1e9; rows[0].len()];
        prop_assert!(m.predict_row(&far).is_finite());
    }

    #[test]
    fn training_never_increases_rmse_vs_mean_predictor((rows, ys) in arb_dataset()) {
        let x = Matrix::from_rows(&rows);
        let m = Gbt::fit(&GbtParams { n_rounds: 20, ..GbtParams::default() }, &x, &ys, 2);
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let mean_pred = vec![mean; ys.len()];
        let rmse_mean = gbt::metrics::rmse(&ys, &mean_pred);
        let rmse_model = gbt::metrics::rmse(&ys, &m.predict(&x));
        // Squared-loss boosting from the mean cannot do worse on training
        // data (allow tiny numeric slack).
        prop_assert!(rmse_model <= rmse_mean + 1e-9,
            "model rmse {rmse_model} vs mean {rmse_mean}");
    }

    #[test]
    fn single_tree_predicts_group_means_for_pure_splits(split_at in 1usize..9) {
        // A one-feature step function: any depth-1 tree must recover it.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> =
            (0..10).map(|i| if i < split_at { -5.0 } else { 5.0 }).collect();
        let x = Matrix::from_rows(&rows);
        let grad: Vec<f64> = ys.iter().map(|y| -y).collect();
        let hess = vec![1.0; ys.len()];
        let tree = RegressionTree::fit(
            &gbt::tree::TreeParams { max_depth: 1, lambda: 1e-9, ..Default::default() },
            &x,
            &grad,
            &hess,
            &[0],
        );
        prop_assert!(tree.predict_row(&[0.0]) < 0.0);
        prop_assert!(tree.predict_row(&[9.0]) > 0.0);
    }

    #[test]
    fn bagging_mean_is_average_of_members((rows, ys) in arb_dataset(), gamma in 1usize..5) {
        let x = Matrix::from_rows(&rows);
        let b = BaggedGbt::fit(
            &GbtParams { n_rounds: 5, ..GbtParams::default() },
            &x,
            &ys,
            gamma,
            3,
        );
        prop_assert_eq!(b.gamma(), gamma);
        let row = &rows[0];
        let sum = b.predict_sum_row(row);
        let mean = b.predict_mean_row(row);
        prop_assert!((sum - mean * gamma as f64).abs() < 1e-9);
        prop_assert!(b.predict_std_row(row) >= 0.0);
    }

    #[test]
    fn metrics_are_scale_consistent(scale in 0.1f64..10.0) {
        let truth = [1.0, 2.0, 3.0, 4.0];
        let pred = [1.1, 2.2, 2.9, 4.3];
        let scaled_truth: Vec<f64> = truth.iter().map(|v| v * scale).collect();
        let scaled_pred: Vec<f64> = pred.iter().map(|v| v * scale).collect();
        // RMSE scales linearly; Spearman is scale-invariant.
        let r1 = gbt::metrics::rmse(&truth, &pred);
        let r2 = gbt::metrics::rmse(&scaled_truth, &scaled_pred);
        prop_assert!((r2 - r1 * scale).abs() < 1e-9);
        let s1 = gbt::metrics::spearman(&truth, &pred);
        let s2 = gbt::metrics::spearman(&scaled_truth, &scaled_pred);
        prop_assert!((s1 - s2).abs() < 1e-12);
    }
}

//! Shape inference for every operator.

use crate::error::GraphError;
use crate::ops::Op;
use crate::tensor::Shape;

fn mismatch(op: &Op, detail: impl Into<String>) -> GraphError {
    GraphError::ShapeMismatch { op: op.name().to_string(), detail: detail.into() }
}

fn expect_rank(op: &Op, s: &Shape, rank: usize) -> Result<(), GraphError> {
    if s.rank() != rank {
        return Err(mismatch(op, format!("expected rank-{rank} input, got {s}")));
    }
    Ok(())
}

/// Computes the output shape of `op` applied to `inputs`.
///
/// # Errors
///
/// Returns [`GraphError::ArityMismatch`] for a wrong input count and
/// [`GraphError::ShapeMismatch`] for incompatible extents.
pub fn infer_shape(op: &Op, inputs: &[&Shape]) -> Result<Shape, GraphError> {
    let arity_err = |expected: usize| GraphError::ArityMismatch {
        op: op.name().to_string(),
        expected,
        got: inputs.len(),
    };
    match op {
        Op::Input(shape) => {
            if !inputs.is_empty() {
                return Err(arity_err(0));
            }
            Ok(shape.clone())
        }
        Op::Conv2d(a) => {
            let [x] = inputs else { return Err(arity_err(1)) };
            expect_rank(op, x, 4)?;
            if x.dim(1) != a.in_channels {
                return Err(mismatch(
                    op,
                    format!("input has {} channels, attrs expect {}", x.dim(1), a.in_channels),
                ));
            }
            if a.groups == 0 || a.in_channels % a.groups != 0 || a.out_channels % a.groups != 0 {
                return Err(mismatch(op, format!("invalid groups {}", a.groups)));
            }
            let (oh, ow) = a.out_hw(x.dim(2), x.dim(3));
            Ok(Shape::nchw(x.dim(0), a.out_channels, oh, ow))
        }
        Op::Dense(a) => {
            let [x] = inputs else { return Err(arity_err(1)) };
            expect_rank(op, x, 2)?;
            if x.dim(1) != a.in_features {
                return Err(mismatch(
                    op,
                    format!("input has {} features, attrs expect {}", x.dim(1), a.in_features),
                ));
            }
            Ok(Shape::new(vec![x.dim(0), a.out_features]))
        }
        Op::Pool2d(a) => {
            let [x] = inputs else { return Err(arity_err(1)) };
            expect_rank(op, x, 4)?;
            let (oh, ow) = a.out_hw(x.dim(2), x.dim(3));
            Ok(Shape::nchw(x.dim(0), x.dim(1), oh, ow))
        }
        Op::GlobalAvgPool => {
            let [x] = inputs else { return Err(arity_err(1)) };
            expect_rank(op, x, 4)?;
            Ok(Shape::nchw(x.dim(0), x.dim(1), 1, 1))
        }
        Op::BatchNorm | Op::Relu | Op::Softmax | Op::Dropout | Op::Lrn => {
            let [x] = inputs else { return Err(arity_err(1)) };
            Ok((*x).clone())
        }
        Op::Add => {
            let [a, b] = inputs else { return Err(arity_err(2)) };
            if a != b {
                return Err(mismatch(op, format!("operand shapes differ: {a} vs {b}")));
            }
            Ok((*a).clone())
        }
        Op::Concat => {
            if inputs.len() < 2 {
                return Err(arity_err(2));
            }
            let first = inputs[0];
            expect_rank(op, first, 4)?;
            let mut channels = first.dim(1);
            for x in &inputs[1..] {
                expect_rank(op, x, 4)?;
                if x.dim(0) != first.dim(0) || x.dim(2) != first.dim(2) || x.dim(3) != first.dim(3)
                {
                    return Err(mismatch(
                        op,
                        format!("non-channel extents differ: {first} vs {x}"),
                    ));
                }
                channels += x.dim(1);
            }
            Ok(Shape::nchw(first.dim(0), channels, first.dim(2), first.dim(3)))
        }
        Op::Flatten => {
            let [x] = inputs else { return Err(arity_err(1)) };
            if x.rank() < 2 {
                return Err(mismatch(op, format!("need rank >= 2, got {x}")));
            }
            Ok(Shape::new(vec![x.dim(0), x.num_elements() / x.dim(0)]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Conv2dAttrs, DenseAttrs, Padding};

    #[test]
    fn conv_shape() {
        let op = Op::Conv2d(Conv2dAttrs {
            in_channels: 3,
            out_channels: 96,
            kernel: (11, 11),
            stride: (4, 4),
            padding: Padding::same(2),
            groups: 1,
            bias: true,
        });
        let x = Shape::nchw(1, 3, 224, 224);
        // AlexNet conv1: (224 + 4 - 11)/4 + 1 = 55.
        assert_eq!(infer_shape(&op, &[&x]).unwrap(), Shape::nchw(1, 96, 55, 55));
    }

    #[test]
    fn concat_channels_sum() {
        let a = Shape::nchw(1, 64, 56, 56);
        let b = Shape::nchw(1, 64, 56, 56);
        assert_eq!(infer_shape(&Op::Concat, &[&a, &b]).unwrap(), Shape::nchw(1, 128, 56, 56));
    }

    #[test]
    fn concat_spatial_mismatch() {
        let a = Shape::nchw(1, 64, 56, 56);
        let b = Shape::nchw(1, 64, 28, 28);
        assert!(infer_shape(&Op::Concat, &[&a, &b]).is_err());
    }

    #[test]
    fn flatten_folds_chw() {
        let x = Shape::nchw(2, 256, 6, 6);
        assert_eq!(infer_shape(&Op::Flatten, &[&x]).unwrap(), Shape::new(vec![2, 256 * 36]));
    }

    #[test]
    fn dense_feature_check() {
        let op = Op::Dense(DenseAttrs { in_features: 9216, out_features: 4096, bias: true });
        let good = Shape::new(vec![1, 9216]);
        let bad = Shape::new(vec![1, 100]);
        assert!(infer_shape(&op, &[&good]).is_ok());
        assert!(infer_shape(&op, &[&bad]).is_err());
    }

    #[test]
    fn arity_errors() {
        let x = Shape::nchw(1, 3, 8, 8);
        assert!(matches!(infer_shape(&Op::Relu, &[&x, &x]), Err(GraphError::ArityMismatch { .. })));
        assert!(matches!(infer_shape(&Op::Add, &[&x]), Err(GraphError::ArityMismatch { .. })));
    }

    #[test]
    fn invalid_groups_rejected() {
        let op = Op::Conv2d(Conv2dAttrs {
            in_channels: 6,
            out_channels: 8,
            kernel: (3, 3),
            stride: (1, 1),
            padding: Padding::same(1),
            groups: 4, // 6 % 4 != 0
            bias: false,
        });
        let x = Shape::nchw(1, 6, 8, 8);
        assert!(infer_shape(&op, &[&x]).is_err());
    }
}

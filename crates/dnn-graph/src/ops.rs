//! Operator set.
//!
//! These are the operators needed to express the five models evaluated in the
//! paper (AlexNet, ResNet-18, VGG-16, MobileNet-v1, SqueezeNet-v1.1):
//! convolutions (standard, grouped/depth-wise and 1×1 point-wise all share
//! [`Op::Conv2d`]), dense layers, pooling, batch-normalization, element-wise
//! ops, concatenation (SqueezeNet fire modules, multi-branch layers) and the
//! residual addition (ResNet shortcut layers).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Padding specification for convolution / pooling (symmetric `[h, w]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Padding {
    /// Rows of zero padding added on top and bottom.
    pub h: usize,
    /// Columns of zero padding added on left and right.
    pub w: usize,
}

impl Padding {
    /// Symmetric padding of `p` in both spatial dimensions.
    #[must_use]
    pub fn same(p: usize) -> Self {
        Padding { h: p, w: p }
    }
}

/// Attributes of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dAttrs {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels.
    pub out_channels: usize,
    /// Kernel extent `[kh, kw]`.
    pub kernel: (usize, usize),
    /// Stride `[sh, sw]`.
    pub stride: (usize, usize),
    /// Zero padding.
    pub padding: Padding,
    /// Channel groups. `groups == in_channels == out_channels` is a
    /// depth-wise convolution (MobileNet-v1).
    pub groups: usize,
    /// Whether a bias vector is added (fused into the kernel epilogue).
    pub bias: bool,
}

impl Conv2dAttrs {
    /// True if this is a depth-wise convolution.
    #[must_use]
    pub fn is_depthwise(&self) -> bool {
        self.groups > 1 && self.groups == self.in_channels && self.groups == self.out_channels
    }

    /// Output spatial size for an input of `h × w`.
    #[must_use]
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding.h - self.kernel.0) / self.stride.0 + 1;
        let ow = (w + 2 * self.padding.w - self.kernel.1) / self.stride.1 + 1;
        (oh, ow)
    }

    /// Multiply–accumulate count for a batch-`n` input of `h × w`
    /// (2 floating-point ops per MAC).
    #[must_use]
    pub fn macs(&self, n: usize, h: usize, w: usize) -> u64 {
        let (oh, ow) = self.out_hw(h, w);
        let per_out = self.in_channels / self.groups * self.kernel.0 * self.kernel.1;
        (n * self.out_channels * oh * ow) as u64 * per_out as u64
    }
}

/// Attributes of a dense (fully-connected) layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DenseAttrs {
    /// Input feature count.
    pub in_features: usize,
    /// Output feature count.
    pub out_features: usize,
    /// Whether a bias vector is added.
    pub bias: bool,
}

/// Pooling kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// Attributes of a 2-D pooling layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pool2dAttrs {
    /// Max or average.
    pub kind: PoolKind,
    /// Window extent `[kh, kw]`.
    pub kernel: (usize, usize),
    /// Stride `[sh, sw]`.
    pub stride: (usize, usize),
    /// Zero padding.
    pub padding: Padding,
    /// Round output size up (ceil mode), used by AlexNet-style pooling.
    pub ceil_mode: bool,
}

impl Pool2dAttrs {
    /// Output spatial size for an input of `h × w`.
    #[must_use]
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let num_h = h + 2 * self.padding.h - self.kernel.0;
        let num_w = w + 2 * self.padding.w - self.kernel.1;
        if self.ceil_mode {
            (num_h.div_ceil(self.stride.0) + 1, num_w.div_ceil(self.stride.1) + 1)
        } else {
            (num_h / self.stride.0 + 1, num_w / self.stride.1 + 1)
        }
    }
}

/// A graph operator.
///
/// Each node of a [`crate::Graph`] holds one `Op`. Shape inference for every
/// variant lives in [`crate::infer`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Graph input placeholder with a fixed shape.
    Input(crate::Shape),
    /// 2-D convolution (standard, grouped, depth-wise, or 1×1 point-wise).
    Conv2d(Conv2dAttrs),
    /// Dense / fully-connected layer.
    Dense(DenseAttrs),
    /// 2-D max/average pooling.
    Pool2d(Pool2dAttrs),
    /// Global average pooling over the spatial dimensions.
    GlobalAvgPool,
    /// Batch normalization (inference-mode affine transform).
    BatchNorm,
    /// Rectified linear unit.
    Relu,
    /// Element-wise addition (ResNet shortcut).
    Add,
    /// Channel-wise concatenation (SqueezeNet fire expand).
    Concat,
    /// Flatten `NCHW` to `N×(CHW)`.
    Flatten,
    /// Softmax over the feature dimension.
    Softmax,
    /// Dropout: identity at inference time, kept for structural fidelity.
    Dropout,
    /// Local response normalization (AlexNet).
    Lrn,
}

impl Op {
    /// Number of tensor inputs the operator consumes.
    ///
    /// [`Op::Concat`] and [`Op::Add`] are variadic and report their minimum
    /// arity (2); all others are exact.
    #[must_use]
    pub fn arity(&self) -> usize {
        match self {
            Op::Input(_) => 0,
            Op::Add | Op::Concat => 2,
            _ => 1,
        }
    }

    /// True for element-wise operators that fuse into a preceding anchor op.
    #[must_use]
    pub fn is_elementwise(&self) -> bool {
        matches!(self, Op::Relu | Op::BatchNorm | Op::Dropout | Op::Add)
    }

    /// True for "anchor" operators that own a tuning task (compute-heavy).
    #[must_use]
    pub fn is_anchor(&self) -> bool {
        matches!(self, Op::Conv2d(_) | Op::Dense(_))
    }

    /// Short lowercase name, used in diagnostics and task names.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Op::Input(_) => "input",
            Op::Conv2d(a) if a.is_depthwise() => "depthwise_conv2d",
            Op::Conv2d(_) => "conv2d",
            Op::Dense(_) => "dense",
            Op::Pool2d(_) => "pool2d",
            Op::GlobalAvgPool => "global_avg_pool",
            Op::BatchNorm => "batch_norm",
            Op::Relu => "relu",
            Op::Add => "add",
            Op::Concat => "concat",
            Op::Flatten => "flatten",
            Op::Softmax => "softmax",
            Op::Dropout => "dropout",
            Op::Lrn => "lrn",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(ic: usize, oc: usize, k: usize, s: usize, p: usize, g: usize) -> Conv2dAttrs {
        Conv2dAttrs {
            in_channels: ic,
            out_channels: oc,
            kernel: (k, k),
            stride: (s, s),
            padding: Padding::same(p),
            groups: g,
            bias: true,
        }
    }

    #[test]
    fn conv_out_hw_same_padding() {
        let c = conv(3, 64, 3, 1, 1, 1);
        assert_eq!(c.out_hw(224, 224), (224, 224));
    }

    #[test]
    fn conv_out_hw_strided() {
        let c = conv(3, 32, 3, 2, 1, 1);
        assert_eq!(c.out_hw(224, 224), (112, 112));
    }

    #[test]
    fn conv_macs_standard() {
        let c = conv(3, 64, 3, 1, 1, 1);
        // 64*224*224 outputs, each 3*3*3 MACs.
        assert_eq!(c.macs(1, 224, 224), 64 * 224 * 224 * 27);
    }

    #[test]
    fn conv_macs_depthwise() {
        let c = conv(32, 32, 3, 1, 1, 32);
        assert!(c.is_depthwise());
        // groups = 32, so each output sees 1*3*3 MACs.
        assert_eq!(c.macs(1, 112, 112), 32 * 112 * 112 * 9);
    }

    #[test]
    fn pool_ceil_mode() {
        // AlexNet pool: 3x3 stride 2 on 55 -> 27 (floor), 27.5 -> 28 (ceil).
        let p = Pool2dAttrs {
            kind: PoolKind::Max,
            kernel: (3, 3),
            stride: (2, 2),
            padding: Padding::same(0),
            ceil_mode: false,
        };
        assert_eq!(p.out_hw(55, 55), (27, 27));
        let p_ceil = Pool2dAttrs { ceil_mode: true, ..p };
        assert_eq!(p_ceil.out_hw(56, 56), (28, 28));
    }

    #[test]
    fn op_arity_and_classes() {
        assert_eq!(Op::Relu.arity(), 1);
        assert_eq!(Op::Add.arity(), 2);
        assert!(Op::Relu.is_elementwise());
        assert!(Op::Conv2d(conv(3, 8, 3, 1, 1, 1)).is_anchor());
        assert!(!Op::Softmax.is_anchor());
        assert_eq!(Op::Conv2d(conv(8, 8, 3, 1, 1, 8)).name(), "depthwise_conv2d");
    }
}

//! Error types for graph construction and shape inference.

use std::fmt;

/// Errors produced while building or analyzing a [`crate::Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An operator received a tensor whose rank or extents are incompatible.
    ShapeMismatch {
        /// Name of the operator that rejected its inputs.
        op: String,
        /// Human-readable detail of the mismatch.
        detail: String,
    },
    /// A node referenced an input id that does not exist in the graph.
    UnknownNode(usize),
    /// An operator was given the wrong number of inputs.
    ArityMismatch {
        /// Name of the operator.
        op: String,
        /// Number of inputs the operator expects.
        expected: usize,
        /// Number of inputs it was given.
        got: usize,
    },
    /// The graph contains a cycle and cannot be topologically ordered.
    Cyclic,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::ShapeMismatch { op, detail } => {
                write!(f, "shape mismatch in `{op}`: {detail}")
            }
            GraphError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            GraphError::ArityMismatch { op, expected, got } => {
                write!(f, "`{op}` expects {expected} inputs, got {got}")
            }
            GraphError::Cyclic => write!(f, "graph contains a cycle"),
        }
    }
}

impl std::error::Error for GraphError {}

//! The computational graph.
//!
//! A [`Graph`] is a DAG of [`Node`]s; each node applies one [`Op`] to the
//! outputs of its input nodes. Graphs are built through the fluent `add_*`
//! helpers, which run shape inference eagerly so every node always has a
//! concrete output shape — mirroring how Relay type-checks while importing a
//! model.

use crate::error::GraphError;
use crate::infer::infer_shape;
use crate::ops::{Conv2dAttrs, DenseAttrs, Op, Pool2dAttrs};
use crate::tensor::{DType, Shape};
use serde::{Deserialize, Serialize};

/// Identifier of a node inside one [`Graph`] (its index in `nodes`).
pub type NodeId = usize;

/// One operator application in the graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// This node's id (equals its index).
    pub id: NodeId,
    /// The operator.
    pub op: Op,
    /// Ids of the producer nodes, in operator argument order.
    pub inputs: Vec<NodeId>,
    /// Inferred output shape.
    pub output: Shape,
}

/// A DNN model as a DAG of operator nodes.
///
/// # Example
///
/// ```
/// use dnn_graph::{Graph, Shape};
///
/// let mut g = Graph::new("tiny");
/// let x = g.add_input(Shape::nchw(1, 3, 32, 32));
/// let c = g.add_conv2d(x, 3, 8, 3, 1, 1, 1, true).unwrap();
/// let r = g.add_relu(c);
/// assert_eq!(g.node(r).output, Shape::nchw(1, 8, 32, 32));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    /// Human-readable model name (e.g. `"mobilenet_v1"`).
    pub name: String,
    /// Element type of all activations.
    pub dtype: DType,
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty fp32 graph.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Graph { name: name.into(), dtype: DType::F32, nodes: Vec::new() }
    }

    /// All nodes in topological (insertion) order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Adds a node applying `op` to `inputs`, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an input id is unknown, the arity is wrong,
    /// or the input shapes are incompatible with `op`.
    pub fn add(&mut self, op: Op, inputs: Vec<NodeId>) -> Result<NodeId, GraphError> {
        for &i in &inputs {
            if i >= self.nodes.len() {
                return Err(GraphError::UnknownNode(i));
            }
        }
        let in_shapes: Vec<&Shape> = inputs.iter().map(|&i| &self.nodes[i].output).collect();
        let output = infer_shape(&op, &in_shapes)?;
        let id = self.nodes.len();
        self.nodes.push(Node { id, op, inputs, output });
        Ok(id)
    }

    /// Adds a graph input of the given shape.
    pub fn add_input(&mut self, shape: Shape) -> NodeId {
        // aal-lint: allow(unwrap, reason = "input nodes carry no inputs to validate")
        self.add(Op::Input(shape), vec![]).expect("input nodes are always valid")
    }

    /// Adds a square-kernel 2-D convolution.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `x`'s channel count differs from
    /// `in_channels` or the shape is not 4-D.
    #[allow(clippy::too_many_arguments)]
    pub fn add_conv2d(
        &mut self,
        x: NodeId,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        groups: usize,
        bias: bool,
    ) -> Result<NodeId, GraphError> {
        let attrs = Conv2dAttrs {
            in_channels,
            out_channels,
            kernel: (kernel, kernel),
            stride: (stride, stride),
            padding: crate::ops::Padding::same(padding),
            groups,
            bias,
        };
        self.add(Op::Conv2d(attrs), vec![x])
    }

    /// Adds a dense (fully-connected) layer.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `x` is not a 2-D tensor of `in_features`.
    pub fn add_dense(
        &mut self,
        x: NodeId,
        in_features: usize,
        out_features: usize,
        bias: bool,
    ) -> Result<NodeId, GraphError> {
        self.add(Op::Dense(DenseAttrs { in_features, out_features, bias }), vec![x])
    }

    /// Adds a pooling layer.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `x` is not 4-D.
    pub fn add_pool2d(&mut self, x: NodeId, attrs: Pool2dAttrs) -> Result<NodeId, GraphError> {
        self.add(Op::Pool2d(attrs), vec![x])
    }

    /// Adds a ReLU. Never fails for an existing node.
    pub fn add_relu(&mut self, x: NodeId) -> NodeId {
        // aal-lint: allow(unwrap, reason = "shape-preserving op on an already-validated input cannot fail")
        self.add(Op::Relu, vec![x]).expect("relu preserves any shape")
    }

    /// Adds an inference-mode batch normalization.
    pub fn add_batch_norm(&mut self, x: NodeId) -> NodeId {
        // aal-lint: allow(unwrap, reason = "shape-preserving op on an already-validated input cannot fail")
        self.add(Op::BatchNorm, vec![x]).expect("batch_norm preserves any shape")
    }

    /// Adds an element-wise residual addition.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::ShapeMismatch`] if the operand shapes differ.
    pub fn add_residual(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, GraphError> {
        self.add(Op::Add, vec![a, b])
    }

    /// Adds a channel-wise concatenation of two or more 4-D tensors.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if fewer than two inputs are given or their
    /// non-channel extents differ.
    pub fn add_concat(&mut self, inputs: Vec<NodeId>) -> Result<NodeId, GraphError> {
        self.add(Op::Concat, inputs)
    }

    /// Adds a global average pool.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `x` is not 4-D.
    pub fn add_global_avg_pool(&mut self, x: NodeId) -> Result<NodeId, GraphError> {
        self.add(Op::GlobalAvgPool, vec![x])
    }

    /// Adds a flatten from `NCHW` to `N×(CHW)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `x` has rank < 2.
    pub fn add_flatten(&mut self, x: NodeId) -> Result<NodeId, GraphError> {
        self.add(Op::Flatten, vec![x])
    }

    /// Adds a softmax over the last dimension.
    pub fn add_softmax(&mut self, x: NodeId) -> NodeId {
        // aal-lint: allow(unwrap, reason = "shape-preserving op on an already-validated input cannot fail")
        self.add(Op::Softmax, vec![x]).expect("softmax preserves any shape")
    }

    /// Total multiply–accumulate count of all convolution and dense nodes.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| match &n.op {
                Op::Conv2d(a) => {
                    let in_shape = &self.nodes[n.inputs[0]].output;
                    a.macs(in_shape.dim(0), in_shape.dim(2), in_shape.dim(3))
                }
                Op::Dense(a) => {
                    let n_batch = self.nodes[n.inputs[0]].output.dim(0) as u64;
                    n_batch * a.in_features as u64 * a.out_features as u64
                }
                _ => 0,
            })
            .sum()
    }

    /// Ids of nodes that no other node consumes (the graph outputs).
    #[must_use]
    pub fn output_ids(&self) -> Vec<NodeId> {
        let mut consumed = vec![false; self.nodes.len()];
        for n in &self.nodes {
            for &i in &n.inputs {
                consumed[i] = true;
            }
        }
        (0..self.nodes.len()).filter(|&i| !consumed[i]).collect()
    }

    /// Verifies the graph is a well-formed DAG in topological order.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cyclic`] if any node consumes a node that is not
    /// strictly earlier in the list (construction normally prevents this, but
    /// deserialized graphs are re-checked).
    pub fn validate(&self) -> Result<(), GraphError> {
        for n in &self.nodes {
            for &i in &n.inputs {
                if i >= n.id {
                    return Err(GraphError::Cyclic);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Padding, PoolKind};

    fn pool(k: usize, s: usize) -> Pool2dAttrs {
        Pool2dAttrs {
            kind: PoolKind::Max,
            kernel: (k, k),
            stride: (s, s),
            padding: Padding::same(0),
            ceil_mode: false,
        }
    }

    #[test]
    fn build_small_graph() {
        let mut g = Graph::new("t");
        let x = g.add_input(Shape::nchw(1, 3, 32, 32));
        let c = g.add_conv2d(x, 3, 16, 3, 1, 1, 1, true).unwrap();
        let r = g.add_relu(c);
        let p = g.add_pool2d(r, pool(2, 2)).unwrap();
        assert_eq!(g.node(p).output, Shape::nchw(1, 16, 16, 16));
        assert_eq!(g.output_ids(), vec![p]);
        g.validate().unwrap();
    }

    #[test]
    fn unknown_input_rejected() {
        let mut g = Graph::new("t");
        assert_eq!(g.add(Op::Relu, vec![5]), Err(GraphError::UnknownNode(5)));
    }

    #[test]
    fn channel_mismatch_rejected() {
        let mut g = Graph::new("t");
        let x = g.add_input(Shape::nchw(1, 3, 32, 32));
        assert!(g.add_conv2d(x, 4, 16, 3, 1, 1, 1, true).is_err());
    }

    #[test]
    fn residual_shape_mismatch_rejected() {
        let mut g = Graph::new("t");
        let a = g.add_input(Shape::nchw(1, 8, 8, 8));
        let b = g.add_input(Shape::nchw(1, 8, 4, 4));
        assert!(g.add_residual(a, b).is_err());
    }

    #[test]
    fn total_macs_counts_conv_and_dense() {
        let mut g = Graph::new("t");
        let x = g.add_input(Shape::nchw(1, 1, 4, 4));
        let c = g.add_conv2d(x, 1, 2, 3, 1, 1, 1, false).unwrap();
        let f = g.add_flatten(c).unwrap();
        let _d = g.add_dense(f, 32, 10, false).unwrap();
        // conv: 2*4*4 outputs * 9 MACs = 288; dense: 32*10 = 320.
        assert_eq!(g.total_macs(), 288 + 320);
    }

    #[test]
    fn serde_round_trip() {
        let mut g = Graph::new("t");
        let x = g.add_input(Shape::nchw(1, 3, 8, 8));
        let _ = g.add_conv2d(x, 3, 4, 3, 1, 1, 1, true).unwrap();
        let s = serde_json::to_string(&g).unwrap();
        let g2: Graph = serde_json::from_str(&s).unwrap();
        assert_eq!(g, g2);
        g2.validate().unwrap();
    }
}

//! Tensor shapes and element types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Element type of a tensor.
///
/// The paper's experiments run fp32 inference; the other types exist so the
/// simulator can model reduced-precision deployments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DType {
    /// 32-bit IEEE float (the paper's setting).
    #[default]
    F32,
    /// 16-bit IEEE float.
    F16,
    /// 8-bit signed integer.
    I8,
}

impl DType {
    /// Size of one element in bytes.
    #[must_use]
    pub fn size_bytes(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F16 => 2,
            DType::I8 => 1,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DType::F32 => write!(f, "float32"),
            DType::F16 => write!(f, "float16"),
            DType::I8 => write!(f, "int8"),
        }
    }
}

/// A tensor shape: a list of extents, outermost first.
///
/// Activations use `NCHW` layout (`[batch, channels, height, width]`),
/// matching the layout TVM's CUDA conv2d templates tune over.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Creates a shape from extents.
    #[must_use]
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// Number of dimensions.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; 1 for a scalar).
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.0.iter().product()
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rank()`.
    #[must_use]
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Extents as a slice.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Convenience constructor for an `NCHW` activation shape.
    #[must_use]
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape(vec![n, c, h, w])
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::I8.size_bytes(), 1);
    }

    #[test]
    fn shape_basics() {
        let s = Shape::nchw(1, 3, 224, 224);
        assert_eq!(s.rank(), 4);
        assert_eq!(s.num_elements(), 3 * 224 * 224);
        assert_eq!(s.dim(1), 3);
        assert_eq!(s.to_string(), "(1, 3, 224, 224)");
    }

    #[test]
    fn shape_scalar_product_is_one() {
        assert_eq!(Shape::new(vec![]).num_elements(), 1);
    }

    #[test]
    fn shape_from_slice_and_vec() {
        let a: Shape = vec![2, 3].into();
        let b: Shape = (&[2usize, 3][..]).into();
        assert_eq!(a, b);
    }
}

//! Tuning-task extraction.
//!
//! After fusion, every anchored group is a deployable kernel whose schedule
//! must be tuned (the paper's "node-wise optimization"). Identical workloads
//! share one task: tuning it once yields the configuration for every
//! occurrence. AutoTVM's GPU flow extracts convolution workloads only (dense
//! layers run through a fixed library schedule), which is what makes
//! MobileNet-v1 a 19-task model in the paper; [`extract_tasks`] follows that
//! convention and [`extract_tasks_with_dense`] also covers dense layers.

use crate::fusion::fuse;
use crate::graph::Graph;
use crate::ops::{Conv2dAttrs, DenseAttrs, Op};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The template family a task is tuned with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Direct CUDA conv2d template.
    Conv2d,
    /// Depth-wise conv2d template.
    DepthwiseConv2d,
    /// Dense (matmul) template.
    Dense,
}

impl fmt::Display for TaskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskKind::Conv2d => write!(f, "conv2d"),
            TaskKind::DepthwiseConv2d => write!(f, "depthwise_conv2d"),
            TaskKind::Dense => write!(f, "dense"),
        }
    }
}

/// A fully-specified kernel workload — the tuple TVM calls a "workload key".
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// Convolution workload (also covers depth-wise via `groups`).
    Conv2d {
        /// Batch size.
        batch: usize,
        /// Input channels.
        in_channels: usize,
        /// Output channels.
        out_channels: usize,
        /// Input spatial height.
        height: usize,
        /// Input spatial width.
        width: usize,
        /// Kernel extent `[kh, kw]`.
        kernel: (usize, usize),
        /// Stride `[sh, sw]`.
        stride: (usize, usize),
        /// Symmetric padding `[ph, pw]`.
        padding: (usize, usize),
        /// Channel groups.
        groups: usize,
    },
    /// Dense workload.
    Dense {
        /// Batch size.
        batch: usize,
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
}

impl Workload {
    /// Output spatial size (convolutions only).
    #[must_use]
    pub fn out_hw(&self) -> Option<(usize, usize)> {
        match *self {
            Workload::Conv2d { height, width, kernel, stride, padding, .. } => {
                let oh = (height + 2 * padding.0 - kernel.0) / stride.0 + 1;
                let ow = (width + 2 * padding.1 - kernel.1) / stride.1 + 1;
                Some((oh, ow))
            }
            Workload::Dense { .. } => None,
        }
    }

    /// Multiply–accumulate count of one kernel invocation.
    #[must_use]
    pub fn macs(&self) -> u64 {
        match *self {
            Workload::Conv2d { batch, in_channels, out_channels, kernel, groups, .. } => {
                // aal-lint: allow(unwrap, reason = "conv workloads always have spatial output")
                let (oh, ow) = self.out_hw().expect("conv has spatial output");
                let per_out = in_channels / groups * kernel.0 * kernel.1;
                (batch * out_channels * oh * ow) as u64 * per_out as u64
            }
            Workload::Dense { batch, in_features, out_features } => {
                (batch * in_features * out_features) as u64
            }
        }
    }

    /// Floating-point operation count (2 per MAC).
    #[must_use]
    pub fn flops(&self) -> u64 {
        2 * self.macs()
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Workload::Conv2d {
                batch,
                in_channels,
                out_channels,
                height,
                width,
                kernel,
                stride,
                padding,
                groups,
            } => write!(
                f,
                "conv2d(n={batch}, {in_channels}->{out_channels}, {height}x{width}, \
                 k={}x{}, s={}, p={}, g={groups})",
                kernel.0, kernel.1, stride.0, padding.0
            ),
            Workload::Dense { batch, in_features, out_features } => {
                write!(f, "dense(n={batch}, {in_features}->{out_features})")
            }
        }
    }
}

/// One node-wise tuning task: a unique workload plus bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TuningTask {
    /// Template family.
    pub kind: TaskKind,
    /// Stable task name, e.g. `"mobilenet_v1.T3"`.
    pub name: String,
    /// The workload tuple.
    pub workload: Workload,
    /// How many graph nodes share this workload (the task's weight when
    /// combining per-node latencies into a model latency).
    pub occurrences: usize,
}

impl TuningTask {
    /// Floating-point operations of one invocation of this kernel.
    #[must_use]
    pub fn flops(&self) -> u64 {
        self.workload.flops()
    }
}

impl fmt::Display for TuningTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{} x{}]", self.name, self.workload, self.occurrences)
    }
}

fn conv_workload(graph: &Graph, node_id: usize, a: &Conv2dAttrs) -> Workload {
    let input = &graph.node(graph.node(node_id).inputs[0]).output;
    Workload::Conv2d {
        batch: input.dim(0),
        in_channels: a.in_channels,
        out_channels: a.out_channels,
        height: input.dim(2),
        width: input.dim(3),
        kernel: a.kernel,
        stride: a.stride,
        padding: (a.padding.h, a.padding.w),
        groups: a.groups,
    }
}

fn dense_workload(graph: &Graph, node_id: usize, a: &DenseAttrs) -> Workload {
    let input = &graph.node(graph.node(node_id).inputs[0]).output;
    Workload::Dense {
        batch: input.dim(0),
        in_features: a.in_features,
        out_features: a.out_features,
    }
}

fn extract(graph: &Graph, include_dense: bool) -> Vec<TuningTask> {
    let fused = fuse(graph);
    let mut order: Vec<(TaskKind, Workload)> = Vec::new();
    let mut counts: BTreeMap<Workload, usize> = BTreeMap::new();
    for group in fused.anchored() {
        // aal-lint: allow(unwrap, reason = "anchored() yields only groups with an anchor")
        let anchor = group.anchor.expect("anchored() yields anchored groups");
        let (kind, workload) = match &graph.node(anchor).op {
            Op::Conv2d(a) => {
                let kind =
                    if a.is_depthwise() { TaskKind::DepthwiseConv2d } else { TaskKind::Conv2d };
                (kind, conv_workload(graph, anchor, a))
            }
            Op::Dense(a) => {
                if !include_dense {
                    continue;
                }
                (TaskKind::Dense, dense_workload(graph, anchor, a))
            }
            other => unreachable!("anchor is conv or dense, got {other}"),
        };
        if !counts.contains_key(&workload) {
            order.push((kind, workload.clone()));
        }
        *counts.entry(workload).or_insert(0) += 1;
    }
    order
        .into_iter()
        .enumerate()
        .map(|(i, (kind, workload))| TuningTask {
            kind,
            name: format!("{}.T{}", graph.name, i + 1),
            occurrences: counts[&workload],
            workload,
        })
        .collect()
}

/// Extracts the unique convolution tuning tasks of a model, in first-use
/// order (AutoTVM's GPU convention; dense layers are not tuned).
#[must_use]
pub fn extract_tasks(graph: &Graph) -> Vec<TuningTask> {
    extract(graph, false)
}

/// Extracts convolution *and* dense tuning tasks.
#[must_use]
pub fn extract_tasks_with_dense(graph: &Graph) -> Vec<TuningTask> {
    extract(graph, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Shape;

    fn two_identical_convs() -> Graph {
        let mut g = Graph::new("m");
        let x = g.add_input(Shape::nchw(1, 8, 16, 16));
        let c1 = g.add_conv2d(x, 8, 8, 3, 1, 1, 1, true).unwrap();
        let r1 = g.add_relu(c1);
        let c2 = g.add_conv2d(r1, 8, 8, 3, 1, 1, 1, true).unwrap();
        let _ = g.add_relu(c2);
        g
    }

    #[test]
    fn identical_workloads_dedupe() {
        let tasks = extract_tasks(&two_identical_convs());
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].occurrences, 2);
        assert_eq!(tasks[0].name, "m.T1");
    }

    #[test]
    fn dense_excluded_by_default() {
        let mut g = Graph::new("m");
        let x = g.add_input(Shape::nchw(1, 4, 4, 4));
        let c = g.add_conv2d(x, 4, 4, 3, 1, 1, 1, true).unwrap();
        let f = g.add_flatten(c).unwrap();
        let _d = g.add_dense(f, 64, 10, true).unwrap();
        assert_eq!(extract_tasks(&g).len(), 1);
        let with_dense = extract_tasks_with_dense(&g);
        assert_eq!(with_dense.len(), 2);
        assert_eq!(with_dense[1].kind, TaskKind::Dense);
    }

    #[test]
    fn depthwise_kind_detected() {
        let mut g = Graph::new("m");
        let x = g.add_input(Shape::nchw(1, 8, 16, 16));
        let _ = g.add_conv2d(x, 8, 8, 3, 1, 1, 8, false).unwrap();
        let tasks = extract_tasks(&g);
        assert_eq!(tasks[0].kind, TaskKind::DepthwiseConv2d);
    }

    #[test]
    fn workload_flops_match_graph_macs() {
        let g = two_identical_convs();
        let tasks = extract_tasks(&g);
        let task_macs: u64 = tasks.iter().map(|t| t.workload.macs() * t.occurrences as u64).sum();
        assert_eq!(task_macs, g.total_macs());
    }

    #[test]
    fn conv_workload_out_hw() {
        let w = Workload::Conv2d {
            batch: 1,
            in_channels: 3,
            out_channels: 32,
            height: 224,
            width: 224,
            kernel: (3, 3),
            stride: (2, 2),
            padding: (1, 1),
            groups: 1,
        };
        assert_eq!(w.out_hw(), Some((112, 112)));
    }
}

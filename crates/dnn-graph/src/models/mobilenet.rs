//! MobileNet-v1 (Howard et al., 2017), width multiplier 1.0.

use super::conv_bn_relu;
use crate::graph::{Graph, NodeId};
use crate::tensor::Shape;

/// Depth-wise separable block: 3×3 depth-wise conv + 1×1 point-wise conv,
/// each followed by batch-norm and ReLU.
fn separable(g: &mut Graph, x: NodeId, ic: usize, oc: usize, stride: usize) -> NodeId {
    let dw = conv_bn_relu(g, x, ic, ic, 3, stride, 1, ic);
    conv_bn_relu(g, dw, ic, oc, 1, 1, 0, 1)
}

/// Builds MobileNet-v1 for `batch × 3 × 224 × 224` inputs.
///
/// One standard 3×3 stem plus 13 depth-wise separable blocks. After
/// workload deduplication this yields exactly the paper's **19 tuning
/// tasks** (Fig. 5: T1–T19): the stem, 9 unique depth-wise and 9 unique
/// point-wise workloads.
#[must_use]
pub fn mobilenet_v1(batch: usize) -> Graph {
    let mut g = Graph::new("mobilenet_v1");
    let x = g.add_input(Shape::nchw(batch, 3, 224, 224));

    let mut cur = conv_bn_relu(&mut g, x, 3, 32, 3, 2, 1, 1); // 112x112

    // (in, out, stride) for the 13 separable blocks.
    let blocks: [(usize, usize, usize); 13] = [
        (32, 64, 1),
        (64, 128, 2),
        (128, 128, 1),
        (128, 256, 2),
        (256, 256, 1),
        (256, 512, 2),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 1024, 2),
        (1024, 1024, 1),
    ];
    for (ic, oc, s) in blocks {
        cur = separable(&mut g, cur, ic, oc, s);
    }

    let gap = g.add_global_avg_pool(cur).expect("rank-4 pooling");
    let flat = g.add_flatten(gap).expect("rank-4 flatten");
    let fc = g.add_dense(flat, 1024, 1000, true).expect("1024 features");
    let _out = g.add_softmax(fc);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{extract_tasks, TaskKind};

    #[test]
    fn nineteen_tasks_like_fig5() {
        let tasks = extract_tasks(&mobilenet_v1(1));
        assert_eq!(tasks.len(), 19);
        let dw = tasks.iter().filter(|t| t.kind == TaskKind::DepthwiseConv2d).count();
        let pw = tasks
            .iter()
            .filter(|t| {
                t.kind == TaskKind::Conv2d
                    && matches!(t.workload, crate::task::Workload::Conv2d { kernel: (1, 1), .. })
            })
            .count();
        assert_eq!(dw, 9);
        assert_eq!(pw, 9);
    }

    #[test]
    fn twenty_seven_conv_nodes_total() {
        let tasks = extract_tasks(&mobilenet_v1(1));
        let total: usize = tasks.iter().map(|t| t.occurrences).sum();
        // 1 stem + 13 dw + 13 pw.
        assert_eq!(total, 27);
    }

    #[test]
    fn final_feature_map_is_1024x7x7() {
        let g = mobilenet_v1(1);
        let gap = g
            .nodes()
            .iter()
            .find(|n| matches!(n.op, crate::ops::Op::GlobalAvgPool))
            .expect("mobilenet has a global avg pool");
        assert_eq!(g.node(gap.inputs[0]).output.dims(), &[1, 1024, 7, 7]);
    }
}

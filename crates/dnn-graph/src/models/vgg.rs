//! VGG-16 (Simonyan & Zisserman, ICLR 2015), configuration D.

use super::{conv_relu, max_pool};
use crate::graph::Graph;
use crate::ops::Op;
use crate::tensor::Shape;

/// Builds VGG-16 for `batch × 3 × 224 × 224` inputs.
///
/// Thirteen 3×3 convolutions in five stages; nine unique conv workloads.
#[must_use]
pub fn vgg16(batch: usize) -> Graph {
    let mut g = Graph::new("vgg16");
    let x = g.add_input(Shape::nchw(batch, 3, 224, 224));

    // (in, out, repeats) per stage; every conv is 3x3 s1 p1.
    let stages: [(usize, usize, usize); 5] =
        [(3, 64, 2), (64, 128, 2), (128, 256, 3), (256, 512, 3), (512, 512, 3)];

    let mut cur = x;
    for (ic, oc, reps) in stages {
        let mut c = ic;
        for _ in 0..reps {
            cur = conv_relu(&mut g, cur, c, oc, 3, 1, 1);
            c = oc;
        }
        cur = max_pool(&mut g, cur, 2, 2, 0, false);
    }

    let flat = g.add_flatten(cur).expect("rank-4 flatten"); // 512*7*7 = 25088
    let fc1 = g.add_dense(flat, 512 * 7 * 7, 4096, true).expect("25088 features");
    let r1 = g.add_relu(fc1);
    let d1 = g.add(Op::Dropout, vec![r1]).expect("dropout preserves shape");
    let fc2 = g.add_dense(d1, 4096, 4096, true).expect("4096 features");
    let r2 = g.add_relu(fc2);
    let d2 = g.add(Op::Dropout, vec![r2]).expect("dropout preserves shape");
    let fc3 = g.add_dense(d2, 4096, 1000, true).expect("4096 features");
    let _out = g.add_softmax(fc3);
    g
}

/// Builds VGG-19 (configuration E; extension model): 16 convolutions in
/// the same five stages.
#[must_use]
pub fn vgg19(batch: usize) -> Graph {
    let mut g = Graph::new("vgg19");
    let x = g.add_input(Shape::nchw(batch, 3, 224, 224));
    let stages: [(usize, usize, usize); 5] =
        [(3, 64, 2), (64, 128, 2), (128, 256, 4), (256, 512, 4), (512, 512, 4)];
    let mut cur = x;
    for (ic, oc, reps) in stages {
        let mut c = ic;
        for _ in 0..reps {
            cur = conv_relu(&mut g, cur, c, oc, 3, 1, 1);
            c = oc;
        }
        cur = max_pool(&mut g, cur, 2, 2, 0, false);
    }
    let flat = g.add_flatten(cur).expect("rank-4 flatten");
    let fc1 = g.add_dense(flat, 512 * 7 * 7, 4096, true).expect("25088 features");
    let r1 = g.add_relu(fc1);
    let fc2 = g.add_dense(r1, 4096, 4096, true).expect("4096 features");
    let r2 = g.add_relu(fc2);
    let fc3 = g.add_dense(r2, 4096, 1000, true).expect("4096 features");
    let _out = g.add_softmax(fc3);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::extract_tasks;

    #[test]
    fn nine_unique_conv_tasks_from_thirteen_convs() {
        let tasks = extract_tasks(&vgg16(1));
        assert_eq!(tasks.len(), 9);
        let total: usize = tasks.iter().map(|t| t.occurrences).sum();
        assert_eq!(total, 13);
    }

    #[test]
    fn vgg19_shares_vgg16_task_set() {
        let t16 = extract_tasks(&vgg16(1));
        let t19 = extract_tasks(&vgg19(1));
        assert_eq!(t16.len(), t19.len(), "same unique workloads");
        let convs19: usize = t19.iter().map(|t| t.occurrences).sum();
        assert_eq!(convs19, 16);
    }

    #[test]
    fn vgg_is_the_flop_heavyweight() {
        // VGG-16 is ~15.5 GFLOPs; AlexNet ~1.4 GFLOPs. The ordering drives
        // Table I's latency ordering, so lock it down.
        let vgg = vgg16(1).total_macs();
        let alex = super::super::alexnet(1).total_macs();
        assert!(vgg > 7 * alex, "vgg {vgg} vs alexnet {alex}");
    }
}

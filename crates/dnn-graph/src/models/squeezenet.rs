//! SqueezeNet-v1.1 (Iandola et al., 2016).

use super::{conv_relu, max_pool};
use crate::graph::{Graph, NodeId};
use crate::ops::Op;
use crate::tensor::Shape;

/// A fire module: 1×1 squeeze, then parallel 1×1 and 3×3 expands whose
/// outputs concatenate channel-wise.
fn fire(g: &mut Graph, x: NodeId, ic: usize, squeeze: usize, expand: usize) -> NodeId {
    let s = conv_relu(g, x, ic, squeeze, 1, 1, 0);
    let e1 = conv_relu(g, s, squeeze, expand, 1, 1, 0);
    let e3 = conv_relu(g, s, squeeze, expand, 3, 1, 1);
    g.add_concat(vec![e1, e3]).expect("expand branches share spatial extents")
}

/// Builds SqueezeNet-v1.1 for `batch × 3 × 224 × 224` inputs.
///
/// The v1.1 revision: a 3×3/stride-2 stem with 64 channels and earlier
/// pooling than v1.0. Eight fire modules plus the 1×1 `conv10` classifier;
/// eighteen unique conv workloads.
#[must_use]
pub fn squeezenet_v1_1(batch: usize) -> Graph {
    let mut g = Graph::new("squeezenet_v1.1");
    let x = g.add_input(Shape::nchw(batch, 3, 224, 224));

    let stem = conv_relu(&mut g, x, 3, 64, 3, 2, 0); // 111x111
    let mut cur = max_pool(&mut g, stem, 3, 2, 0, true); // 55x55 (ceil)

    cur = fire(&mut g, cur, 64, 16, 64);
    cur = fire(&mut g, cur, 128, 16, 64);
    cur = max_pool(&mut g, cur, 3, 2, 0, true); // 27x27

    cur = fire(&mut g, cur, 128, 32, 128);
    cur = fire(&mut g, cur, 256, 32, 128);
    cur = max_pool(&mut g, cur, 3, 2, 0, true); // 13x13

    cur = fire(&mut g, cur, 256, 48, 192);
    cur = fire(&mut g, cur, 384, 48, 192);
    cur = fire(&mut g, cur, 384, 64, 256);
    cur = fire(&mut g, cur, 512, 64, 256);

    let drop = g.add(Op::Dropout, vec![cur]).expect("dropout preserves shape");
    let conv10 = conv_relu(&mut g, drop, 512, 1000, 1, 1, 0);
    let gap = g.add_global_avg_pool(conv10).expect("rank-4 pooling");
    let flat = g.add_flatten(gap).expect("rank-4 flatten");
    let _out = g.add_softmax(flat);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::extract_tasks;

    #[test]
    fn eighteen_unique_conv_tasks() {
        let tasks = extract_tasks(&squeezenet_v1_1(1));
        assert_eq!(tasks.len(), 18);
        // 1 stem + 8 fires * 3 convs + conv10 = 26 conv nodes.
        let total: usize = tasks.iter().map(|t| t.occurrences).sum();
        assert_eq!(total, 26);
    }

    #[test]
    fn stem_is_111x111() {
        let g = squeezenet_v1_1(1);
        assert_eq!(g.node(1).output.dims(), &[1, 64, 111, 111]);
    }

    #[test]
    fn fire_concat_doubles_expand_channels() {
        let g = squeezenet_v1_1(1);
        let first_concat =
            g.nodes().iter().find(|n| matches!(n.op, Op::Concat)).expect("fire modules concat");
        assert_eq!(first_concat.output.dim(1), 128);
    }
}

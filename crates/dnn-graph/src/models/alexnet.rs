//! AlexNet (Krizhevsky et al., NIPS 2012), torchvision single-tower variant.

use super::{conv_relu, max_pool};
use crate::graph::Graph;
use crate::ops::Op;
use crate::tensor::Shape;

/// Builds AlexNet for `batch × 3 × 224 × 224` inputs.
///
/// Five convolution stages (each a unique tuning task), three max pools,
/// and the 9216→4096→4096→1000 classifier head.
#[must_use]
pub fn alexnet(batch: usize) -> Graph {
    let mut g = Graph::new("alexnet");
    let x = g.add_input(Shape::nchw(batch, 3, 224, 224));

    let c1 = conv_relu(&mut g, x, 3, 64, 11, 4, 2); // 55x55
    let l1 = g.add(Op::Lrn, vec![c1]).expect("lrn preserves shape");
    let p1 = max_pool(&mut g, l1, 3, 2, 0, false); // 27x27

    let c2 = conv_relu(&mut g, p1, 64, 192, 5, 1, 2);
    let l2 = g.add(Op::Lrn, vec![c2]).expect("lrn preserves shape");
    let p2 = max_pool(&mut g, l2, 3, 2, 0, false); // 13x13

    let c3 = conv_relu(&mut g, p2, 192, 384, 3, 1, 1);
    let c4 = conv_relu(&mut g, c3, 384, 256, 3, 1, 1);
    let c5 = conv_relu(&mut g, c4, 256, 256, 3, 1, 1);
    let p5 = max_pool(&mut g, c5, 3, 2, 0, false); // 6x6

    let flat = g.add_flatten(p5).expect("rank-4 flatten");
    let d1 = g.add(Op::Dropout, vec![flat]).expect("dropout preserves shape");
    let fc1 = g.add_dense(d1, 256 * 6 * 6, 4096, true).expect("9216 features");
    let r1 = g.add_relu(fc1);
    let d2 = g.add(Op::Dropout, vec![r1]).expect("dropout preserves shape");
    let fc2 = g.add_dense(d2, 4096, 4096, true).expect("4096 features");
    let r2 = g.add_relu(fc2);
    let fc3 = g.add_dense(r2, 4096, 1000, true).expect("4096 features");
    let _out = g.add_softmax(fc3);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{extract_tasks, extract_tasks_with_dense, TaskKind};

    #[test]
    fn five_unique_conv_tasks() {
        let tasks = extract_tasks(&alexnet(1));
        assert_eq!(tasks.len(), 5);
        assert!(tasks.iter().all(|t| t.kind == TaskKind::Conv2d));
    }

    #[test]
    fn dense_tasks_present_when_requested() {
        let tasks = extract_tasks_with_dense(&alexnet(1));
        assert_eq!(tasks.iter().filter(|t| t.kind == TaskKind::Dense).count(), 3);
    }

    #[test]
    fn conv1_spatial_is_55() {
        let g = alexnet(1);
        // Node 1 is conv1 (node 0 is the input).
        assert_eq!(g.node(1).output.dims(), &[1, 64, 55, 55]);
    }
}

//! Model zoo: the five networks evaluated in the paper.
//!
//! All builders take the batch size and produce an ImageNet-classification
//! graph over `batch × 3 × 224 × 224` fp32 inputs (the TVM tutorial setting
//! the paper uses). Layer shapes follow the published architectures:
//!
//! * [`alexnet`] — Krizhevsky et al., NIPS 2012 (torchvision variant).
//! * [`resnet18`] — He et al., CVPR 2016.
//! * [`vgg16`] — Simonyan & Zisserman, ICLR 2015.
//! * [`mobilenet_v1`] — Howard et al., 2017 (width multiplier 1.0).
//! * [`squeezenet_v1_1`] — Iandola et al., 2016.

mod alexnet;
mod mobilenet;
mod resnet;
mod squeezenet;
mod vgg;

pub use alexnet::alexnet;
pub use mobilenet::mobilenet_v1;
pub use resnet::{resnet18, resnet34};
pub use squeezenet::squeezenet_v1_1;
pub use vgg::{vgg16, vgg19};

use crate::graph::{Graph, NodeId};
use crate::ops::{Padding, Pool2dAttrs, PoolKind};

/// All five paper models, in Table I order.
#[must_use]
pub fn paper_models(batch: usize) -> Vec<Graph> {
    vec![alexnet(batch), resnet18(batch), vgg16(batch), mobilenet_v1(batch), squeezenet_v1_1(batch)]
}

/// conv → batch-norm → ReLU, the ubiquitous fused block.
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv_bn_relu(
    g: &mut Graph,
    x: NodeId,
    ic: usize,
    oc: usize,
    k: usize,
    s: usize,
    p: usize,
    groups: usize,
) -> NodeId {
    let c = g
        .add_conv2d(x, ic, oc, k, s, p, groups, false)
        .expect("model builders use consistent channel counts");
    let b = g.add_batch_norm(c);
    g.add_relu(b)
}

/// conv → ReLU (no batch-norm), used by the pre-BN era models.
pub(crate) fn conv_relu(
    g: &mut Graph,
    x: NodeId,
    ic: usize,
    oc: usize,
    k: usize,
    s: usize,
    p: usize,
) -> NodeId {
    let c = g
        .add_conv2d(x, ic, oc, k, s, p, 1, true)
        .expect("model builders use consistent channel counts");
    g.add_relu(c)
}

/// Max pool helper.
pub(crate) fn max_pool(
    g: &mut Graph,
    x: NodeId,
    k: usize,
    s: usize,
    p: usize,
    ceil_mode: bool,
) -> NodeId {
    g.add_pool2d(
        x,
        Pool2dAttrs {
            kind: PoolKind::Max,
            kernel: (k, k),
            stride: (s, s),
            padding: Padding::same(p),
            ceil_mode,
        },
    )
    .expect("model builders pool rank-4 tensors")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::extract_tasks;

    #[test]
    fn paper_task_counts() {
        // The paper tunes 19 MobileNet-v1 nodes (Fig. 5) and 58 nodes across
        // all five models (Section V). Our Relay-free extraction reproduces
        // the per-model MobileNet count exactly; the totals per model are
        // locked here so any graph change is caught.
        let counts: Vec<(String, usize)> =
            paper_models(1).iter().map(|m| (m.name.clone(), extract_tasks(m).len())).collect();
        assert_eq!(
            counts,
            vec![
                ("alexnet".to_string(), 5),
                ("resnet18".to_string(), 11),
                ("vgg16".to_string(), 9),
                ("mobilenet_v1".to_string(), 19),
                ("squeezenet_v1.1".to_string(), 18),
            ]
        );
    }

    #[test]
    fn all_models_validate_and_end_in_softmax() {
        for m in paper_models(1) {
            m.validate().unwrap();
            let outs = m.output_ids();
            assert_eq!(outs.len(), 1, "{} must have one output", m.name);
            let out = m.node(outs[0]);
            assert_eq!(out.output.dims(), &[1, 1000], "{}", m.name);
        }
    }

    #[test]
    fn batch_size_propagates() {
        for m in paper_models(4) {
            let out = m.node(m.output_ids()[0]);
            assert_eq!(out.output.dim(0), 4, "{}", m.name);
        }
    }
}

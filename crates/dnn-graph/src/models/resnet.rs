//! ResNet-18 (He et al., CVPR 2016).

use super::{conv_bn_relu, max_pool};
use crate::graph::{Graph, NodeId};
use crate::tensor::Shape;

/// One basic residual block: two 3×3 convs plus identity or projection
/// shortcut. Returns the post-addition activation.
fn basic_block(g: &mut Graph, x: NodeId, ic: usize, oc: usize, stride: usize) -> NodeId {
    let c1 = conv_bn_relu(g, x, ic, oc, 3, stride, 1, 1);
    let c2 = g.add_conv2d(c1, oc, oc, 3, 1, 1, 1, false).expect("block channels match");
    let b2 = g.add_batch_norm(c2);
    let shortcut = if stride != 1 || ic != oc {
        let p = g.add_conv2d(x, ic, oc, 1, stride, 0, 1, false).expect("projection shortcut");
        g.add_batch_norm(p)
    } else {
        x
    };
    let sum = g.add_residual(b2, shortcut).expect("branch shapes agree");
    g.add_relu(sum)
}

/// Builds ResNet-18 for `batch × 3 × 224 × 224` inputs.
///
/// A 7×7 stem, four stages of two basic blocks (64/128/256/512 channels),
/// global average pooling and a 512→1000 classifier. Eleven unique conv
/// workloads (shortcut projections included).
#[must_use]
pub fn resnet18(batch: usize) -> Graph {
    let mut g = Graph::new("resnet18");
    let x = g.add_input(Shape::nchw(batch, 3, 224, 224));

    let stem = conv_bn_relu(&mut g, x, 3, 64, 7, 2, 3, 1); // 112x112
    let mut cur = max_pool(&mut g, stem, 3, 2, 1, false); // 56x56

    let stages: [(usize, usize, usize); 4] =
        [(64, 64, 1), (64, 128, 2), (128, 256, 2), (256, 512, 2)];
    for (ic, oc, first_stride) in stages {
        cur = basic_block(&mut g, cur, ic, oc, first_stride);
        cur = basic_block(&mut g, cur, oc, oc, 1);
    }

    let gap = g.add_global_avg_pool(cur).expect("rank-4 pooling");
    let flat = g.add_flatten(gap).expect("rank-4 flatten");
    let fc = g.add_dense(flat, 512, 1000, true).expect("512 features");
    let _out = g.add_softmax(fc);
    g
}

/// Builds ResNet-34 for `batch × 3 × 224 × 224` inputs (extension model,
/// not part of the paper's Table I): the same basic-block design with
/// 3/4/6/3 blocks per stage.
#[must_use]
pub fn resnet34(batch: usize) -> Graph {
    let mut g = Graph::new("resnet34");
    let x = g.add_input(Shape::nchw(batch, 3, 224, 224));

    let stem = conv_bn_relu(&mut g, x, 3, 64, 7, 2, 3, 1);
    let mut cur = max_pool(&mut g, stem, 3, 2, 1, false);

    let stages: [(usize, usize, usize, usize); 4] =
        [(64, 64, 1, 3), (64, 128, 2, 4), (128, 256, 2, 6), (256, 512, 2, 3)];
    for (ic, oc, first_stride, blocks) in stages {
        cur = basic_block(&mut g, cur, ic, oc, first_stride);
        for _ in 1..blocks {
            cur = basic_block(&mut g, cur, oc, oc, 1);
        }
    }

    let gap = g.add_global_avg_pool(cur).expect("rank-4 pooling");
    let flat = g.add_flatten(gap).expect("rank-4 flatten");
    let fc = g.add_dense(flat, 512, 1000, true).expect("512 features");
    let _out = g.add_softmax(fc);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::extract_tasks;

    #[test]
    fn eleven_unique_conv_tasks() {
        let tasks = extract_tasks(&resnet18(1));
        assert_eq!(tasks.len(), 11);
        // 1 stem + 16 block convs + 3 projections = 20 conv nodes total.
        let total: usize = tasks.iter().map(|t| t.occurrences).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn resnet34_has_same_unique_tasks_as_18() {
        // Deeper stages repeat the same workloads: identical task set,
        // higher occurrence counts.
        let t18 = extract_tasks(&resnet18(1));
        let t34 = extract_tasks(&resnet34(1));
        assert_eq!(t18.len(), t34.len());
        let n18: usize = t18.iter().map(|t| t.occurrences).sum();
        let n34: usize = t34.iter().map(|t| t.occurrences).sum();
        assert!(n34 > n18);
    }

    #[test]
    fn final_stage_is_7x7() {
        let g = resnet18(1);
        // The node feeding global-avg-pool must be 512 x 7 x 7.
        let gap = g
            .nodes()
            .iter()
            .find(|n| matches!(n.op, crate::ops::Op::GlobalAvgPool))
            .expect("resnet has a global avg pool");
        assert_eq!(g.node(gap.inputs[0]).output.dims(), &[1, 512, 7, 7]);
    }

    #[test]
    fn identity_shortcut_has_no_projection() {
        // Stage 1 blocks are stride-1 64->64: exactly 3 1x1 projections in
        // the whole net (stages 2-4).
        let g = resnet18(1);
        let projections = g
            .nodes()
            .iter()
            .filter(|n| match &n.op {
                crate::ops::Op::Conv2d(a) => a.kernel == (1, 1),
                _ => false,
            })
            .count();
        assert_eq!(projections, 3);
    }
}

//! Graph-level optimization: operator fusion.
//!
//! The paper's framework (Fig. 1) first runs high-level computation-graph
//! optimization — the dominant transform being *operator fusion*, which folds
//! element-wise epilogues (bias/ReLU/batch-norm/residual add) into the
//! preceding compute-heavy kernel so that one tuning task covers the fused
//! node. This module reproduces that pass: a greedy, single-consumer fusion
//! of element-wise operators into their producing anchor, identical in effect
//! to TVM's `FuseOps` for the model zoo in [`crate::models`].

use crate::graph::{Graph, NodeId};
use crate::ops::Op;
use serde::{Deserialize, Serialize};

/// A fused kernel: one anchor plus zero or more element-wise epilogue ops,
/// or a standalone non-fusible operator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusedGroup {
    /// The compute anchor (conv2d/dense), if this group has one.
    pub anchor: Option<NodeId>,
    /// All member node ids in topological order (anchor first if present).
    pub members: Vec<NodeId>,
}

impl FusedGroup {
    /// The node whose output leaves the group (the last member).
    #[must_use]
    pub fn output(&self) -> NodeId {
        // aal-lint: allow(unwrap, reason = "a group is created with one member and never shrinks")
        *self.members.last().expect("groups are never empty")
    }
}

/// Result of running fusion over a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusedGraph {
    /// Fused groups in topological order.
    pub groups: Vec<FusedGroup>,
}

impl FusedGraph {
    /// Number of groups (deployable kernels).
    #[must_use]
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True if no groups exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Iterates over groups that carry a tunable anchor.
    pub fn anchored(&self) -> impl Iterator<Item = &FusedGroup> {
        self.groups.iter().filter(|g| g.anchor.is_some())
    }
}

/// Number of consumers of every node.
fn consumer_counts(graph: &Graph) -> Vec<usize> {
    let mut counts = vec![0usize; graph.len()];
    for n in graph.nodes() {
        for &i in &n.inputs {
            counts[i] += 1;
        }
    }
    counts
}

/// Runs operator fusion.
///
/// An element-wise node fuses into the group of its *first* input when that
/// input is consumed only by this node (single-consumer rule, as in TVM);
/// residual [`Op::Add`] fuses into the branch that produced its first
/// operand. All other operators start their own group. Inputs are skipped —
/// they produce no kernel.
#[must_use]
pub fn fuse(graph: &Graph) -> FusedGraph {
    let consumers = consumer_counts(graph);
    // group_of[node] = index into groups, usize::MAX while unassigned.
    let mut group_of = vec![usize::MAX; graph.len()];
    let mut groups: Vec<FusedGroup> = Vec::new();

    for node in graph.nodes() {
        if matches!(node.op, Op::Input(_)) {
            continue;
        }
        let fuse_target = if node.op.is_elementwise() && !node.inputs.is_empty() {
            let producer = node.inputs[0];
            // Single-consumer rule: only fold into a producer whose output
            // is not needed elsewhere, and which already belongs to a group.
            if consumers[producer] == 1 && group_of[producer] != usize::MAX {
                Some(group_of[producer])
            } else {
                None
            }
        } else {
            None
        };
        match fuse_target {
            Some(gi) => {
                groups[gi].members.push(node.id);
                group_of[node.id] = gi;
            }
            None => {
                let gi = groups.len();
                groups.push(FusedGroup {
                    anchor: node.op.is_anchor().then_some(node.id),
                    members: vec![node.id],
                });
                group_of[node.id] = gi;
            }
        }
    }
    FusedGraph { groups }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Shape;

    #[test]
    fn conv_bn_relu_fuses_to_one_group() {
        let mut g = Graph::new("t");
        let x = g.add_input(Shape::nchw(1, 3, 32, 32));
        let c = g.add_conv2d(x, 3, 8, 3, 1, 1, 1, false).unwrap();
        let b = g.add_batch_norm(c);
        let r = g.add_relu(b);
        let fused = fuse(&g);
        assert_eq!(fused.len(), 1);
        assert_eq!(fused.groups[0].anchor, Some(c));
        assert_eq!(fused.groups[0].members, vec![c, b, r]);
        assert_eq!(fused.groups[0].output(), r);
    }

    #[test]
    fn residual_add_fuses_into_branch() {
        // x -> conv1 -> relu -> conv2 -> add(x2 branch) ; shortcut conv.
        let mut g = Graph::new("t");
        let x = g.add_input(Shape::nchw(1, 8, 16, 16));
        let c1 = g.add_conv2d(x, 8, 8, 3, 1, 1, 1, false).unwrap();
        let r1 = g.add_relu(c1);
        let c2 = g.add_conv2d(r1, 8, 8, 3, 1, 1, 1, false).unwrap();
        let add = g.add_residual(c2, x).unwrap();
        let fused = fuse(&g);
        // Groups: [c1, r1], [c2, add]. The add folds into c2's group because
        // c2 has a single consumer.
        assert_eq!(fused.len(), 2);
        assert_eq!(fused.groups[1].members, vec![c2, add]);
    }

    #[test]
    fn multi_consumer_blocks_fusion() {
        // conv output feeds both relu and a second conv: relu cannot fuse.
        let mut g = Graph::new("t");
        let x = g.add_input(Shape::nchw(1, 4, 8, 8));
        let c = g.add_conv2d(x, 4, 4, 3, 1, 1, 1, false).unwrap();
        let _r = g.add_relu(c);
        let _c2 = g.add_conv2d(c, 4, 4, 3, 1, 1, 1, false).unwrap();
        let fused = fuse(&g);
        assert_eq!(fused.len(), 3);
    }

    #[test]
    fn pool_is_standalone() {
        let mut g = Graph::new("t");
        let x = g.add_input(Shape::nchw(1, 4, 8, 8));
        let c = g.add_conv2d(x, 4, 4, 3, 1, 1, 1, false).unwrap();
        let r = g.add_relu(c);
        let p = g
            .add_pool2d(
                r,
                crate::ops::Pool2dAttrs {
                    kind: crate::ops::PoolKind::Max,
                    kernel: (2, 2),
                    stride: (2, 2),
                    padding: crate::ops::Padding::same(0),
                    ceil_mode: false,
                },
            )
            .unwrap();
        let fused = fuse(&g);
        assert_eq!(fused.len(), 2);
        assert_eq!(fused.groups[1].members, vec![p]);
        assert_eq!(fused.groups[1].anchor, None);
        assert_eq!(fused.anchored().count(), 1);
    }
}

//! Computational-graph intermediate representation for DNN deployment tuning.
//!
//! This crate rebuilds, in pure Rust, the front-end substrate that the paper
//! *“Deep Neural Network Hardware Deployment Optimization via Advanced Active
//! Learning”* (Sun et al., DATE 2021) obtains from TVM/Relay:
//!
//! * a tensor/graph IR with shape inference ([`graph::Graph`]),
//! * the operator set used by the five evaluated models ([`ops::Op`]),
//! * graph-level optimization — operator fusion ([`fusion`]),
//! * a model zoo with AlexNet, ResNet-18, VGG-16, MobileNet-v1 and
//!   SqueezeNet-v1.1 ([`models`]),
//! * extraction of node-wise tuning tasks ([`task`]), the unit of work the
//!   paper's active-learning framework optimizes.
//!
//! # Example
//!
//! ```
//! use dnn_graph::models;
//! use dnn_graph::task::extract_tasks;
//!
//! let model = models::mobilenet_v1(1);
//! let tasks = extract_tasks(&model);
//! // The paper tunes 19 unique convolution workloads for MobileNet-v1.
//! assert_eq!(tasks.len(), 19);
//! ```

pub mod dot;
pub mod error;
pub mod fusion;
pub mod graph;
pub mod infer;
pub mod models;
pub mod ops;
pub mod task;
pub mod tensor;

pub use error::GraphError;
pub use graph::{Graph, Node, NodeId};
pub use ops::Op;
pub use task::{extract_tasks, TaskKind, TuningTask};
pub use tensor::{DType, Shape};

//! Graphviz (`dot`) export of computational graphs.
//!
//! Renders a [`Graph`] — optionally with its fused groups — so model wiring
//! can be inspected visually, the way TVM users inspect Relay graphs.

use crate::fusion::FusedGraph;
use crate::graph::Graph;
use crate::ops::Op;
use std::fmt::Write as _;

/// Renders `graph` as a Graphviz digraph.
///
/// Nodes carry the operator name and output shape; inputs are drawn as
/// boxes, compute anchors (conv/dense) as bold ellipses.
#[must_use]
pub fn to_dot(graph: &Graph) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", graph.name);
    let _ = writeln!(s, "  rankdir=TB;");
    for node in graph.nodes() {
        let shape_attr = match node.op {
            Op::Input(_) => "shape=box",
            Op::Conv2d(_) | Op::Dense(_) => "style=bold",
            _ => "",
        };
        let _ =
            writeln!(s, "  n{} [label=\"{}\\n{}\" {}];", node.id, node.op, node.output, shape_attr);
        for &input in &node.inputs {
            let _ = writeln!(s, "  n{input} -> n{};", node.id);
        }
    }
    let _ = writeln!(s, "}}");
    s
}

/// Renders `graph` with fusion groups as Graphviz clusters.
#[must_use]
pub fn to_dot_fused(graph: &Graph, fused: &FusedGraph) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", graph.name);
    let _ = writeln!(s, "  rankdir=TB; compound=true;");
    for (gi, group) in fused.groups.iter().enumerate() {
        let _ = writeln!(s, "  subgraph cluster_{gi} {{");
        let label = group.anchor.map_or("aux".to_string(), |a| graph.node(a).op.name().to_string());
        let _ = writeln!(s, "    label=\"{label}\";");
        for &m in &group.members {
            let node = graph.node(m);
            let _ = writeln!(s, "    n{} [label=\"{}\\n{}\"];", m, node.op, node.output);
        }
        let _ = writeln!(s, "  }}");
    }
    // Inputs live outside any cluster; edges afterwards.
    for node in graph.nodes() {
        if matches!(node.op, Op::Input(_)) {
            let _ = writeln!(s, "  n{} [label=\"input\\n{}\" shape=box];", node.id, node.output);
        }
        for &input in &node.inputs {
            let _ = writeln!(s, "  n{input} -> n{};", node.id);
        }
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::fuse;
    use crate::tensor::Shape;

    fn tiny() -> Graph {
        let mut g = Graph::new("tiny");
        let x = g.add_input(Shape::nchw(1, 3, 8, 8));
        let c = g.add_conv2d(x, 3, 4, 3, 1, 1, 1, false).unwrap();
        let _ = g.add_relu(c);
        g
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = tiny();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph \"tiny\""));
        assert!(dot.contains("n0 [label=\"input"));
        assert!(dot.contains("n1 [label=\"conv2d"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("n1 -> n2;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn fused_dot_groups_conv_and_relu() {
        let g = tiny();
        let fused = fuse(&g);
        let dot = to_dot_fused(&g, &fused);
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("label=\"conv2d\""));
    }

    #[test]
    fn whole_model_export_is_parseable_shape() {
        // Sanity: balanced braces on a real model.
        let g = crate::models::squeezenet_v1_1(1);
        let dot = to_dot(&g);
        let open = dot.matches('{').count();
        let close = dot.matches('}').count();
        assert_eq!(open, close);
        assert!(dot.matches("->").count() > g.len());
    }
}

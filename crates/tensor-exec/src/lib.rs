//! Functional execution of DNN graphs, on the CPU.
//!
//! The paper's flow compiles each tuned configuration to CUDA and runs it;
//! TVM validates that every schedule computes the *same function* as the
//! un-scheduled operator. This crate provides that correctness substrate:
//!
//! * [`tensor::Tensor`] — a dense `f32` NCHW tensor;
//! * [`mod@reference`] — straightforward reference implementations of every
//!   operator in the graph IR;
//! * [`exec`] — a graph interpreter with deterministic pseudo-random
//!   weights, used to validate whole-model wiring (shapes *and* values);
//! * [`tiled`] — an interpreter that executes a convolution through the
//!   exact loop decomposition a schedule configuration induces (block /
//!   virtual-thread / thread / inner splits and reduction splits), proving
//!   lowered schedules are semantics-preserving.
//!
//! # Example
//!
//! ```
//! use dnn_graph::{Graph, Shape};
//! use tensor_exec::exec::Executor;
//!
//! let mut g = Graph::new("tiny");
//! let x = g.add_input(Shape::nchw(1, 3, 16, 16));
//! let c = g.add_conv2d(x, 3, 8, 3, 1, 1, 1, true)?;
//! let r = g.add_relu(c);
//! let f = g.add_flatten(r)?;
//! let d = g.add_dense(f, 8 * 256, 10, true)?;
//! let _ = g.add_softmax(d);
//! let out = Executor::new(&g, 0).run();
//! assert_eq!(out.shape.dims(), &[1, 10]);
//! // Softmax output sums to 1.
//! let sum: f32 = out.data.iter().sum();
//! assert!((sum - 1.0).abs() < 1e-3);
//! # Ok::<(), dnn_graph::GraphError>(())
//! ```

pub mod exec;
pub mod reference;
pub mod tensor;
pub mod tiled;

pub use exec::Executor;
pub use tensor::Tensor;

//! Reference (unscheduled) implementations of every operator.
//!
//! These are the semantic ground truth: straightforward loop nests with no
//! tiling, the way TVM's `topi.testing` numpy kernels define correctness.

use crate::tensor::Tensor;
use dnn_graph::ops::{Conv2dAttrs, DenseAttrs, Pool2dAttrs, PoolKind};
use dnn_graph::Shape;

/// 2-D convolution (supports grouped / depth-wise via `attrs.groups`).
///
/// `weight` is `[out_c, in_c/groups, kh, kw]`; `bias` is `[out_c]` or empty.
///
/// # Panics
///
/// Panics if shapes are inconsistent with `attrs`.
#[must_use]
pub fn conv2d(x: &Tensor, weight: &Tensor, bias: &[f32], attrs: &Conv2dAttrs) -> Tensor {
    let (n, ic, h, w) = (x.shape.dim(0), x.shape.dim(1), x.shape.dim(2), x.shape.dim(3));
    assert_eq!(ic, attrs.in_channels, "input channel mismatch");
    assert_eq!(
        weight.shape.dims(),
        &[attrs.out_channels, ic / attrs.groups, attrs.kernel.0, attrs.kernel.1],
        "weight shape mismatch"
    );
    let (oh, ow) = attrs.out_hw(h, w);
    let mut out = Tensor::zeros(Shape::nchw(n, attrs.out_channels, oh, ow));
    let icg = ic / attrs.groups;
    let ocg = attrs.out_channels / attrs.groups;
    for b in 0..n {
        for oc in 0..attrs.out_channels {
            let g = oc / ocg;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = if bias.is_empty() { 0.0 } else { bias[oc] };
                    for rc in 0..icg {
                        for ry in 0..attrs.kernel.0 {
                            for rx in 0..attrs.kernel.1 {
                                let iy =
                                    (oy * attrs.stride.0 + ry) as isize - attrs.padding.h as isize;
                                let ix =
                                    (ox * attrs.stride.1 + rx) as isize - attrs.padding.w as isize;
                                if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                    continue;
                                }
                                acc += x.at4(b, g * icg + rc, iy as usize, ix as usize)
                                    * weight.at4(oc, rc, ry, rx);
                            }
                        }
                    }
                    *out.at4_mut(b, oc, oy, ox) = acc;
                }
            }
        }
    }
    out
}

/// Dense layer: `y = x · Wᵀ + b` with `W` of shape `[out, in]`.
///
/// # Panics
///
/// Panics if shapes are inconsistent with `attrs`.
#[must_use]
pub fn dense(x: &Tensor, weight: &Tensor, bias: &[f32], attrs: &DenseAttrs) -> Tensor {
    let (n, d) = (x.shape.dim(0), x.shape.dim(1));
    assert_eq!(d, attrs.in_features, "feature mismatch");
    assert_eq!(weight.shape.dims(), &[attrs.out_features, attrs.in_features]);
    let mut out = Tensor::zeros(Shape::new(vec![n, attrs.out_features]));
    for b in 0..n {
        for o in 0..attrs.out_features {
            let mut acc = if bias.is_empty() { 0.0 } else { bias[o] };
            for k in 0..d {
                acc += x.data[b * d + k] * weight.data[o * d + k];
            }
            out.data[b * attrs.out_features + o] = acc;
        }
    }
    out
}

/// 2-D max/average pooling.
#[must_use]
pub fn pool2d(x: &Tensor, attrs: &Pool2dAttrs) -> Tensor {
    let (n, c, h, w) = (x.shape.dim(0), x.shape.dim(1), x.shape.dim(2), x.shape.dim(3));
    let (oh, ow) = attrs.out_hw(h, w);
    let mut out = Tensor::zeros(Shape::nchw(n, c, oh, ow));
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc: Option<f32> = None;
                    let mut count = 0usize;
                    for ky in 0..attrs.kernel.0 {
                        for kx in 0..attrs.kernel.1 {
                            let iy = (oy * attrs.stride.0 + ky) as isize - attrs.padding.h as isize;
                            let ix = (ox * attrs.stride.1 + kx) as isize - attrs.padding.w as isize;
                            if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                continue;
                            }
                            let v = x.at4(b, ch, iy as usize, ix as usize);
                            count += 1;
                            acc = Some(match (attrs.kind, acc) {
                                (PoolKind::Max, None) => v,
                                (PoolKind::Max, Some(a)) => a.max(v),
                                (PoolKind::Avg, None) => v,
                                (PoolKind::Avg, Some(a)) => a + v,
                            });
                        }
                    }
                    let v = match (attrs.kind, acc) {
                        (_, None) => 0.0,
                        (PoolKind::Max, Some(a)) => a,
                        (PoolKind::Avg, Some(a)) => a / count as f32,
                    };
                    *out.at4_mut(b, ch, oy, ox) = v;
                }
            }
        }
    }
    out
}

/// Global average pool to `n × c × 1 × 1`.
#[must_use]
pub fn global_avg_pool(x: &Tensor) -> Tensor {
    let (n, c, h, w) = (x.shape.dim(0), x.shape.dim(1), x.shape.dim(2), x.shape.dim(3));
    let mut out = Tensor::zeros(Shape::nchw(n, c, 1, 1));
    for b in 0..n {
        for ch in 0..c {
            let mut acc = 0.0;
            for y in 0..h {
                for xx in 0..w {
                    acc += x.at4(b, ch, y, xx);
                }
            }
            *out.at4_mut(b, ch, 0, 0) = acc / (h * w) as f32;
        }
    }
    out
}

/// ReLU.
#[must_use]
pub fn relu(x: &Tensor) -> Tensor {
    Tensor { shape: x.shape.clone(), data: x.data.iter().map(|v| v.max(0.0)).collect() }
}

/// Inference-mode batch normalization with per-channel scale/shift.
///
/// # Panics
///
/// Panics if `scale`/`shift` are not `channels` long.
#[must_use]
pub fn batch_norm(x: &Tensor, scale: &[f32], shift: &[f32]) -> Tensor {
    let c = x.shape.dim(1);
    assert_eq!(scale.len(), c, "scale length mismatch");
    assert_eq!(shift.len(), c, "shift length mismatch");
    let chw = x.shape.num_elements() / x.shape.dim(0);
    let hw = chw / c;
    let data = x
        .data
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let ch = (i % chw) / hw;
            v * scale[ch] + shift[ch]
        })
        .collect();
    Tensor { shape: x.shape.clone(), data }
}

/// Element-wise addition.
///
/// # Panics
///
/// Panics if shapes differ.
#[must_use]
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape, b.shape, "shape mismatch");
    Tensor {
        shape: a.shape.clone(),
        data: a.data.iter().zip(&b.data).map(|(x, y)| x + y).collect(),
    }
}

/// Channel-wise concat of rank-4 tensors.
///
/// # Panics
///
/// Panics if non-channel extents differ or `xs` is empty.
#[must_use]
pub fn concat(xs: &[&Tensor]) -> Tensor {
    assert!(!xs.is_empty(), "concat of nothing");
    let first = xs[0];
    let (n, h, w) = (first.shape.dim(0), first.shape.dim(2), first.shape.dim(3));
    let total_c: usize = xs.iter().map(|t| t.shape.dim(1)).sum();
    let mut out = Tensor::zeros(Shape::nchw(n, total_c, h, w));
    for b in 0..n {
        let mut c_off = 0;
        for t in xs {
            let c = t.shape.dim(1);
            for ch in 0..c {
                for y in 0..h {
                    for xx in 0..w {
                        *out.at4_mut(b, c_off + ch, y, xx) = t.at4(b, ch, y, xx);
                    }
                }
            }
            c_off += c;
        }
    }
    out
}

/// Flatten NCHW → N×(CHW).
#[must_use]
pub fn flatten(x: &Tensor) -> Tensor {
    let n = x.shape.dim(0);
    let rest = x.shape.num_elements() / n;
    Tensor { shape: Shape::new(vec![n, rest]), data: x.data.clone() }
}

/// Numerically-stable softmax over the last dimension of a rank-2 tensor.
#[must_use]
pub fn softmax(x: &Tensor) -> Tensor {
    let (n, d) = (x.shape.dim(0), x.shape.dim(1));
    let mut out = Tensor::zeros(x.shape.clone());
    for b in 0..n {
        let row = &x.data[b * d..(b + 1) * d];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        for (o, e) in out.data[b * d..(b + 1) * d].iter_mut().zip(exps) {
            *o = e / sum;
        }
    }
    out
}

/// Local response normalization (AlexNet), across channels with the
/// standard size-5 window.
#[must_use]
pub fn lrn(x: &Tensor) -> Tensor {
    const SIZE: isize = 5;
    const ALPHA: f32 = 1e-4;
    const BETA: f32 = 0.75;
    const K: f32 = 2.0;
    let (n, c, h, w) = (x.shape.dim(0), x.shape.dim(1), x.shape.dim(2), x.shape.dim(3));
    let mut out = Tensor::zeros(x.shape.clone());
    for b in 0..n {
        for ch in 0..c {
            for y in 0..h {
                for xx in 0..w {
                    let mut sq = 0.0;
                    for d in -(SIZE / 2)..=(SIZE / 2) {
                        let cc = ch as isize + d;
                        if cc < 0 || cc >= c as isize {
                            continue;
                        }
                        let v = x.at4(b, cc as usize, y, xx);
                        sq += v * v;
                    }
                    let denom = (K + ALPHA * sq).powf(BETA);
                    *out.at4_mut(b, ch, y, xx) = x.at4(b, ch, y, xx) / denom;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::ops::Padding;

    fn conv_attrs(ic: usize, oc: usize, k: usize, s: usize, p: usize, g: usize) -> Conv2dAttrs {
        Conv2dAttrs {
            in_channels: ic,
            out_channels: oc,
            kernel: (k, k),
            stride: (s, s),
            padding: Padding::same(p),
            groups: g,
            bias: false,
        }
    }

    #[test]
    fn conv_identity_kernel() {
        // 1x1 conv with weight 1.0 copies the input.
        let x = Tensor::random(Shape::nchw(1, 1, 4, 4), 1);
        let w = Tensor::from_vec(Shape::new(vec![1, 1, 1, 1]), vec![1.0]);
        let y = conv2d(&x, &w, &[], &conv_attrs(1, 1, 1, 1, 0, 1));
        assert_eq!(y.data, x.data);
    }

    #[test]
    fn conv_sums_window() {
        // 3x3 all-ones kernel over an all-ones 3x3 input, no padding: 9.
        let x = Tensor::from_vec(Shape::nchw(1, 1, 3, 3), vec![1.0; 9]);
        let w = Tensor::from_vec(Shape::new(vec![1, 1, 3, 3]), vec![1.0; 9]);
        let y = conv2d(&x, &w, &[], &conv_attrs(1, 1, 3, 1, 0, 1));
        assert_eq!(y.shape.dims(), &[1, 1, 1, 1]);
        assert_eq!(y.data[0], 9.0);
    }

    #[test]
    fn conv_padding_zeros_border() {
        let x = Tensor::from_vec(Shape::nchw(1, 1, 1, 1), vec![2.0]);
        let w = Tensor::from_vec(Shape::new(vec![1, 1, 3, 3]), vec![1.0; 9]);
        let y = conv2d(&x, &w, &[], &conv_attrs(1, 1, 3, 1, 1, 1));
        // Only the center tap sees the value.
        assert_eq!(y.shape.dims(), &[1, 1, 1, 1]);
        assert_eq!(y.data[0], 2.0);
    }

    #[test]
    fn depthwise_conv_keeps_channels_separate() {
        // Two channels; kernel scales ch0 by 1 and ch1 by 10.
        let x = Tensor::from_vec(Shape::nchw(1, 2, 1, 1), vec![3.0, 4.0]);
        let w = Tensor::from_vec(Shape::new(vec![2, 1, 1, 1]), vec![1.0, 10.0]);
        let y = conv2d(&x, &w, &[], &conv_attrs(2, 2, 1, 1, 0, 2));
        assert_eq!(y.data, vec![3.0, 40.0]);
    }

    #[test]
    fn conv_bias_added() {
        let x = Tensor::from_vec(Shape::nchw(1, 1, 1, 1), vec![1.0]);
        let w = Tensor::from_vec(Shape::new(vec![1, 1, 1, 1]), vec![2.0]);
        let y = conv2d(&x, &w, &[0.5], &conv_attrs(1, 1, 1, 1, 0, 1));
        assert_eq!(y.data[0], 2.5);
    }

    #[test]
    fn dense_matches_manual() {
        let x = Tensor::from_vec(Shape::new(vec![1, 3]), vec![1.0, 2.0, 3.0]);
        let w = Tensor::from_vec(Shape::new(vec![2, 3]), vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0]);
        let y = dense(
            &x,
            &w,
            &[10.0, 20.0],
            &DenseAttrs { in_features: 3, out_features: 2, bias: true },
        );
        assert_eq!(y.data, vec![11.0, 25.0]);
    }

    #[test]
    fn max_and_avg_pool() {
        let x = Tensor::from_vec(Shape::nchw(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let attrs = Pool2dAttrs {
            kind: PoolKind::Max,
            kernel: (2, 2),
            stride: (2, 2),
            padding: Padding::same(0),
            ceil_mode: false,
        };
        assert_eq!(pool2d(&x, &attrs).data, vec![4.0]);
        let avg = Pool2dAttrs { kind: PoolKind::Avg, ..attrs };
        assert_eq!(pool2d(&x, &avg).data, vec![2.5]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(Shape::new(vec![2, 3]), vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let y = softmax(&x);
        for b in 0..2 {
            let s: f32 = y.data[b * 3..(b + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Monotone: larger logits, larger probabilities.
        assert!(y.data[2] > y.data[1] && y.data[1] > y.data[0]);
    }

    #[test]
    fn batch_norm_scales_per_channel() {
        let x = Tensor::from_vec(Shape::nchw(1, 2, 1, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let y = batch_norm(&x, &[2.0, 0.5], &[0.0, 1.0]);
        assert_eq!(y.data, vec![2.0, 4.0, 2.5, 3.0]);
    }

    #[test]
    fn concat_stacks_channels() {
        let a = Tensor::from_vec(Shape::nchw(1, 1, 1, 2), vec![1.0, 2.0]);
        let b = Tensor::from_vec(Shape::nchw(1, 2, 1, 2), vec![3.0, 4.0, 5.0, 6.0]);
        let y = concat(&[&a, &b]);
        assert_eq!(y.shape.dims(), &[1, 3, 1, 2]);
        assert_eq!(y.data, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn relu_and_add() {
        let a = Tensor::from_vec(Shape::new(vec![1, 3]), vec![-1.0, 0.5, 2.0]);
        assert_eq!(relu(&a).data, vec![0.0, 0.5, 2.0]);
        let b = add(&a, &a);
        assert_eq!(b.data, vec![-2.0, 1.0, 4.0]);
    }

    #[test]
    fn lrn_shrinks_but_preserves_sign() {
        let x = Tensor::from_vec(Shape::nchw(1, 3, 1, 1), vec![1.0, -2.0, 3.0]);
        let y = lrn(&x);
        for (a, b) in x.data.iter().zip(&y.data) {
            assert!(b.abs() < a.abs());
            assert_eq!(a.signum(), b.signum());
        }
    }

    #[test]
    fn grouped_conv_matches_two_half_convs() {
        // groups=2 conv == two independent convs on channel halves.
        let x = Tensor::random(Shape::nchw(1, 4, 5, 5), 2);
        let w = Tensor::random(Shape::new(vec![6, 2, 3, 3]), 3);
        let grouped = conv2d(&x, &w, &[], &conv_attrs(4, 6, 3, 1, 1, 2));

        // Manual split.
        let mut x0 = Tensor::zeros(Shape::nchw(1, 2, 5, 5));
        let mut x1 = Tensor::zeros(Shape::nchw(1, 2, 5, 5));
        for c in 0..2 {
            for y in 0..5 {
                for xx in 0..5 {
                    *x0.at4_mut(0, c, y, xx) = x.at4(0, c, y, xx);
                    *x1.at4_mut(0, c, y, xx) = x.at4(0, c + 2, y, xx);
                }
            }
        }
        let w0 = Tensor::from_vec(Shape::new(vec![3, 2, 3, 3]), w.data[..54].to_vec());
        let w1 = Tensor::from_vec(Shape::new(vec![3, 2, 3, 3]), w.data[54..].to_vec());
        let y0 = conv2d(&x0, &w0, &[], &conv_attrs(2, 3, 3, 1, 1, 1));
        let y1 = conv2d(&x1, &w1, &[], &conv_attrs(2, 3, 3, 1, 1, 1));
        let manual = concat(&[&y0, &y1]);
        assert!(grouped.max_abs_diff(&manual) < 1e-5);
    }
}

//! Graph interpreter: runs a whole model functionally.

use crate::reference;
use crate::tensor::Tensor;
use dnn_graph::ops::Op;
use dnn_graph::{Graph, Shape};

/// Executes a [`Graph`] with deterministic pseudo-random weights and input.
///
/// Used to validate model wiring end-to-end: shape inference is checked
/// against the tensors actually produced, and the functional output feeds
/// the schedule-correctness tests in [`crate::tiled`].
pub struct Executor<'g> {
    graph: &'g Graph,
    seed: u64,
}

impl<'g> Executor<'g> {
    /// Creates an executor; `seed` determines weights and inputs.
    #[must_use]
    pub fn new(graph: &'g Graph, seed: u64) -> Self {
        Executor { graph, seed }
    }

    /// Deterministic weight tensor for node `id` (keyed by node id and the
    /// executor seed).
    fn weight(&self, id: usize, shape: Shape) -> Tensor {
        Tensor::random(shape, self.seed ^ (id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Runs the graph and returns the (single) output tensor.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no output or a node produces a tensor whose
    /// shape disagrees with shape inference (that would be a library bug).
    #[must_use]
    pub fn run(&self) -> Tensor {
        let mut values: Vec<Option<Tensor>> = vec![None; self.graph.len()];
        for node in self.graph.nodes() {
            // aal-lint: allow(unwrap, reason = "nodes execute in topological order, so inputs are already computed")
            let get = |i: usize| values[i].as_ref().expect("topological order");
            let out = match &node.op {
                Op::Input(shape) => Tensor::random(shape.clone(), self.seed),
                Op::Conv2d(a) => {
                    let w = self.weight(
                        node.id,
                        Shape::new(vec![
                            a.out_channels,
                            a.in_channels / a.groups,
                            a.kernel.0,
                            a.kernel.1,
                        ]),
                    );
                    let bias: Vec<f32> = if a.bias {
                        self.weight(node.id + 1_000_000, Shape::new(vec![a.out_channels])).data
                    } else {
                        Vec::new()
                    };
                    reference::conv2d(get(node.inputs[0]), &w, &bias, a)
                }
                Op::Dense(a) => {
                    let w = self.weight(node.id, Shape::new(vec![a.out_features, a.in_features]));
                    let bias: Vec<f32> = if a.bias {
                        self.weight(node.id + 1_000_000, Shape::new(vec![a.out_features])).data
                    } else {
                        Vec::new()
                    };
                    reference::dense(get(node.inputs[0]), &w, &bias, a)
                }
                Op::Pool2d(a) => reference::pool2d(get(node.inputs[0]), a),
                Op::GlobalAvgPool => reference::global_avg_pool(get(node.inputs[0])),
                Op::Relu => reference::relu(get(node.inputs[0])),
                Op::BatchNorm => {
                    let c = get(node.inputs[0]).shape.dim(1);
                    // Mild, deterministic per-channel affine.
                    let scale: Vec<f32> =
                        (0..c).map(|i| 0.9 + 0.2 * ((i % 7) as f32 / 7.0)).collect();
                    let shift: Vec<f32> =
                        (0..c).map(|i| -0.05 + 0.1 * ((i % 5) as f32 / 5.0)).collect();
                    reference::batch_norm(get(node.inputs[0]), &scale, &shift)
                }
                Op::Add => reference::add(get(node.inputs[0]), get(node.inputs[1])),
                Op::Concat => {
                    let ins: Vec<&Tensor> = node.inputs.iter().map(|&i| get(i)).collect();
                    reference::concat(&ins)
                }
                Op::Flatten => reference::flatten(get(node.inputs[0])),
                Op::Softmax => reference::softmax(get(node.inputs[0])),
                Op::Dropout => get(node.inputs[0]).clone(),
                Op::Lrn => reference::lrn(get(node.inputs[0])),
            };
            assert_eq!(
                out.shape, node.output,
                "node {} ({}) produced a shape disagreeing with inference",
                node.id, node.op
            );
            values[node.id] = Some(out);
        }
        let outs = self.graph.output_ids();
        assert_eq!(outs.len(), 1, "executor expects a single-output graph");
        // aal-lint: allow(unwrap, reason = "the output node was executed by the loop above")
        values[outs[0]].take().expect("output was computed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::models;

    #[test]
    fn tiny_graph_runs_and_checks_shapes() {
        let mut g = Graph::new("tiny");
        let x = g.add_input(Shape::nchw(1, 3, 8, 8));
        let c = g.add_conv2d(x, 3, 4, 3, 1, 1, 1, true).unwrap();
        let r = g.add_relu(c);
        let f = g.add_flatten(r).unwrap();
        let d = g.add_dense(f, 4 * 64, 10, true).unwrap();
        let _s = g.add_softmax(d);
        let out = Executor::new(&g, 1).run();
        assert_eq!(out.shape.dims(), &[1, 10]);
        let sum: f32 = out.data.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn executor_is_deterministic_per_seed() {
        let g = {
            let mut g = Graph::new("t");
            let x = g.add_input(Shape::nchw(1, 2, 6, 6));
            let c = g.add_conv2d(x, 2, 4, 3, 1, 1, 1, false).unwrap();
            let _ = g.add_relu(c);
            g
        };
        let a = Executor::new(&g, 7).run();
        let b = Executor::new(&g, 7).run();
        let c = Executor::new(&g, 8).run();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn mobilenet_runs_functionally() {
        // Executes all 27 convs + separable structure on a real input.
        let g = models::mobilenet_v1(1);
        let out = Executor::new(&g, 3).run();
        assert_eq!(out.shape.dims(), &[1, 1000]);
        let sum: f32 = out.data.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "softmax sum {sum}");
        assert!(out.data.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    #[ignore = "full ResNet-18 inference (~1.8 GMACs) is slow without --release"]
    fn resnet_shortcuts_execute() {
        let g = models::resnet18(1);
        let out = Executor::new(&g, 4).run();
        assert_eq!(out.shape.dims(), &[1, 1000]);
        assert!(out.data.iter().all(|v| v.is_finite()));
    }
}

//! Dense `f32` tensors.

use dnn_graph::Shape;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A dense row-major `f32` tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    /// Logical shape.
    pub shape: Shape,
    /// Row-major values (`shape.num_elements()` long).
    pub data: Vec<f32>,
}

impl Tensor {
    /// An all-zero tensor.
    #[must_use]
    pub fn zeros(shape: Shape) -> Self {
        let n = shape.num_elements();
        Tensor { shape, data: vec![0.0; n] }
    }

    /// A tensor of deterministic pseudo-random values in `[-0.5, 0.5)`,
    /// seeded so weights are reproducible across runs and platforms.
    #[must_use]
    pub fn random(shape: Shape, seed: u64) -> Self {
        let n = shape.num_elements();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let data = (0..n).map(|_| rng.gen_range(-0.5f32..0.5)).collect();
        Tensor { shape, data }
    }

    /// Builds a tensor from explicit values.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.num_elements()`.
    #[must_use]
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), shape.num_elements(), "value count mismatch");
        Tensor { shape, data }
    }

    /// Flat offset of an NCHW coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 (debug) or the coordinate is out
    /// of range.
    #[inline]
    #[must_use]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.shape.rank(), 4);
        let (cs, hs, ws) = (self.shape.dim(1), self.shape.dim(2), self.shape.dim(3));
        self.data[((n * cs + c) * hs + h) * ws + w]
    }

    /// Mutable NCHW accessor.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    #[inline]
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.rank(), 4);
        let (cs, hs, ws) = (self.shape.dim(1), self.shape.dim(2), self.shape.dim(3));
        &mut self.data[((n * cs + c) * hs + h) * ws + w]
    }

    /// Maximum absolute difference to another tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let mut t = Tensor::zeros(Shape::nchw(1, 2, 3, 4));
        *t.at4_mut(0, 1, 2, 3) = 7.0;
        assert_eq!(t.at4(0, 1, 2, 3), 7.0);
        assert_eq!(t.at4(0, 0, 0, 0), 0.0);
        assert_eq!(t.data.len(), 24);
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = Tensor::random(Shape::nchw(1, 3, 4, 4), 5);
        let b = Tensor::random(Shape::nchw(1, 3, 4, 4), 5);
        assert_eq!(a, b);
        assert!(a.data.iter().all(|v| (-0.5..0.5).contains(v)));
        let c = Tensor::random(Shape::nchw(1, 3, 4, 4), 6);
        assert_ne!(a, c);
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Tensor::from_vec(Shape::new(vec![3]), vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(Shape::new(vec![3]), vec![1.0, 2.5, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }
}

//! Tiled-schedule interpretation: executes a convolution through the exact
//! loop decomposition a configuration induces.
//!
//! A schedule is only usable if, for *every* point of the configuration
//! space, the tiled loop nest enumerates exactly the same (output, reduction)
//! index pairs as the reference operator. This module walks the decomposed
//! loops — block / virtual-thread / thread / inner for each output axis and
//! outer / inner for each reduction axis — and computes the convolution that
//! way, so equality with [`crate::reference::conv2d`] proves the lowering's
//! index arithmetic is semantics-preserving.

use crate::reference;
use crate::tensor::Tensor;
use dnn_graph::ops::{Conv2dAttrs, Padding};
use dnn_graph::task::{TuningTask, Workload};
use dnn_graph::Shape;
use schedule::knob::KnobValue;
use schedule::{Config, ConfigSpace};

/// One axis decomposed into ordered parts (outermost first): iterating all
/// part indices reconstructs `0..extent` exactly once.
#[derive(Debug, Clone)]
struct AxisSplit {
    parts: Vec<usize>,
}

impl AxisSplit {
    fn from_value(v: &KnobValue) -> Self {
        let KnobValue::Split(parts) = v else { unreachable!("axis splits come from split knobs") };
        AxisSplit { parts: parts.clone() }
    }

    fn extent(&self) -> usize {
        self.parts.iter().product()
    }

    /// Reconstructs the flat axis coordinate from per-part indices.
    fn flat(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.parts.len());
        let mut acc = 0;
        for (i, &p) in idx.iter().zip(&self.parts) {
            acc = acc * p + i;
        }
        acc
    }

    /// Iterates every per-part index combination, invoking `f` with the
    /// flattened coordinate.
    fn for_each(&self, f: &mut impl FnMut(usize)) {
        let mut idx = vec![0usize; self.parts.len()];
        loop {
            f(self.flat(&idx));
            // Odometer increment.
            let mut d = idx.len();
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < self.parts[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
    }
}

fn conv_attrs_of(task: &TuningTask) -> Conv2dAttrs {
    let Workload::Conv2d { in_channels, out_channels, kernel, stride, padding, groups, .. } =
        task.workload
    else {
        // aal-lint: allow(panic, reason = "caller contract: the executor dispatches only conv tasks to the tiled conv kernel")
        panic!("tiled conv execution requires a conv task")
    };
    Conv2dAttrs {
        in_channels,
        out_channels,
        kernel,
        stride,
        padding: Padding { h: padding.0, w: padding.1 },
        groups,
        bias: false,
    }
}

/// Executes `task`'s convolution with the loop structure of `config`.
///
/// `x` is the input activation, `weight` the `[oc, ic/groups, kh, kw]`
/// kernel. The output is bit-identical in shape to the reference operator;
/// values match up to f32 summation-order differences.
///
/// # Panics
///
/// Panics if `task` is not a convolution or shapes mismatch the workload.
#[must_use]
pub fn conv2d_tiled(
    task: &TuningTask,
    space: &ConfigSpace,
    config: &Config,
    x: &Tensor,
    weight: &Tensor,
) -> Tensor {
    let attrs = conv_attrs_of(task);
    let depthwise = attrs.is_depthwise();
    let (n, h, w) = (x.shape.dim(0), x.shape.dim(2), x.shape.dim(3));
    assert_eq!(x.shape.dim(1), attrs.in_channels, "input channels mismatch");
    let (oh, ow) = attrs.out_hw(h, w);

    let split = |name: &str| {
        AxisSplit::from_value(
            // aal-lint: allow(panic, reason = "knob names come from the space that produced the config; a miss is a programming error")
            &space.value_of(config, name).unwrap_or_else(|| panic!("knob `{name}` exists")),
        )
    };

    let f_axis = if depthwise { split("tile_c") } else { split("tile_f") };
    let y_axis = split("tile_y");
    let x_axis = split("tile_x");
    let ry_axis = split("tile_ry");
    let rx_axis = split("tile_rx");
    let rc_axis = if depthwise { AxisSplit { parts: vec![1, 1] } } else { split("tile_rc") };
    assert_eq!(f_axis.extent(), attrs.out_channels, "channel split covers the axis");
    assert_eq!(y_axis.extent(), oh, "y split covers the axis");
    assert_eq!(x_axis.extent(), ow, "x split covers the axis");

    let mut out = Tensor::zeros(Shape::nchw(n, attrs.out_channels, oh, ow));
    let icg = attrs.in_channels / attrs.groups;
    let ocg = attrs.out_channels / attrs.groups;

    for b in 0..n {
        // The decomposed spatial/channel loops (block, vthread, thread,
        // inner — flattened by AxisSplit in exactly that nesting order).
        f_axis.for_each(&mut |oc| {
            y_axis.for_each(&mut |oy| {
                x_axis.for_each(&mut |ox| {
                    let g = oc / ocg;
                    let mut acc = 0.0f32;
                    rc_axis.for_each(&mut |rc| {
                        ry_axis.for_each(&mut |ry| {
                            rx_axis.for_each(&mut |rx| {
                                let iy =
                                    (oy * attrs.stride.0 + ry) as isize - attrs.padding.h as isize;
                                let ix =
                                    (ox * attrs.stride.1 + rx) as isize - attrs.padding.w as isize;
                                if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                    return;
                                }
                                let (ic, wc) = if depthwise { (oc, 0) } else { (g * icg + rc, rc) };
                                acc += x.at4(b, ic, iy as usize, ix as usize)
                                    * weight.at4(oc, wc, ry, rx);
                            });
                        });
                    });
                    *out.at4_mut(b, oc, oy, ox) = acc;
                });
            });
        });
    }
    out
}

/// Convenience check: executes `config` through the tiled interpreter and
/// compares against the reference operator on random data, returning the
/// max absolute difference.
///
/// # Panics
///
/// Panics if `task` is not a convolution.
#[must_use]
pub fn verify_conv_config(
    task: &TuningTask,
    space: &ConfigSpace,
    config: &Config,
    seed: u64,
) -> f32 {
    let attrs = conv_attrs_of(task);
    let Workload::Conv2d { batch, height, width, .. } = task.workload else {
        unreachable!("conv task checked above")
    };
    let x = Tensor::random(Shape::nchw(batch, attrs.in_channels, height, width), seed);
    let weight = Tensor::random(
        Shape::new(vec![
            attrs.out_channels,
            attrs.in_channels / attrs.groups,
            attrs.kernel.0,
            attrs.kernel.1,
        ]),
        seed ^ 0xF00D,
    );
    let tiled = conv2d_tiled(task, space, config, &x, &weight);
    let reference = reference::conv2d(&x, &weight, &[], &attrs);
    tiled.max_abs_diff(&reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::task::TaskKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use schedule::template::space_for_task;

    fn small_conv_task() -> TuningTask {
        TuningTask {
            kind: TaskKind::Conv2d,
            name: "tiled.conv".to_string(),
            workload: Workload::Conv2d {
                batch: 1,
                in_channels: 4,
                out_channels: 8,
                height: 10,
                width: 10,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
                groups: 1,
            },
            occurrences: 1,
        }
    }

    fn small_depthwise_task() -> TuningTask {
        TuningTask {
            kind: TaskKind::DepthwiseConv2d,
            name: "tiled.dw".to_string(),
            workload: Workload::Conv2d {
                batch: 1,
                in_channels: 8,
                out_channels: 8,
                height: 9,
                width: 9,
                kernel: (3, 3),
                stride: (2, 2),
                padding: (1, 1),
                groups: 8,
            },
            occurrences: 1,
        }
    }

    #[test]
    fn axis_split_reconstructs_every_coordinate_once() {
        let s = AxisSplit { parts: vec![2, 3, 4] };
        let mut seen = [0usize; 24];
        s.for_each(&mut |i| seen[i] += 1);
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn random_conv_configs_match_reference() {
        let task = small_conv_task();
        let space = space_for_task(&task);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for i in 0..25 {
            let cfg = space.sample(&mut rng);
            let diff = verify_conv_config(&task, &space, &cfg, i);
            assert!(diff < 1e-4, "config {} diverges by {diff}", cfg.index);
        }
    }

    #[test]
    fn random_depthwise_configs_match_reference() {
        let task = small_depthwise_task();
        let space = space_for_task(&task);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for i in 0..25 {
            let cfg = space.sample(&mut rng);
            let diff = verify_conv_config(&task, &space, &cfg, 100 + i);
            assert!(diff < 1e-4, "config {} diverges by {diff}", cfg.index);
        }
    }

    #[test]
    fn extreme_corner_configs_match_reference() {
        // First and last point of the space exercise the most skewed splits.
        let task = small_conv_task();
        let space = space_for_task(&task);
        for idx in [0, space.len() - 1, space.len() / 2] {
            let cfg = space.config(idx).unwrap();
            let diff = verify_conv_config(&task, &space, &cfg, 7);
            assert!(diff < 1e-4, "config {idx} diverges by {diff}");
        }
    }

    #[test]
    fn strided_padded_conv_matches() {
        let task = TuningTask {
            kind: TaskKind::Conv2d,
            name: "tiled.strided".to_string(),
            workload: Workload::Conv2d {
                batch: 2,
                in_channels: 3,
                out_channels: 6,
                height: 11,
                width: 7,
                kernel: (5, 3),
                stride: (2, 2),
                padding: (2, 1),
                groups: 1,
            },
            occurrences: 1,
        };
        let space = space_for_task(&task);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for i in 0..10 {
            let cfg = space.sample(&mut rng);
            let diff = verify_conv_config(&task, &space, &cfg, 200 + i);
            assert!(diff < 1e-4, "config {} diverges by {diff}", cfg.index);
        }
    }
}

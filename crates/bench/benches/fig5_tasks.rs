//! Criterion bench for the Fig. 5 experiment (reduced budget): times the
//! three-method sweep over a slice of MobileNet-v1 tasks.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use active_learning::TuneOptions;
use bench::experiments::run_fig5_tasks;
use dnn_graph::{models, task::extract_tasks};

fn bench_fig5(c: &mut Criterion) {
    let tasks = extract_tasks(&models::mobilenet_v1(1));
    let opts = TuneOptions::smoke();
    let mut group = c.benchmark_group("fig5_tasks");
    group.sample_size(10);
    group.bench_function("three_methods_two_tasks", |b| {
        b.iter(|| {
            let d = run_fig5_tasks(black_box(&tasks[..2]), &opts, 1);
            black_box(d.rows.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);

//! Micro-benchmarks of the framework's building blocks: TED selection,
//! BTED initialization, GBT fitting, bootstrap selection, simulated
//! annealing and single measurements — the per-iteration costs that
//! determine how "scalable" (the paper's term) each stage is.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use active_learning::bs::bootstrap_select;
use active_learning::bted::{bted, BtedOptions};
use active_learning::evaluator::GbtEvaluator;
use active_learning::sa::{simulated_annealing, SaOptions};
use active_learning::ted::{ted, TedKernel};
use dnn_graph::{models, task::extract_tasks};
use gbt::{Gbt, GbtParams, Matrix};
use gpu_sim::{GpuDevice, Measurer, SimMeasurer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use schedule::feature::features;
use schedule::template::space_for_task;

fn bench_components(c: &mut Criterion) {
    let task = extract_tasks(&models::mobilenet_v1(1)).remove(0);
    let space = space_for_task(&task);
    let measurer = SimMeasurer::new(GpuDevice::gtx_1080_ti());
    let mut rng = ChaCha8Rng::seed_from_u64(7);

    // TED over the paper's batch size (M=500 candidates -> m=64).
    let candidates = space.sample_distinct(&mut rng, 500);
    let feats: Vec<Vec<f64>> = candidates.iter().map(|cfg| features(&space, cfg)).collect();
    c.bench_function("ted_500_to_64", |b| {
        b.iter(|| black_box(ted(&feats, 0.1, 64, TedKernel::Euclidean)));
    });

    // Full BTED at paper scale (B=10 batches of M=500).
    c.bench_function("bted_paper_scale", |b| {
        b.iter(|| black_box(bted(&space, &BtedOptions::default(), 3)));
    });

    // GBT fit at a typical mid-tuning dataset size.
    let rows: Vec<Vec<f64>> =
        space.sample_distinct(&mut rng, 512).iter().map(|cfg| features(&space, cfg)).collect();
    let ys: Vec<f64> = (0..rows.len()).map(|i| (i % 97) as f64).collect();
    let x = Matrix::from_rows(&rows);
    for n_rounds in [30usize, 60] {
        c.bench_with_input(BenchmarkId::new("gbt_fit_512x22", n_rounds), &n_rounds, |b, &n| {
            let p = GbtParams { n_rounds: n, ..GbtParams::default() };
            b.iter(|| black_box(Gbt::fit(&p, &x, &ys, 0)));
        });
    }

    // One BS step (Algorithm 3) at the default scope size.
    let measured: Vec<(schedule::Config, f64)> = space
        .sample_distinct(&mut rng, 128)
        .into_iter()
        .enumerate()
        .map(|(i, cfg)| (cfg, (i % 31) as f64))
        .collect();
    let scope = space.sample_distinct(&mut rng, 384);
    c.bench_function("bs_step_gamma2", |b| {
        b.iter(|| {
            black_box(bootstrap_select(&space, &measured, &scope, 2, GbtEvaluator::default, 9))
        });
    });

    // One SA planning pass (AutoTVM's per-refit cost).
    c.bench_function("sa_plan_64", |b| {
        b.iter(|| {
            let plan = simulated_annealing(
                &space,
                |cands| cands.iter().map(|cfg| cfg.index as f64).collect(),
                &SaOptions::default(),
                64,
                &std::collections::BTreeSet::new(),
                11,
            );
            black_box(plan.len())
        });
    });

    // One simulated on-chip measurement.
    let cfg = space.sample(&mut rng);
    c.bench_function("measure_one_config", |b| {
        b.iter(|| black_box(measurer.measure(&task, &space, &cfg)));
    });
}

criterion_group!(benches, bench_components);
criterion_main!(benches);

//! Criterion bench for the Fig. 4 experiment (reduced budget): times one
//! full convergence run per method on MobileNet-v1's first layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use active_learning::{tune_task, Method, TuneOptions};
use dnn_graph::{models, task::extract_tasks};
use gpu_sim::{GpuDevice, SimMeasurer};

fn bench_fig4(c: &mut Criterion) {
    let task = extract_tasks(&models::mobilenet_v1(1)).remove(0);
    let measurer = SimMeasurer::new(GpuDevice::gtx_1080_ti());
    let opts = TuneOptions { n_trial: 128, early_stopping: usize::MAX, ..TuneOptions::smoke() };
    let mut group = c.benchmark_group("fig4_convergence");
    group.sample_size(10);
    for method in Method::PAPER_ARMS {
        group.bench_with_input(
            BenchmarkId::new("mobilenet_l1", method.label()),
            &method,
            |b, &m| {
                b.iter(|| {
                    let r = tune_task(black_box(&task), &measurer, m, &opts);
                    black_box(r.best_gflops)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);

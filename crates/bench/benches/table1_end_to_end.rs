//! Criterion bench for the Table I experiment (reduced budget): times an
//! end-to-end tune-and-deploy of SqueezeNet-v1.1 plus the 600-run latency
//! measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use active_learning::{tune_model, Method, TuneOptions};
use dnn_graph::models;
use gpu_sim::{measure_model, GpuDevice, ModelDeployment, SimMeasurer};

fn bench_table1(c: &mut Criterion) {
    let graph = models::squeezenet_v1_1(1);
    let measurer = SimMeasurer::new(GpuDevice::gtx_1080_ti());
    let opts = TuneOptions { n_trial: 32, early_stopping: 32, ..TuneOptions::smoke() };

    let mut group = c.benchmark_group("table1_end_to_end");
    group.sample_size(10);
    for method in [Method::AutoTvm, Method::BtedBao] {
        group.bench_with_input(
            BenchmarkId::new("squeezenet_tune_deploy", method.label()),
            &method,
            |b, &m| {
                b.iter(|| {
                    let r = tune_model(black_box(&graph), &measurer, m, &opts, 100);
                    black_box(r.latency.mean_ms)
                });
            },
        );
    }

    // The 600-run latency measurement itself (deployment pre-built).
    let r = tune_model(&graph, &measurer, Method::AutoTvm, &opts, 10);
    let tuned: Vec<_> = r
        .tasks
        .iter()
        .filter_map(|t| {
            let task = dnn_graph::task::extract_tasks(&graph)
                .into_iter()
                .find(|x| x.name == t.task_name)?;
            let space = schedule::template::space_for_task(&task);
            let cfg = t.best_config.clone()?;
            let perf = measurer.true_perf(&task, &space, &cfg).ok()?;
            Some((task, perf))
        })
        .collect();
    let deployment = ModelDeployment::assemble(&graph, &tuned, measurer.device());
    group.bench_function("measure_600_runs", |b| {
        b.iter(|| black_box(measure_model(&deployment, 600, 1)));
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);

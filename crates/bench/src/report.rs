//! Text rendering of experiment results (the "same rows/series the paper
//! reports") and JSON persistence.

use crate::experiments::{Fig4Data, Fig5Data, Table1Data};
use std::fmt::Write as _;
use std::path::Path;

/// Serializes `value` as pretty JSON into `dir/name`.
///
/// # Errors
///
/// Propagates directory-creation and file-write failures.
pub fn write_json<T: serde::Serialize>(dir: &Path, name: &str, value: &T) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let body = serde_json::to_string_pretty(value).expect("experiment data serializes");
    // aal-lint: allow(raw-artifact-write, reason = "experiment figure data; regenerable by re-running the binary")
    std::fs::write(dir.join(name), body)
}

/// Renders Fig. 4 as a text table: one row per checkpoint, one column per
/// (layer, method) curve.
#[must_use]
pub fn render_fig4(d: &Fig4Data) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 4 — GFLOPS convergence on MobileNet-v1 layers 1-2 \
         ({} trials averaged, {} measurements)",
        d.trials, d.n_trial
    );
    let mut header = format!("{:>8}", "#conf");
    for c in &d.curves {
        let _ = write!(header, " | {:>14}", format!("L{} {}", c.layer + 1, c.method));
    }
    let _ = writeln!(out, "{header}");
    let checkpoints: Vec<usize> = (0..d.n_trial)
        .filter(|i| (i + 1) % (d.n_trial / 16).max(1) == 0 || *i + 1 == d.n_trial)
        .collect();
    for i in checkpoints {
        let mut row = format!("{:>8}", i + 1);
        for c in &d.curves {
            let _ = write!(row, " | {:>14.1}", c.curve[i]);
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

/// Renders Fig. 5 as the paper's two panels: configuration counts and
/// GFLOPS percentages per task.
#[must_use]
pub fn render_fig5(d: &Fig5Data) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 5 — MobileNet-v1 per-task results ({} trials averaged)", d.trials);
    let methods: Vec<String> = d.rows[0].cells.iter().map(|c| c.method.to_string()).collect();
    let _ = writeln!(out, "(a) number of sampled configurations");
    let mut header = format!("{:>5}", "task");
    for m in &methods {
        let _ = write!(header, " | {m:>10}");
    }
    let _ = writeln!(out, "{header}");
    for row in &d.rows {
        let mut line = format!("{:>5}", row.task);
        for c in &row.cells {
            let _ = write!(line, " | {:>10.0}", c.num_configs);
        }
        let _ = writeln!(out, "{line}");
    }
    let _ = writeln!(out, "(b) GFLOPS relative to AutoTVM (%)");
    let _ = writeln!(out, "{header}");
    for row in &d.rows {
        let mut line = format!("{:>5}", row.task);
        for c in &row.cells {
            let _ = write!(line, " | {:>10.2}", c.gflops_pct);
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Renders Table I with the paper's columns: latency, variance, and Δ%
/// versus AutoTVM for each method.
#[must_use]
pub fn render_table1(d: &Table1Data) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table I — end-to-end inference latency and variance \
         ({} trials x {} runs)",
        d.trials, d.runs
    );
    let _ = writeln!(
        out,
        "{:<16} | {:>12} {:>10} | {:>12} {:>7} {:>10} {:>8} | {:>12} {:>7} {:>10} {:>8}",
        "Model",
        "AutoTVM(ms)",
        "Var",
        "BTED(ms)",
        "d%",
        "Var",
        "d%",
        "B+BAO(ms)",
        "d%",
        "Var",
        "d%"
    );
    for row in &d.rows {
        let a = &row.cells[0];
        let b = &row.cells[1];
        let c = &row.cells[2];
        let _ = writeln!(
            out,
            "{:<16} | {:>12.4} {:>10.4} | {:>12.4} {:>7.2} {:>10.4} {:>8.2} | {:>12.4} {:>7.2} {:>10.4} {:>8.2}",
            row.model,
            a.latency_ms,
            a.variance,
            b.latency_ms,
            b.latency_delta_pct,
            b.variance,
            b.variance_delta_pct,
            c.latency_ms,
            c.latency_delta_pct,
            c.variance,
            c.variance_delta_pct,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::run_fig4;

    #[test]
    fn fig4_renders_all_columns() {
        let d = run_fig4(16, 1, 1);
        let s = render_fig4(&d);
        assert!(s.contains("L1 autotvm"));
        assert!(s.contains("L2 bted+bao"));
    }

    #[test]
    fn fig5_renders_both_panels() {
        use crate::experiments::run_fig5_tasks;
        use active_learning::TuneOptions;
        use dnn_graph::{models, task::extract_tasks};
        let tasks = extract_tasks(&models::mobilenet_v1(1));
        let d = run_fig5_tasks(&tasks[..1], &TuneOptions::smoke(), 1);
        let s = render_fig5(&d);
        assert!(s.contains("(a) number of sampled configurations"));
        assert!(s.contains("(b) GFLOPS relative to AutoTVM"));
        assert!(s.contains("AVG"));
    }

    #[test]
    fn table1_renders_delta_columns() {
        use crate::experiments::run_table1_models;
        use active_learning::TuneOptions;
        use dnn_graph::models;
        let opts = TuneOptions { n_trial: 24, early_stopping: 24, ..TuneOptions::smoke() };
        let d = run_table1_models(&[models::alexnet(1)], &opts, 1, 30);
        let s = render_table1(&d);
        assert!(s.contains("alexnet"));
        assert!(s.contains("Average"));
        assert!(s.contains("AutoTVM(ms)"));
    }

    #[test]
    fn write_json_round_trips() {
        let d = run_fig4(8, 1, 2);
        let dir = std::env::temp_dir().join("aaltune-report-test");
        write_json(&dir, "fig4.json", &d).unwrap();
        let body = std::fs::read_to_string(dir.join("fig4.json")).unwrap();
        let back: crate::experiments::Fig4Data = serde_json::from_str(&body).unwrap();
        assert_eq!(back.curves.len(), d.curves.len());
    }
}

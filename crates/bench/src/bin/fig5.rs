//! Regenerates Fig. 5: per-task sampled-configuration counts and GFLOPS
//! (relative to AutoTVM) on the 19 MobileNet-v1 tuning tasks.
//!
//! ```text
//! cargo run --release -p bench --bin fig5 -- [--n-trial 1024] [--trials 3] \
//!     [--seed 0] [--workers N] [--batch-size K] [--out results] \
//!     [--trace FILE] [--quiet] [--json]
//! ```

use bench::args::Args;
use bench::experiments::run_fig5;
use bench::report::{render_fig5, write_json};
use bench::{init_telemetry, scaled_options};
use std::path::PathBuf;

fn main() {
    let args = Args::from_env();
    let tel = init_telemetry(&args);
    let n_trial: usize = args.get("n-trial", 1024);
    let trials: usize = args.get("trials", 3);
    let seed: u64 = args.get("seed", 0);
    let out: PathBuf = PathBuf::from(args.get_str("out", "results"));

    let workers: usize = args.get("workers", 1);
    bench::experiments::set_workers(workers);
    tel.report(|| format!("fig5: n_trial={n_trial} trials={trials} seed={seed} workers={workers}"));
    let mut opts = scaled_options(n_trial, seed);
    opts.batch_size = args.get("batch-size", opts.batch_size);
    let data = run_fig5(&opts, trials);
    print!("{}", render_fig5(&data));
    write_json(&out, "fig5.json", &data).expect("write results");
    tel.report(|| format!("wrote {}", out.join("fig5.json").display()));
    tel.flush();
}

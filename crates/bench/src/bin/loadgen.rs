//! Load generator for `aaltune serve`: measures the cached `GET /best`
//! read path (lookups/sec, p50/p99 latency) while two tenants' tuning
//! jobs run concurrently, and checks tenant isolation (each concurrent
//! job within 2x its solo wall-clock).
//!
//! The jobs are device-bound (`--device-ms` emulates per-measurement
//! device occupancy, the same knob `aaltune tune` exposes), which is the
//! regime the server is designed for: tuning holds devices, the read
//! path holds the CPU. Writes `BENCH_serve.json`.
//!
//! ```text
//! cargo run --release -p bench --bin loadgen -- [--n-trial N] [--readers R]
//!     [--device-ms T] [--window-s S] [--out FILE]
//! ```

use bench::args::Args;
use dnn_graph::task::extract_tasks;
use schedule::template::space_for_task;
use serde_json::{json, Value};
use serve::client::{self, ClientConn};
use serve::{ServeConfig, Server};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tuning_db::{decimate_curve, DbRecord, LockOptions, TaskSpec, TopConfig, TuningDb};

fn submit(addr: &str, tenant: &str, seed: u64, n_trial: u64) -> String {
    let body = json!({
        "tenant": tenant,
        "model": "squeezenet",
        "task": 0u64,
        "method": "random",
        "n_trial": n_trial,
        "seed": seed,
    });
    let (code, resp) = client::request(addr, "POST", "/jobs", Some(&body)).expect("submit");
    assert_eq!(code, 202, "submit accepted: {resp}");
    resp["id"].as_str().expect("job id").to_string()
}

fn state_of(addr: &str, id: &str) -> String {
    let (_, body) = client::request(addr, "GET", &format!("/jobs/{id}"), None).expect("status");
    body["state"].as_str().unwrap_or("?").to_string()
}

fn wait_done(addr: &str, id: &str) {
    while state_of(addr, id) != "done" {
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Seeds the database with one synthetic record per squeezenet task, so
/// the read phase exercises exact hits across many distinct keys.
fn seed_db(root: &Path) -> usize {
    let mut db = TuningDb::open(&root.join("db"), &LockOptions::default()).expect("open db");
    let tasks = extract_tasks(&dnn_graph::models::squeezenet_v1_1(1));
    for task in &tasks {
        let space = space_for_task(task);
        let top_k: Vec<TopConfig> = (0..8u64.min(space.len()))
            .map(|i| {
                let cfg = space.config(i).expect("seed config");
                #[allow(clippy::cast_precision_loss)]
                let gflops = 100.0 - i as f64;
                TopConfig { config_index: i, choices: cfg.choices, gflops, latency_s: 1e-3 }
            })
            .collect();
        db.upsert(DbRecord {
            schema_version: tuning_db::DB_SCHEMA_VERSION,
            spec: TaskSpec::of(task, &space, "gtx1080ti"),
            feature: TaskSpec::features(task),
            method: "random".to_string(),
            seed: 0,
            n_trials: 64,
            best_gflops: 100.0,
            top_k,
            curve: decimate_curve(&[50.0, 75.0, 100.0], 64),
        })
        .expect("seed upsert");
    }
    tasks.len()
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_precision_loss, clippy::cast_sign_loss)]
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
fn main() {
    let args = Args::from_env();
    let n_trial: u64 = args.get("n-trial", 2048);
    let readers: usize = args.get("readers", 3);
    let device_ms: u64 = args.get("device-ms", 2);
    let window_s: f64 = args.get("window-s", 2.0);
    let out = args.get_str("out", "BENCH_serve.json");

    let root = std::env::temp_dir().join(format!("aaltune-loadgen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create root");
    let n_tasks = seed_db(&root);

    let server = Server::start(ServeConfig {
        root: root.clone(),
        addr: "127.0.0.1:0".to_string(),
        http_workers: readers + 2,
        job_workers: 2,
        devices: 8,
        exec_workers: 4,
        device_hold: Duration::from_millis(device_ms),
        quiet: true,
        snapshot_interval: Duration::from_millis(500),
        ..ServeConfig::default()
    })
    .expect("server");
    let addr = server.addr().to_string();
    eprintln!("loadgen: server on {addr}, {n_tasks} seeded tasks");

    // Phase 1: solo job baseline (no read load, no other tenants).
    // aal-lint: allow(wall-clock, reason = "benchmark wall-clock measurement; not a tuning input")
    let t0 = Instant::now();
    let solo = submit(&addr, "solo", 1, n_trial);
    wait_done(&addr, &solo);
    let solo_s = t0.elapsed().as_secs_f64();
    eprintln!("loadgen: solo job {solo} in {solo_s:.3}s");

    // Phase 2: two tenants tune concurrently while readers hammer /best.
    let stop = Arc::new(AtomicBool::new(false));
    let reader_handles: Vec<_> = (0..readers)
        .map(|r| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            // aal-lint: allow(thread-spawn, reason = "benchmark load-generator threads, joined before reporting")
            std::thread::spawn(move || {
                let mut conn = ClientConn::connect(&addr).expect("reader connect");
                let mut lat_us: Vec<u64> = Vec::with_capacity(1 << 16);
                let mut task = r;
                while !stop.load(Ordering::Acquire) {
                    task = (task + 1) % n_tasks;
                    let path = format!("/best?model=squeezenet&task={task}");
                    // aal-lint: allow(wall-clock, reason = "benchmark latency measurement; not a tuning input")
                    let t = Instant::now();
                    let (code, body) = conn.roundtrip("GET", &path, None).expect("lookup");
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    lat_us.push(t.elapsed().as_micros() as u64);
                    assert_eq!(code, 200, "seeded task lookup: {body}");
                    assert_eq!(body["source"].as_str(), Some("exact"));
                }
                lat_us
            })
        })
        .collect();

    // aal-lint: allow(wall-clock, reason = "benchmark wall-clock measurement; not a tuning input")
    let read_start = Instant::now();
    // aal-lint: allow(wall-clock, reason = "benchmark wall-clock measurement; not a tuning input")
    let ta = Instant::now();
    let ja = submit(&addr, "tenant-a", 2, n_trial);
    // aal-lint: allow(wall-clock, reason = "benchmark wall-clock measurement; not a tuning input")
    let tb = Instant::now();
    let jb = submit(&addr, "tenant-b", 3, n_trial);
    let (mut wall_a, mut wall_b) = (None, None);
    while wall_a.is_none() || wall_b.is_none() {
        if wall_a.is_none() && state_of(&addr, &ja) == "done" {
            wall_a = Some(ta.elapsed().as_secs_f64());
        }
        if wall_b.is_none() && state_of(&addr, &jb) == "done" {
            wall_b = Some(tb.elapsed().as_secs_f64());
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let (wall_a, wall_b) = (wall_a.expect("wall a"), wall_b.expect("wall b"));
    // Keep the read window honest even if the jobs finish early.
    while read_start.elapsed().as_secs_f64() < window_s {
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::Release);
    let window = read_start.elapsed().as_secs_f64();
    let mut lat_us: Vec<u64> =
        reader_handles.into_iter().flat_map(|h| h.join().expect("reader")).collect();
    lat_us.sort_unstable();

    let lookups = lat_us.len();
    let qps = lookups as f64 / window;
    let p50 = percentile(&lat_us, 0.50);
    let p99 = percentile(&lat_us, 0.99);
    let (ratio_a, ratio_b) = (wall_a / solo_s, wall_b / solo_s);
    eprintln!(
        "loadgen: {lookups} lookups in {window:.2}s = {qps:.0}/s, p50 {p50}us p99 {p99}us; \
         jobs solo {solo_s:.3}s, concurrent {wall_a:.3}s/{wall_b:.3}s \
         (x{ratio_a:.2}/x{ratio_b:.2})"
    );

    let (code, _) = client::request(&addr, "POST", "/shutdown", None).expect("shutdown");
    assert_eq!(code, 202);
    server.wait();

    let report: Value = json!({
        "schema_version": 1u64,
        "bench": "serve_loadgen",
        "config": json!({
            "model": "squeezenet",
            "method": "random",
            "n_trial": n_trial,
            "readers": readers as u64,
            "devices": 8u64,
            "job_workers": 2u64,
            "exec_workers": 4u64,
            "device_ms": device_ms,
            "seeded_tasks": n_tasks as u64,
        }),
        "read": json!({
            "lookups": lookups as u64,
            "window_s": window,
            "qps": qps,
            "p50_us": p50,
            "p99_us": p99,
        }),
        "jobs": json!({
            "solo_s": solo_s,
            "tenant_a_s": wall_a,
            "tenant_b_s": wall_b,
            "ratio_a": ratio_a,
            "ratio_b": ratio_b,
        }),
        "gates": json!({
            "qps_min": 10_000.0,
            "p99_max_us": 5_000u64,
            "ratio_max": 2.0,
        }),
    });
    let pretty = serde_json::to_string_pretty(&report).expect("encode report");
    // aal-lint: allow(raw-artifact-write, reason = "benchmark report; regenerable by re-running the binary")
    std::fs::write(&out, format!("{pretty}\n")).expect("write report");
    eprintln!("loadgen: wrote {out}");
    let _ = std::fs::remove_dir_all(&root);

    assert!(qps >= 10_000.0, "read path must sustain >=10k lookups/s (got {qps:.0})");
    assert!(p99 < 5_000, "read p99 must stay under 5ms (got {p99}us)");
    assert!(
        ratio_a <= 2.0 && ratio_b <= 2.0,
        "concurrent jobs must finish within 2x solo (got x{ratio_a:.2}/x{ratio_b:.2})"
    );
    println!("loadgen: PASS");
}

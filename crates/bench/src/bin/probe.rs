//! Internal calibration probe: per-method wall-clock and quality on a task
//! or a whole model. Not part of the paper reproduction; used to size
//! budgets and diagnose outliers.

use active_learning::{tune_model, tune_task, Method, TuneOptions};
use bench::args::Args;
use dnn_graph::{models, task::extract_tasks};
use gpu_sim::{GpuDevice, SimMeasurer};
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let n_trial: usize = args.get("n-trial", 768);
    let seed: u64 = args.get("seed", 0);
    let opts =
        TuneOptions { n_trial, early_stopping: 400.min(n_trial), seed, ..TuneOptions::default() };

    let model_name = args.get_str("model", "");
    if !model_name.is_empty() {
        // Whole-model diagnosis: per-task best GFLOPS and config counts.
        let graph = match model_name.as_str() {
            "resnet18" => models::resnet18(1),
            "vgg16" => models::vgg16(1),
            "mobilenet_v1" => models::mobilenet_v1(1),
            "alexnet" => models::alexnet(1),
            other => panic!("unknown model {other}"),
        };
        let method = match args.get_str("method", "bted+bao").as_str() {
            "autotvm" => Method::AutoTvm,
            "bted" => Method::Bted,
            _ => Method::BtedBao,
        };
        let m = SimMeasurer::new(GpuDevice::gtx_1080_ti()).with_trial_seed(seed);
        let r = tune_model(&graph, &m, method, &opts, 600);
        println!(
            "{} {}: latency {:.4} ms variance {:.4}",
            r.model_name, method, r.latency.mean_ms, r.latency.variance
        );
        for t in &r.tasks {
            println!(
                "  {:<16} {:>9.1} GFLOPS  {:>4} configs",
                t.task_name, t.best_gflops, t.num_measured
            );
        }
        return;
    }

    let task_idx: usize = args.get("task", 0);
    let tasks = extract_tasks(&models::mobilenet_v1(1));
    let task = &tasks[task_idx];
    let m = SimMeasurer::new(GpuDevice::gtx_1080_ti());
    println!("task {}: {}", task_idx, task);
    for method in [Method::AutoTvm, Method::Bted, Method::BtedBao] {
        // aal-lint: allow(wall-clock, reason = "experiment runtime recorded in probe output; not a tuning input")
        let t0 = Instant::now();
        let r = tune_task(task, &m, method, &opts);
        println!(
            "{:<9} {:8.1} GFLOPS  {:4} configs  {:6.1}s",
            method.to_string(),
            r.best_gflops,
            r.num_measured,
            t0.elapsed().as_secs_f64()
        );
    }
}

//! Summarizes `results/*.json` into the markdown fragments EXPERIMENTS.md
//! embeds — so the document can be refreshed from raw data at any time.
//!
//! ```text
//! cargo run --release -p bench --bin summarize -- [--dir results]
//! ```

use bench::args::Args;
use bench::experiments::{Fig4Data, Fig5Data, Table1Data};
use std::path::Path;

fn load<T: serde::de::DeserializeOwned>(dir: &Path, name: &str) -> Option<T> {
    let body = std::fs::read_to_string(dir.join(name)).ok()?;
    serde_json::from_str(&body).ok()
}

fn main() {
    let args = Args::from_env();
    let dir = std::path::PathBuf::from(args.get_str("dir", "results"));

    if let Some(fig4) = load::<Fig4Data>(&dir, "fig4.json") {
        println!("### Fig. 4 (final best-so-far GFLOPS, {} trials)\n", fig4.trials);
        println!("| curve | final GFLOPS |");
        println!("|-------|-------------:|");
        for c in &fig4.curves {
            println!(
                "| L{} {} | {:.1} |",
                c.layer + 1,
                c.method,
                c.curve.last().copied().unwrap_or(0.0)
            );
        }
        println!();
    }

    if let Some(fig5) = load::<Fig5Data>(&dir, "fig5.json") {
        if let Some(avg) = fig5.rows.last() {
            println!("### Fig. 5 AVG row ({} trials)\n", fig5.trials);
            println!("| method | configs | GFLOPS vs AutoTVM |");
            println!("|--------|--------:|------------------:|");
            for c in &avg.cells {
                println!("| {} | {:.0} | {:.2} % |", c.method, c.num_configs, c.gflops_pct);
            }
            println!();
        }
    }

    if let Some(t1) = load::<Table1Data>(&dir, "table1.json") {
        println!("### Table I ({} trials x {} runs)\n", t1.trials, t1.runs);
        println!(
            "| model | AutoTVM ms (var) | BTED ms (Δ%) var (Δ%) | BTED+BAO ms (Δ%) var (Δ%) |"
        );
        println!(
            "|-------|------------------|------------------------|----------------------------|"
        );
        for row in &t1.rows {
            let a = &row.cells[0];
            let b = &row.cells[1];
            let c = &row.cells[2];
            println!(
                "| {} | {:.4} ({:.4}) | {:.4} ({:+.2}%) {:.4} ({:+.2}%) | {:.4} ({:+.2}%) {:.4} ({:+.2}%) |",
                row.model,
                a.latency_ms,
                a.variance,
                b.latency_ms,
                b.latency_delta_pct,
                b.variance,
                b.variance_delta_pct,
                c.latency_ms,
                c.latency_delta_pct,
                c.variance,
                c.variance_delta_pct,
            );
        }
        println!();
    }
}

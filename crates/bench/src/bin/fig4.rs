//! Regenerates Fig. 4: GFLOPS convergence on MobileNet-v1 layers 1–2.
//!
//! ```text
//! cargo run --release -p bench --bin fig4 -- [--n-trial 1024] [--trials 3] \
//!     [--seed 0] [--workers N] [--out results] [--trace FILE] [--quiet] [--json]
//! ```

use bench::args::Args;
use bench::experiments::run_fig4;
use bench::init_telemetry;
use bench::plot::ascii_chart;
use bench::registry::register_fig4;
use bench::report::{render_fig4, write_json};
use std::path::PathBuf;

fn main() {
    // aal-lint: allow(wall-clock, reason = "experiment runtime recorded in figure metadata; not a tuning input")
    let started = std::time::Instant::now();
    let args = Args::from_env();
    let tel = init_telemetry(&args);
    let n_trial: usize = args.get("n-trial", 1024);
    let trials: usize = args.get("trials", 3);
    let seed: u64 = args.get("seed", 0);
    let workers: usize = args.get("workers", 1);
    bench::experiments::set_workers(workers);
    let out: PathBuf = PathBuf::from(args.get_str("out", "results"));

    tel.report(|| format!("fig4: n_trial={n_trial} trials={trials} seed={seed} workers={workers}"));
    let data = run_fig4(n_trial, trials, seed);
    print!("{}", render_fig4(&data));
    for layer in 0..2 {
        println!("\nMobileNet-v1 layer {} convergence:", layer + 1);
        let series: Vec<(String, Vec<f64>)> = data
            .curves
            .iter()
            .filter(|c| c.layer == layer)
            .map(|c| (c.method.to_string(), c.curve.clone()))
            .collect();
        print!("{}", ascii_chart(&series, 72, 14));
    }
    write_json(&out, "fig4.json", &data).expect("write results");
    register_fig4(&out, &data, seed, started.elapsed().as_secs_f64()).expect("update run registry");
    tel.report(|| format!("wrote {} (registered in index.jsonl)", out.join("fig4.json").display()));
    tel.flush();
}

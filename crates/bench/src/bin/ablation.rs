//! Ablation studies on the design choices DESIGN.md calls out:
//!
//! * **Γ sweep** — how many bootstrap resamples BAO needs (paper: Γ = 2).
//! * **scope sweep** — the adaptive-neighborhood parameters (η, τ, R).
//! * **init sweep** — random vs single-batch TED vs full BTED.
//!
//! ```text
//! cargo run --release -p bench --bin ablation -- [--n-trial 512] \
//!     [--trials 2] [--seed 0] [--workers N] [--tasks 0,3,6] [--out results] \
//!     [--trace FILE] [--quiet] [--json]
//! ```

use bench::args::Args;
use bench::experiments::{run_ablation_gamma, run_ablation_init, run_ablation_scope};
use bench::report::write_json;
use bench::{init_telemetry, scaled_options};
use std::path::PathBuf;

fn main() {
    let args = Args::from_env();
    let tel = init_telemetry(&args);
    let n_trial: usize = args.get("n-trial", 512);
    let trials: usize = args.get("trials", 2);
    let seed: u64 = args.get("seed", 0);
    let out: PathBuf = PathBuf::from(args.get_str("out", "results"));
    let tasks: Vec<usize> = args
        .get_str("tasks", "0,3,6")
        .split(',')
        .map(|s| s.trim().parse().expect("task index"))
        .collect();

    let workers: usize = args.get("workers", 1);
    bench::experiments::set_workers(workers);
    tel.report(|| {
        format!(
            "ablation: n_trial={n_trial} trials={trials} tasks={tasks:?} seed={seed} \
             workers={workers}"
        )
    });
    let opts = scaled_options(n_trial, seed);

    let gamma = run_ablation_gamma(&[1, 2, 4, 8], &opts, &tasks, trials);
    println!("-- BAO bootstrap resamples (paper: gamma=2) --");
    for p in &gamma {
        println!("{:<24} gflops={:>9.1}  configs={:>6.0}", p.setting, p.gflops, p.num_configs);
    }

    let scope = run_ablation_scope(
        &[
            (0.05, 1.5, 3.0), // paper setting
            (0.05, 1.5, 1.0), // tight scope
            (0.05, 1.5, 6.0), // loose scope
            (0.05, 3.0, 3.0), // aggressive widening
            (0.50, 1.5, 3.0), // widen almost every step
        ],
        &opts,
        &tasks,
        trials,
    );
    println!("-- adaptive scope (eta, tau, R); paper: (0.05, 1.5, 3) --");
    for p in &scope {
        println!("{:<24} gflops={:>9.1}  configs={:>6.0}", p.setting, p.gflops, p.num_configs);
    }

    let init = run_ablation_init(&opts, &tasks, trials);
    println!("-- initialization strategy --");
    for p in &init {
        println!("{:<24} gflops={:>9.1}  configs={:>6.0}", p.setting, p.gflops, p.num_configs);
    }

    write_json(&out, "ablation.json", &(gamma, scope, init)).expect("write results");
    tel.report(|| format!("wrote {}", out.join("ablation.json").display()));
    tel.flush();
}

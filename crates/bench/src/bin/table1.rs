//! Regenerates Table I: end-to-end inference latency and variance of the
//! five paper models under AutoTVM / BTED / BTED+BAO.
//!
//! ```text
//! cargo run --release -p bench --bin table1 -- [--n-trial 768] [--trials 3] \
//!     [--runs 600] [--seed 0] [--workers N] [--batch-size K] [--out results] \
//!     [--models all|fast] [--trace FILE] [--quiet] [--json]
//! ```
//!
//! `--models fast` restricts to the two cheapest models for a quick pass.

use bench::args::Args;
use bench::experiments::run_table1_models;
use bench::registry::register_table1;
use bench::report::{render_table1, write_json};
use bench::{init_telemetry, scaled_options};
use dnn_graph::models;
use std::path::PathBuf;

fn main() {
    // aal-lint: allow(wall-clock, reason = "experiment runtime recorded in table metadata; not a tuning input")
    let started = std::time::Instant::now();
    let args = Args::from_env();
    let tel = init_telemetry(&args);
    let n_trial: usize = args.get("n-trial", 768);
    let trials: usize = args.get("trials", 3);
    let runs: usize = args.get("runs", 600);
    let seed: u64 = args.get("seed", 0);
    let out: PathBuf = PathBuf::from(args.get_str("out", "results"));
    let which = args.get_str("models", "all");

    let graphs = match which.as_str() {
        "all" => models::paper_models(1),
        "fast" => vec![models::mobilenet_v1(1), models::squeezenet_v1_1(1)],
        other => panic!("unknown --models `{other}` (use all|fast)"),
    };

    let workers: usize = args.get("workers", 1);
    bench::experiments::set_workers(workers);
    tel.report(|| {
        format!(
            "table1: n_trial={n_trial} trials={trials} runs={runs} seed={seed} \
             models={which} workers={workers}"
        )
    });
    let mut opts = scaled_options(n_trial, seed);
    opts.batch_size = args.get("batch-size", opts.batch_size);
    let data = run_table1_models(&graphs, &opts, trials, runs);
    print!("{}", render_table1(&data));
    write_json(&out, "table1.json", &data).expect("write results");
    register_table1(&out, &data, n_trial, seed, started.elapsed().as_secs_f64())
        .expect("update run registry");
    tel.report(|| {
        format!("wrote {} (registered in index.jsonl)", out.join("table1.json").display())
    });
    tel.flush();
}

//! Minimal ASCII line plots for the figure binaries — the "series" view of
//! the paper's plots without any plotting dependency.

/// Renders `series` (label, y-values) as an ASCII chart of the given
/// height. All series share the x-axis (index) and the y-range.
///
/// # Panics
///
/// Panics if no series or an empty series is given.
#[must_use]
pub fn ascii_chart(series: &[(String, Vec<f64>)], width: usize, height: usize) -> String {
    assert!(!series.is_empty(), "nothing to plot");
    assert!(series.iter().all(|(_, ys)| !ys.is_empty()), "empty series");
    let y_min = series.iter().flat_map(|(_, ys)| ys.iter()).cloned().fold(f64::INFINITY, f64::min);
    let y_max =
        series.iter().flat_map(|(_, ys)| ys.iter()).cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (y_max - y_min).max(1e-12);
    let marks = ['*', '+', 'o', 'x', '#', '@'];

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, ys)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        #[allow(clippy::needless_range_loop)] // row varies per column
        for col in 0..width {
            // Nearest sample for this column.
            let idx = col * (ys.len() - 1) / (width - 1).max(1);
            let y = ys[idx];
            let row = ((y - y_min) / span * (height - 1) as f64).round() as usize;
            let row = height - 1 - row.min(height - 1);
            grid[row][col] = mark;
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{y_max:>10.1} |")
        } else if r == height - 1 {
            format!("{y_min:>10.1} |")
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(width)));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(si, (name, _))| format!("{} {}", marks[si % marks.len()], name))
        .collect();
    out.push_str(&format!("{:>12}{}\n", "", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_has_requested_dimensions() {
        let s = vec![("up".to_string(), vec![0.0, 1.0, 2.0, 3.0])];
        let chart = ascii_chart(&s, 20, 5);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 5 + 2); // grid + axis + legend
        assert!(chart.contains("up"));
    }

    #[test]
    fn monotone_series_marks_corners() {
        let s = vec![("up".to_string(), vec![0.0, 10.0])];
        let chart = ascii_chart(&s, 10, 4);
        let lines: Vec<&str> = chart.lines().collect();
        // Max label on top, min at bottom.
        assert!(lines[0].trim_start().starts_with("10.0"));
        assert!(lines[3].trim_start().starts_with("0.0"));
    }

    #[test]
    fn multiple_series_use_distinct_marks() {
        let s = vec![("a".to_string(), vec![0.0, 1.0]), ("b".to_string(), vec![1.0, 0.0])];
        let chart = ascii_chart(&s, 8, 4);
        assert!(chart.contains('*'));
        assert!(chart.contains('+'));
    }

    #[test]
    #[should_panic(expected = "nothing to plot")]
    fn empty_input_panics() {
        let _ = ascii_chart(&[], 10, 4);
    }
}

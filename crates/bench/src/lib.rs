//! Experiment drivers regenerating the paper's figures and tables.
//!
//! Every artifact of the evaluation section has a driver here and a binary
//! under `src/bin/` that prints the same rows/series the paper reports:
//!
//! | artifact | driver | binary |
//! |----------|--------|--------|
//! | Fig. 4 (convergence, MobileNet-v1 layers 1–2) | [`experiments::run_fig4`] | `fig4` |
//! | Fig. 5 (per-task configs & GFLOPS, 19 tasks) | [`experiments::run_fig5`] | `fig5` |
//! | Table I (end-to-end latency & variance, 5 models) | [`experiments::run_table1`] | `table1` |
//! | Ablations (Γ, η/τ/R, init strategy) | [`experiments::run_ablation_gamma`] et al. | `ablation` |
//!
//! Criterion benches under `benches/` time reduced-budget versions of the
//! same drivers so `cargo bench` exercises each experiment end-to-end.

pub mod args;
pub mod experiments;
pub mod plot;
pub mod registry;
pub mod report;
pub mod stats;

/// Installs the global telemetry pipeline for an experiment binary from its
/// `--trace FILE`, `--quiet`, and `--json` flags. Returns the handle so the
/// binary can flush counters and histograms into the trace before exiting.
///
/// # Panics
///
/// Panics if the trace file cannot be created.
#[must_use]
pub fn init_telemetry(args: &args::Args) -> telemetry::Telemetry {
    telemetry::install_pipeline(
        args.get_opt("trace").map(std::path::Path::new),
        args.present("quiet"),
        args.present("json"),
    )
    .expect("create trace file")
}

/// Scales a [`active_learning::TuneOptions`] budget for quick runs.
#[must_use]
pub fn scaled_options(n_trial: usize, seed: u64) -> active_learning::TuneOptions {
    active_learning::TuneOptions {
        n_trial,
        early_stopping: 400.min(n_trial),
        seed,
        ..active_learning::TuneOptions::default()
    }
}

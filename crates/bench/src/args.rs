//! Minimal `--key value` argument parsing for the experiment binaries
//! (keeps the workspace dependency-light; no clap).

use std::collections::BTreeMap;

/// Flags that are switches (present or absent) rather than `--key value`
/// pairs.
const BOOL_FLAGS: &[&str] = &["quiet", "json"];

/// Parsed `--key value` pairs.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
}

impl Args {
    /// Parses the process arguments (everything after the binary name).
    ///
    /// # Panics
    ///
    /// Panics with a usage message if a `--key` is missing its value.
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (testable).
    ///
    /// # Panics
    ///
    /// Panics if a `--key` has no following value.
    pub fn parse<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut values = BTreeMap::new();
        let mut it = iter.into_iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                panic!("unexpected argument `{key}` (expected --key value)");
            };
            if BOOL_FLAGS.contains(&name) {
                values.insert(name.to_string(), "true".to_string());
                continue;
            }
            let value = it.next().unwrap_or_else(|| panic!("missing value for --{name}"));
            values.insert(name.to_string(), value);
        }
        Args { values }
    }

    /// True if the switch `name` (one of [`BOOL_FLAGS`]) was given.
    #[must_use]
    pub fn present(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Optional string lookup (no default).
    #[must_use]
    pub fn get_opt(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Typed lookup with a default.
    ///
    /// # Panics
    ///
    /// Panics if the value fails to parse as `T`.
    #[must_use]
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        self.values.get(name).map_or(default, |v| {
            v.parse().unwrap_or_else(|e| panic!("invalid value for --{name}: {v} ({e:?})"))
        })
    }

    /// String lookup with a default.
    #[must_use]
    pub fn get_str(&self, name: &str, default: &str) -> String {
        self.values.get(name).cloned().unwrap_or_else(|| default.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn of(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn parses_pairs_and_defaults() {
        let a = of(&["--trials", "5", "--out", "results"]);
        assert_eq!(a.get::<usize>("trials", 1), 5);
        assert_eq!(a.get::<usize>("n-trial", 7), 7);
        assert_eq!(a.get_str("out", "x"), "results");
    }

    #[test]
    #[should_panic(expected = "missing value")]
    fn missing_value_panics() {
        let _ = of(&["--trials"]);
    }

    #[test]
    fn bool_flags_take_no_value() {
        let a = of(&["--quiet", "--trials", "2", "--json"]);
        assert!(a.present("quiet"));
        assert!(a.present("json"));
        assert!(!a.present("verbose"));
        assert_eq!(a.get::<usize>("trials", 1), 2);
        assert_eq!(a.get_opt("trace"), None);
    }

    #[test]
    #[should_panic(expected = "invalid value")]
    fn bad_parse_panics() {
        let a = of(&["--trials", "many"]);
        let _ = a.get::<usize>("trials", 1);
    }
}

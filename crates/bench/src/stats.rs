//! Small statistics helpers for aggregating experiment trials.

/// Arithmetic mean; 0.0 for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0.0 for fewer than two samples.
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Relative change in percent: `100 * (new - base) / base`.
/// Returns 0.0 when `base` is 0.
#[must_use]
pub fn delta_pct(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        100.0 * (new - base) / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn delta_pct_signs() {
        assert!((delta_pct(2.0, 1.0) + 50.0).abs() < 1e-12);
        assert!((delta_pct(2.0, 3.0) - 50.0).abs() < 1e-12);
        assert_eq!(delta_pct(0.0, 3.0), 0.0);
    }
}

//! Drivers for every figure and table in the paper's evaluation.

use active_learning::{tune_model, tune_task, Method, ModelTuneResult, TuneOptions};
use dnn_graph::models;
use dnn_graph::task::{extract_tasks, TuningTask};
use executor::run_ordered;
use gpu_sim::{GpuDevice, SimMeasurer};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::stats::{delta_pct, mean};

/// Worker threads shared by every experiment driver, set once by the bench
/// binaries from `--workers` (default 1 = serial). Worker count never
/// changes results: each `(task, method, trial)` unit is independently
/// seeded and results fold in unit order via [`executor::run_ordered`].
static WORKERS: AtomicUsize = AtomicUsize::new(1);

/// Sets the worker-thread count for all experiment drivers.
pub fn set_workers(n: usize) {
    WORKERS.store(n.max(1), Ordering::SeqCst);
}

fn workers() -> usize {
    WORKERS.load(Ordering::SeqCst)
}

/// Simulated test device — the paper's GTX 1080 Ti.
#[must_use]
pub fn paper_device() -> GpuDevice {
    GpuDevice::gtx_1080_ti()
}

fn measurer(trial_seed: u64) -> SimMeasurer {
    SimMeasurer::new(paper_device()).with_trial_seed(trial_seed)
}

fn trial_options(base: &TuneOptions, trial: u64) -> TuneOptions {
    TuneOptions { seed: base.seed.wrapping_add(trial * 0x5DEECE66D), ..*base }
}

// ---------------------------------------------------------------------------
// Fig. 4 — convergence of GFLOPS over sampled configurations
// ---------------------------------------------------------------------------

/// One averaged convergence curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Curve {
    /// Tuning method.
    pub method: Method,
    /// Which MobileNet-v1 layer (0-based task index; the paper plots 0, 1).
    pub layer: usize,
    /// Mean best-so-far GFLOPS after each measurement, averaged over trials.
    pub curve: Vec<f64>,
}

/// All curves of Fig. 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Data {
    /// Curves for each (layer, method).
    pub curves: Vec<Fig4Curve>,
    /// Measurement budget per run.
    pub n_trial: usize,
    /// Trials averaged.
    pub trials: usize,
}

/// Runs the Fig. 4 experiment: convergence on MobileNet-v1's first two
/// layers, early stopping disabled so curves span the whole budget.
#[must_use]
pub fn run_fig4(n_trial: usize, trials: usize, seed: u64) -> Fig4Data {
    let tasks = extract_tasks(&models::mobilenet_v1(1));
    let base = TuneOptions { n_trial, early_stopping: usize::MAX, seed, ..TuneOptions::default() };
    let tel = telemetry::global();
    // One unit per (layer, method, trial), fanned out over the worker pool
    // and folded back in unit order, so the averaged curves are identical
    // to the serial loop at any worker count.
    let units: Vec<(usize, Method, u64)> = (0..tasks.len().min(2))
        .flat_map(|layer| {
            Method::PAPER_ARMS
                .into_iter()
                .flat_map(move |method| (0..trials as u64).map(move |t| (layer, method, t)))
        })
        .collect();
    let runs = run_ordered(units, workers(), |_, (layer, method, t)| {
        tel.report(|| format!("fig4: layer {} {method} trial {t}", layer + 1));
        let opts = trial_options(&base, t);
        let m = measurer(opts.seed);
        let r = tune_task(&tasks[layer], &m, method, &opts);
        (r.log.convergence_curve(), r.best_gflops)
    });
    let mut runs = runs.into_iter();
    let mut curves = Vec::new();
    for layer in 0..tasks.len().min(2) {
        for method in Method::PAPER_ARMS {
            let mut sum = vec![0.0f64; n_trial];
            for _ in 0..trials {
                let (c, best) = runs.next().expect("one run per unit");
                for (i, s) in sum.iter_mut().enumerate() {
                    // Hold the final value if the run ended early.
                    *s += c.get(i).copied().unwrap_or(best);
                }
            }
            let curve = sum.into_iter().map(|s| s / trials as f64).collect();
            curves.push(Fig4Curve { method, layer, curve });
        }
    }
    Fig4Data { curves, n_trial, trials }
}

// ---------------------------------------------------------------------------
// Fig. 5 — per-task sampled-config counts and GFLOPS on MobileNet-v1
// ---------------------------------------------------------------------------

/// Per-task, per-method aggregate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Cell {
    /// Tuning method.
    pub method: Method,
    /// Mean number of configurations sampled (Fig. 5(a)).
    pub num_configs: f64,
    /// Mean best GFLOPS (absolute).
    pub gflops: f64,
    /// GFLOPS as a percentage of AutoTVM's on the same task (Fig. 5(b)).
    pub gflops_pct: f64,
}

/// One task row (T1..T19).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Task label, e.g. `"T3"`.
    pub task: String,
    /// One cell per method, in [`Method::PAPER_ARMS`] order.
    pub cells: Vec<Fig5Cell>,
}

/// The full Fig. 5 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Data {
    /// Rows T1..T19 followed by the AVG row.
    pub rows: Vec<Fig5Row>,
    /// Trials averaged.
    pub trials: usize,
}

/// Runs the Fig. 5 experiment over all 19 MobileNet-v1 tasks.
#[must_use]
pub fn run_fig5(base: &TuneOptions, trials: usize) -> Fig5Data {
    let tasks = extract_tasks(&models::mobilenet_v1(1));
    run_fig5_tasks(&tasks, base, trials)
}

/// Fig. 5 over an arbitrary task list (used by the criterion smoke bench).
#[must_use]
pub fn run_fig5_tasks(tasks: &[TuningTask], base: &TuneOptions, trials: usize) -> Fig5Data {
    let tel = telemetry::global();
    let units: Vec<(usize, Method, u64)> = (0..tasks.len())
        .flat_map(|ti| {
            Method::PAPER_ARMS
                .into_iter()
                .flat_map(move |method| (0..trials as u64).map(move |t| (ti, method, t)))
        })
        .collect();
    let runs = run_ordered(units, workers(), |_, (ti, method, t)| {
        tel.report(|| format!("fig5: task T{} of {} — {method} trial {t}", ti + 1, tasks.len()));
        let opts = trial_options(base, t);
        let m = measurer(opts.seed);
        let r = tune_task(&tasks[ti], &m, method, &opts);
        (r.num_measured as f64, r.best_gflops)
    });
    let mut runs = runs.into_iter();
    let mut rows = Vec::with_capacity(tasks.len() + 1);
    for ti in 0..tasks.len() {
        let mut cells = Vec::new();
        for method in Method::PAPER_ARMS {
            let mut configs = Vec::new();
            let mut gflops = Vec::new();
            for _ in 0..trials {
                let (n, g) = runs.next().expect("one run per unit");
                configs.push(n);
                gflops.push(g);
            }
            cells.push(Fig5Cell {
                method,
                num_configs: mean(&configs),
                gflops: mean(&gflops),
                gflops_pct: 0.0, // filled below once AutoTVM's cell exists
            });
        }
        let autotvm_gflops = cells[0].gflops.max(1e-9);
        for c in &mut cells {
            c.gflops_pct = 100.0 * c.gflops / autotvm_gflops;
        }
        rows.push(Fig5Row { task: format!("T{}", ti + 1), cells });
    }
    // AVG row: mean across tasks per method.
    let avg_cells: Vec<Fig5Cell> = (0..Method::PAPER_ARMS.len())
        .map(|mi| {
            let configs: Vec<f64> = rows.iter().map(|r| r.cells[mi].num_configs).collect();
            let gflops: Vec<f64> = rows.iter().map(|r| r.cells[mi].gflops).collect();
            let pct: Vec<f64> = rows.iter().map(|r| r.cells[mi].gflops_pct).collect();
            Fig5Cell {
                method: Method::PAPER_ARMS[mi],
                num_configs: mean(&configs),
                gflops: mean(&gflops),
                gflops_pct: mean(&pct),
            }
        })
        .collect();
    rows.push(Fig5Row { task: "AVG".to_string(), cells: avg_cells });
    Fig5Data { rows, trials }
}

// ---------------------------------------------------------------------------
// Table I — end-to-end latency and variance on the five models
// ---------------------------------------------------------------------------

/// One method's aggregate on one model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Cell {
    /// Tuning method.
    pub method: Method,
    /// Mean end-to-end latency (ms) across trials.
    pub latency_ms: f64,
    /// Mean latency variance across trials.
    pub variance: f64,
    /// Latency change vs AutoTVM in percent (negative = faster).
    pub latency_delta_pct: f64,
    /// Variance change vs AutoTVM in percent.
    pub variance_delta_pct: f64,
}

/// One model row of Table I.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Model name.
    pub model: String,
    /// Cells in [`Method::PAPER_ARMS`] order.
    pub cells: Vec<Table1Cell>,
}

/// The full Table I dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Data {
    /// Five model rows followed by the Average row.
    pub rows: Vec<Table1Row>,
    /// Trials averaged (the paper uses 10).
    pub trials: usize,
    /// End-to-end runs per trial (the paper uses 600).
    pub runs: usize,
}

/// Runs Table I on the given models (pass [`models::paper_models`] for the
/// full table).
#[must_use]
pub fn run_table1_models(
    graphs: &[dnn_graph::Graph],
    base: &TuneOptions,
    trials: usize,
    runs: usize,
) -> Table1Data {
    let tel = telemetry::global();
    let units: Vec<(usize, Method, u64)> = (0..graphs.len())
        .flat_map(|gi| {
            Method::PAPER_ARMS
                .into_iter()
                .flat_map(move |method| (0..trials as u64).map(move |t| (gi, method, t)))
        })
        .collect();
    let outcomes = run_ordered(units, workers(), |_, (gi, method, t)| {
        tel.report(|| format!("table1: {} {method} trial {t}", graphs[gi].name));
        let opts = trial_options(base, t);
        let m = measurer(opts.seed);
        let r: ModelTuneResult = tune_model(&graphs[gi], &m, method, &opts, runs);
        (r.latency.mean_ms, r.latency.variance)
    });
    let mut outcomes = outcomes.into_iter();
    let mut rows = Vec::with_capacity(graphs.len() + 1);
    for graph in graphs {
        let mut cells = Vec::new();
        for method in Method::PAPER_ARMS {
            let mut lat = Vec::new();
            let mut var = Vec::new();
            for _ in 0..trials {
                let (l, v) = outcomes.next().expect("one outcome per unit");
                lat.push(l);
                var.push(v);
            }
            cells.push(Table1Cell {
                method,
                latency_ms: mean(&lat),
                variance: mean(&var),
                latency_delta_pct: 0.0,
                variance_delta_pct: 0.0,
            });
        }
        let (base_lat, base_var) = (cells[0].latency_ms, cells[0].variance);
        for c in &mut cells {
            c.latency_delta_pct = delta_pct(base_lat, c.latency_ms);
            c.variance_delta_pct = delta_pct(base_var, c.variance);
        }
        rows.push(Table1Row { model: graph.name.clone(), cells });
    }
    // Average row (the paper averages the metric columns across models).
    let avg: Vec<Table1Cell> = (0..Method::PAPER_ARMS.len())
        .map(|mi| {
            let lat: Vec<f64> = rows.iter().map(|r| r.cells[mi].latency_ms).collect();
            let var: Vec<f64> = rows.iter().map(|r| r.cells[mi].variance).collect();
            Table1Cell {
                method: Method::PAPER_ARMS[mi],
                latency_ms: mean(&lat),
                variance: mean(&var),
                latency_delta_pct: 0.0,
                variance_delta_pct: 0.0,
            }
        })
        .collect();
    let mut avg = avg;
    let (base_lat, base_var) = (avg[0].latency_ms, avg[0].variance);
    for c in &mut avg {
        c.latency_delta_pct = delta_pct(base_lat, c.latency_ms);
        c.variance_delta_pct = delta_pct(base_var, c.variance);
    }
    rows.push(Table1Row { model: "Average".to_string(), cells: avg });
    Table1Data { rows, trials, runs }
}

/// Full Table I over the paper's five models.
#[must_use]
pub fn run_table1(base: &TuneOptions, trials: usize, runs: usize) -> Table1Data {
    run_table1_models(&models::paper_models(1), base, trials, runs)
}

// ---------------------------------------------------------------------------
// Ablations — design-choice sweeps called out in DESIGN.md
// ---------------------------------------------------------------------------

/// Result of one ablation setting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationPoint {
    /// Human-readable setting label, e.g. `"gamma=4"`.
    pub setting: String,
    /// Mean best GFLOPS over trials and tasks.
    pub gflops: f64,
    /// Mean configurations measured.
    pub num_configs: f64,
}

/// Sweeps the bootstrap-resample count Γ of BAO.
#[must_use]
pub fn run_ablation_gamma(
    gammas: &[usize],
    base: &TuneOptions,
    task_indices: &[usize],
    trials: usize,
) -> Vec<AblationPoint> {
    let tasks = extract_tasks(&models::mobilenet_v1(1));
    gammas
        .iter()
        .map(|&g| {
            let opts =
                TuneOptions { bao: active_learning::BaoOptions { gamma: g, ..base.bao }, ..*base };
            sweep_point(format!("gamma={g}"), &tasks, task_indices, &opts, trials)
        })
        .collect()
}

/// Sweeps the adaptive-neighborhood parameters (η, τ, R).
#[must_use]
pub fn run_ablation_scope(
    settings: &[(f64, f64, f64)],
    base: &TuneOptions,
    task_indices: &[usize],
    trials: usize,
) -> Vec<AblationPoint> {
    let tasks = extract_tasks(&models::mobilenet_v1(1));
    settings
        .iter()
        .map(|&(eta, tau, radius)| {
            let opts = TuneOptions {
                bao: active_learning::BaoOptions { eta, tau, radius, ..base.bao },
                ..*base
            };
            sweep_point(
                format!("eta={eta},tau={tau},R={radius}"),
                &tasks,
                task_indices,
                &opts,
                trials,
            )
        })
        .collect()
}

/// Compares initialization strategies: random (AutoTVM), single-batch TED
/// (`B = 1`), and full BTED.
#[must_use]
pub fn run_ablation_init(
    base: &TuneOptions,
    task_indices: &[usize],
    trials: usize,
) -> Vec<AblationPoint> {
    let tasks = extract_tasks(&models::mobilenet_v1(1));
    let mut out = Vec::new();
    // Random init = stock AutoTVM arm.
    out.push(sweep_point_method(
        "init=random".to_string(),
        Method::AutoTvm,
        &tasks,
        task_indices,
        base,
        trials,
    ));
    // TED with a single batch.
    let ted_opts =
        TuneOptions { bted: active_learning::BtedOptions { num_batches: 1, ..base.bted }, ..*base };
    out.push(sweep_point_method(
        "init=ted(B=1)".to_string(),
        Method::Bted,
        &tasks,
        task_indices,
        &ted_opts,
        trials,
    ));
    // Full BTED.
    out.push(sweep_point_method(
        format!("init=bted(B={})", base.bted.num_batches),
        Method::Bted,
        &tasks,
        task_indices,
        base,
        trials,
    ));
    out
}

fn sweep_point(
    setting: String,
    tasks: &[TuningTask],
    task_indices: &[usize],
    opts: &TuneOptions,
    trials: usize,
) -> AblationPoint {
    sweep_point_method(setting, Method::BtedBao, tasks, task_indices, opts, trials)
}

fn sweep_point_method(
    setting: String,
    method: Method,
    tasks: &[TuningTask],
    task_indices: &[usize],
    opts: &TuneOptions,
    trials: usize,
) -> AblationPoint {
    telemetry::global().report(|| format!("ablation: {setting}"));
    let units: Vec<(usize, u64)> =
        task_indices.iter().flat_map(|&ti| (0..trials as u64).map(move |t| (ti, t))).collect();
    let outcomes = run_ordered(units, workers(), |_, (ti, t)| {
        let topts = trial_options(opts, t);
        let m = measurer(topts.seed);
        let r = tune_task(&tasks[ti], &m, method, &topts);
        (r.best_gflops, r.num_measured as f64)
    });
    let (gflops, configs): (Vec<f64>, Vec<f64>) = outcomes.into_iter().unzip();
    AblationPoint { setting, gflops: mean(&gflops), num_configs: mean(&configs) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> TuneOptions {
        TuneOptions::smoke()
    }

    #[test]
    fn fig4_smoke_produces_monotone_curves() {
        let d = run_fig4(48, 1, 3);
        assert_eq!(d.curves.len(), 6); // 2 layers x 3 methods
        for c in &d.curves {
            assert_eq!(c.curve.len(), 48);
            for w in c.curve.windows(2) {
                assert!(w[1] >= w[0] - 1e-9, "curve must be non-decreasing");
            }
        }
    }

    #[test]
    fn fig5_smoke_has_avg_row_and_pct() {
        let tasks = extract_tasks(&models::mobilenet_v1(1));
        let d = run_fig5_tasks(&tasks[..2], &smoke(), 1);
        assert_eq!(d.rows.len(), 3);
        assert_eq!(d.rows.last().unwrap().task, "AVG");
        for row in &d.rows {
            assert!((row.cells[0].gflops_pct - 100.0).abs() < 1e-6);
        }
    }

    #[test]
    fn table1_smoke_on_one_model() {
        let graphs = vec![models::squeezenet_v1_1(1)];
        let opts = TuneOptions { n_trial: 32, early_stopping: 32, ..smoke() };
        let d = run_table1_models(&graphs, &opts, 1, 50);
        assert_eq!(d.rows.len(), 2); // model + Average
        let cell = &d.rows[0].cells[0];
        assert!(cell.latency_ms > 0.0);
        assert!((d.rows[0].cells[0].latency_delta_pct).abs() < 1e-9);
    }

    #[test]
    fn ablation_gamma_smoke() {
        let pts = run_ablation_gamma(&[1, 2], &smoke(), &[0], 1);
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| p.gflops > 0.0));
    }
}

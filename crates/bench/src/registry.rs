//! Registering experiment runs in the shared run registry.
//!
//! `aaltune tune --out` records its runs in `<out>/index.jsonl`; the paper
//! experiment binaries (`fig4`, `table1`) append entries to the same index,
//! so `aaltune runs <out>` lists ad-hoc tunes and paper regenerations side
//! by side and `compare` can gate either kind.

use crate::experiments::{Fig4Data, Table1Data};
use std::collections::BTreeMap;
use std::path::Path;
use trace_analysis::{git_describe, Registry, RunEntry, REGISTRY_SCHEMA_VERSION};

fn base_entry(run_id: String, kind: &str, model: &str, method: String) -> RunEntry {
    RunEntry {
        schema_version: Some(REGISTRY_SCHEMA_VERSION),
        run_id,
        path: None,
        kind: kind.to_string(),
        model: model.to_string(),
        method,
        seed: 0,
        n_trial: 0,
        git_describe: git_describe(Path::new(".")),
        wall_time_s: None,
        task_best_gflops: BTreeMap::new(),
        latency_mean_ms: None,
        latency_variance: None,
        faults: None,
        retries: None,
        quarantined: None,
        resumed: None,
        last_heartbeat_unix_ms: None,
        trials_done: None,
        db_path: None,
        db_policy: None,
        db_hits: None,
        db_warm_starts: None,
    }
}

/// Appends one registry entry per Fig. 4 method arm: the per-layer final
/// best GFLOPS become the entry's headline metrics.
///
/// # Errors
///
/// Propagates index-write failures.
pub fn register_fig4(
    out: &Path,
    data: &Fig4Data,
    seed: u64,
    wall_time_s: f64,
) -> std::io::Result<()> {
    let reg = Registry::at(out);
    let mut by_method: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    for c in &data.curves {
        let final_best = c.curve.last().copied().unwrap_or(0.0);
        by_method
            .entry(c.method.to_string())
            .or_default()
            .insert(format!("mobilenet_v1.L{}", c.layer + 1), final_best);
    }
    for (method, task_best_gflops) in by_method {
        let mut e = base_entry(format!("fig4-{method}-seed{seed}"), "fig4", "mobilenet_v1", method);
        e.seed = seed;
        e.n_trial = data.n_trial as u64;
        e.wall_time_s = Some(wall_time_s);
        e.task_best_gflops = task_best_gflops;
        reg.append(&e)?;
    }
    Ok(())
}

/// Appends one registry entry per (model, method) cell of Table I, carrying
/// the end-to-end latency mean and variance. The synthetic `Average` row is
/// not registered — it is derivable from the others.
///
/// # Errors
///
/// Propagates index-write failures.
pub fn register_table1(
    out: &Path,
    data: &Table1Data,
    n_trial: usize,
    seed: u64,
    wall_time_s: f64,
) -> std::io::Result<()> {
    let reg = Registry::at(out);
    for row in data.rows.iter().filter(|r| r.model != "Average") {
        for cell in &row.cells {
            let method = cell.method.to_string();
            let mut e = base_entry(
                format!("table1-{}-{method}-seed{seed}", row.model),
                "table1",
                &row.model,
                method,
            );
            e.seed = seed;
            e.n_trial = n_trial as u64;
            e.wall_time_s = Some(wall_time_s);
            e.latency_mean_ms = Some(cell.latency_ms);
            e.latency_variance = Some(cell.variance);
            reg.append(&e)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{Fig4Curve, Table1Cell, Table1Row};
    use active_learning::Method;

    fn temp_out(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("aaltune-bench-reg-{tag}-{}", std::process::id()))
    }

    #[test]
    fn fig4_registers_one_entry_per_method() {
        let out = temp_out("fig4");
        let _ = std::fs::remove_dir_all(&out);
        let data = Fig4Data {
            curves: vec![
                Fig4Curve { method: Method::AutoTvm, layer: 0, curve: vec![1.0, 5.0] },
                Fig4Curve { method: Method::AutoTvm, layer: 1, curve: vec![2.0, 6.0] },
                Fig4Curve { method: Method::BtedBao, layer: 0, curve: vec![1.0, 9.0] },
            ],
            n_trial: 2,
            trials: 1,
        };
        register_fig4(&out, &data, 7, 1.5).unwrap();
        let idx = Registry::at(&out).load().unwrap();
        assert_eq!(idx.entries.len(), 2);
        let autotvm = idx.entries.iter().find(|e| e.method == "autotvm").unwrap();
        assert_eq!(autotvm.kind, "fig4");
        assert_eq!(autotvm.seed, 7);
        assert_eq!(autotvm.task_best_gflops["mobilenet_v1.L1"], 5.0);
        assert_eq!(autotvm.task_best_gflops["mobilenet_v1.L2"], 6.0);
        std::fs::remove_dir_all(&out).unwrap();
    }

    #[test]
    fn table1_registers_cells_but_not_the_average_row() {
        let out = temp_out("table1");
        let _ = std::fs::remove_dir_all(&out);
        let cell = |method, latency_ms| Table1Cell {
            method,
            latency_ms,
            variance: 0.01,
            latency_delta_pct: 0.0,
            variance_delta_pct: 0.0,
        };
        let data = Table1Data {
            rows: vec![
                Table1Row {
                    model: "alexnet".into(),
                    cells: vec![cell(Method::AutoTvm, 2.0), cell(Method::BtedBao, 1.8)],
                },
                Table1Row { model: "Average".into(), cells: vec![cell(Method::AutoTvm, 2.0)] },
            ],
            trials: 1,
            runs: 10,
        };
        register_table1(&out, &data, 64, 0, 3.0).unwrap();
        let idx = Registry::at(&out).load().unwrap();
        assert_eq!(idx.entries.len(), 2, "Average row must not be registered");
        assert!(idx.entries.iter().all(|e| e.model == "alexnet"));
        assert_eq!(idx.entries[0].latency_mean_ms, Some(2.0));
        std::fs::remove_dir_all(&out).unwrap();
    }
}

//! In-process event fan-out: a [`Sink`] that forwards [`Record::Event`]s
//! to live subscribers over bounded channels.
//!
//! The serve subsystem streams per-trial progress to HTTP clients while
//! the same records land in the trace file; [`EventBus`] is the tee
//! point. Design constraints, in order:
//!
//! * **Emitters never block.** Forwarding uses `try_send` on a bounded
//!   channel; a slow or stalled subscriber loses *its own* events (the
//!   drop is counted under [`EVENTS_DROPPED_COUNTER`]) rather than
//!   stalling the tuning loop that emitted them.
//! * **Subscribers self-clean.** A dropped [`EventSub`] disconnects its
//!   channel; the bus prunes disconnected senders on the next publish.
//! * **Events only.** Spans, counters, and histograms stay in the trace
//!   file; live consumers want the domain event stream.

use crate::record::Record;
use crate::sink::Sink;
use crate::sync::lock_or_recover;
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Counter bumped once per event dropped because a subscriber's channel
/// was full.
pub const EVENTS_DROPPED_COUNTER: &str = "bus.events.dropped";

/// Per-subscriber channel capacity. Generous enough for a burst of
/// per-trial events between two client reads, small enough to bound a
/// stalled subscriber's memory.
const SUB_CAPACITY: usize = 1024;

/// A cloneable fan-out hub; install it as (part of) a telemetry sink and
/// hand [`EventBus::subscribe`] ends to consumers.
#[derive(Debug, Clone, Default)]
pub struct EventBus {
    subs: Arc<Mutex<Vec<SyncSender<Record>>>>,
}

/// One subscriber's receiving end; dropping it unsubscribes.
#[derive(Debug)]
pub struct EventSub {
    rx: Receiver<Record>,
}

impl EventBus {
    /// An empty bus with no subscribers.
    #[must_use]
    pub fn new() -> Self {
        EventBus::default()
    }

    /// Registers a new subscriber receiving every event published from
    /// now on.
    #[must_use]
    pub fn subscribe(&self) -> EventSub {
        let (tx, rx) = sync_channel(SUB_CAPACITY);
        lock_or_recover(&self.subs).push(tx);
        EventSub { rx }
    }

    /// Subscribers currently registered (disconnected ones may linger
    /// until the next publish prunes them).
    #[must_use]
    pub fn subscriber_count(&self) -> usize {
        lock_or_recover(&self.subs).len()
    }

    fn publish(&self, rec: &Record) {
        let mut subs = lock_or_recover(&self.subs);
        let mut dropped = 0u64;
        subs.retain(|tx| match tx.try_send(rec.clone()) {
            Ok(()) => true,
            Err(std::sync::mpsc::TrySendError::Full(_)) => {
                dropped += 1;
                true
            }
            Err(std::sync::mpsc::TrySendError::Disconnected(_)) => false,
        });
        drop(subs);
        if dropped > 0 {
            crate::global().count(EVENTS_DROPPED_COUNTER, dropped);
        }
    }
}

impl Sink for EventBus {
    fn record(&self, rec: &Record) {
        if matches!(rec, Record::Event { .. }) {
            self.publish(rec);
        }
    }

    fn flush(&self) {}
}

/// Outcome of [`EventSub::recv_timeout`].
#[derive(Debug)]
pub enum BusRecv {
    /// An event arrived.
    Event(Record),
    /// Nothing within the timeout; the bus is still alive — poll again.
    Timeout,
    /// Every bus clone was dropped — the stream is over.
    Closed,
}

impl EventSub {
    /// Blocks up to `timeout` for the next event.
    pub fn recv_timeout(&self, timeout: Duration) -> BusRecv {
        match self.rx.recv_timeout(timeout) {
            Ok(rec) => BusRecv::Event(rec),
            Err(RecvTimeoutError::Timeout) => BusRecv::Timeout,
            Err(RecvTimeoutError::Disconnected) => BusRecv::Closed,
        }
    }

    /// Drains everything immediately available without blocking.
    #[must_use]
    pub fn try_drain(&self) -> Vec<Record> {
        let mut out = Vec::new();
        while let Ok(rec) = self.rx.try_recv() {
            out.push(rec);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn event(name: &str) -> Record {
        Record::Event { name: name.into(), span: None, t_us: 0, fields: json!({}) }
    }

    #[test]
    fn subscribers_receive_events_and_only_events() {
        let bus = EventBus::new();
        let sub = bus.subscribe();
        bus.record(&event("trial"));
        bus.record(&Record::Counter { name: "n".into(), value: 1 });
        bus.record(&Record::Schema { version: 2 });
        bus.record(&event("done"));
        let got = sub.try_drain();
        assert_eq!(got.len(), 2, "non-events are filtered out");
        assert_eq!(got[0].name(), "trial");
        assert_eq!(got[1].name(), "done");
    }

    #[test]
    fn dropped_subscriber_is_pruned_and_full_subscriber_never_blocks() {
        let bus = EventBus::new();
        let gone = bus.subscribe();
        drop(gone);
        let full = bus.subscribe();
        assert_eq!(bus.subscriber_count(), 2, "stale sender lingers until next publish");
        // Overfill: the publisher must not block, and the live subscriber
        // keeps the first SUB_CAPACITY events.
        for i in 0..(SUB_CAPACITY + 10) {
            bus.record(&event(&format!("e{i}")));
        }
        assert_eq!(bus.subscriber_count(), 1, "disconnected sender pruned");
        assert_eq!(full.try_drain().len(), SUB_CAPACITY, "overflow dropped, not blocked");
    }

    #[test]
    fn recv_timeout_distinguishes_idle_from_closed() {
        let bus = EventBus::new();
        let sub = bus.subscribe();
        assert!(
            matches!(sub.recv_timeout(Duration::from_millis(5)), BusRecv::Timeout),
            "idle, bus alive"
        );
        bus.record(&event("x"));
        assert!(matches!(sub.recv_timeout(Duration::from_millis(5)), BusRecv::Event(_)));
        drop(bus);
        assert!(
            matches!(sub.recv_timeout(Duration::from_millis(5)), BusRecv::Closed),
            "bus gone"
        );
    }
}

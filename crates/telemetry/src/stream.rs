//! Streaming observability: tail a live trace and publish periodic
//! snapshots of the live [`MetricsRegistry`].
//!
//! Two pieces:
//!
//! * [`TraceFollower`] tails a JSONL trace with `tail -f` semantics —
//!   remembers its byte offset, returns only complete new lines, buffers a
//!   partial trailing line until its newline arrives, and tolerates the
//!   file not existing yet (a follower can start before the run does).
//! * [`SnapshotWriter`] is a background thread that every interval writes
//!   `metrics.snapshot.json` and `metrics.prom` *atomically* (temp file +
//!   rename, so a reader never sees a torn file) into the run directory,
//!   and emits a `run.heartbeat` trace event carrying wall-clock time so
//!   stale/crashed runs are distinguishable from slow ones.
//!
//! Determinism: the writer thread only appends events to the trace and
//! rewrites side files. It never touches trial logs, checkpoints, or the
//! measurement stream, so trial logs stay byte-identical whether or not a
//! snapshot writer is running — the invariant CI's `live-smoke` job checks.

use crate::export::to_prometheus;
use crate::record::Record;
use crate::registry::{unix_ms_now, MetricsRegistry};
use crate::Telemetry;
use serde_json::json;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// File name of the JSON metrics snapshot inside a run directory.
pub const SNAPSHOT_FILE: &str = "metrics.snapshot.json";
/// File name of the Prometheus text snapshot inside a run directory.
pub const PROM_FILE: &str = "metrics.prom";

/// Counter read by the heartbeat for "trials done".
pub const TRIALS_COUNTER: &str = "tune.trials";
/// Counter read by the heartbeat for "tasks completed".
pub const TASKS_DONE_COUNTER: &str = "tune.tasks_completed";
/// Label read by the heartbeat for "current task".
pub const CURRENT_TASK_LABEL: &str = "task.current";

/// Tails a JSONL trace file, yielding newly completed [`Record`]s on each
/// [`TraceFollower::poll`].
#[derive(Debug)]
pub struct TraceFollower {
    path: PathBuf,
    offset: u64,
    partial: Vec<u8>,
    malformed: u64,
}

impl TraceFollower {
    /// Creates a follower for `path`, starting at the beginning of the
    /// file. The file need not exist yet.
    #[must_use]
    pub fn new(path: impl Into<PathBuf>) -> Self {
        TraceFollower { path: path.into(), offset: 0, partial: Vec::new(), malformed: 0 }
    }

    /// Lines seen so far that did not parse as a [`Record`] (skipped, not
    /// fatal — a live trace can interleave with a crash mid-line).
    #[must_use]
    pub fn malformed_lines(&self) -> u64 {
        self.malformed
    }

    /// Reads any new complete lines since the last poll and parses them.
    /// Returns an empty vec when the file is absent or has no new complete
    /// line. A truncated file (shorter than our offset) restarts the
    /// follower from the beginning.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than the file not existing.
    pub fn poll(&mut self) -> std::io::Result<Vec<Record>> {
        let mut file = match std::fs::File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let len = file.metadata()?.len();
        if len < self.offset {
            // Truncated/rewritten underneath us: start over.
            self.offset = 0;
            self.partial.clear();
        }
        file.seek(SeekFrom::Start(self.offset))?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        self.offset += buf.len() as u64;
        self.partial.extend_from_slice(&buf);

        let mut records = Vec::new();
        // Consume complete lines; keep the trailing partial (if any).
        while let Some(nl) = self.partial.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.partial.drain(..=nl).collect();
            let text = String::from_utf8_lossy(&line[..line.len() - 1]);
            let trimmed = text.trim();
            if trimmed.is_empty() {
                continue;
            }
            match serde_json::from_str::<Record>(trimmed) {
                Ok(rec) => records.push(rec),
                Err(_) => self.malformed += 1,
            }
        }
        Ok(records)
    }
}

/// Writes `bytes` to `path` atomically: write a sibling temp file, flush,
/// then rename over the target so readers only ever see complete content.
///
/// # Errors
///
/// Propagates I/O errors from the write or the rename.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        // aal-lint: allow(raw-artifact-write, reason = "temp side of temp+fsync+rename")
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Publishes `registry` into `dir` once: `metrics.snapshot.json` and
/// `metrics.prom`, both atomic.
///
/// # Errors
///
/// Propagates serialization and I/O errors.
pub fn publish_snapshot(dir: &Path, registry: &MetricsRegistry) -> std::io::Result<()> {
    let snap = registry.snapshot();
    let json = serde_json::to_string_pretty(&snap)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    write_atomic(&dir.join(SNAPSHOT_FILE), json.as_bytes())?;
    write_atomic(&dir.join(PROM_FILE), to_prometheus(&snap).as_bytes())
}

/// Name of the periodic liveness event emitted by [`SnapshotWriter`].
/// (Mirrored in [`crate::events::RUN_HEARTBEAT_EVENT`].)
const HEARTBEAT_EVENT: &str = "run.heartbeat";

fn emit_heartbeat(tel: &Telemetry, registry: &MetricsRegistry) {
    let snap = registry.snapshot();
    tel.event(HEARTBEAT_EVENT, || {
        json!({
            "unix_ms": snap.unix_ms,
            "trials": snap.counter(TRIALS_COUNTER),
            "tasks_done": snap.counter(TASKS_DONE_COUNTER),
            "task": snap.labels.get(CURRENT_TASK_LABEL).cloned().unwrap_or_default(),
        })
    });
}

/// A background thread that periodically snapshots a [`MetricsRegistry`]
/// into a run directory and heartbeats the trace. Stops (after one final
/// snapshot + heartbeat) when dropped, so the files always reflect the end
/// state of the run.
pub struct SnapshotWriter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for SnapshotWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotWriter").finish()
    }
}

impl SnapshotWriter {
    /// Starts the writer: every `interval` it publishes snapshots into
    /// `dir` and emits a `run.heartbeat` event on `tel`. Publish errors are
    /// counted on the registry (`snapshot.write_errors`) rather than
    /// killing the run — observability must never take the tuner down.
    #[must_use]
    pub fn start(
        dir: PathBuf,
        registry: Arc<MetricsRegistry>,
        interval: Duration,
        tel: Telemetry,
    ) -> SnapshotWriter {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        // aal-lint: allow(thread-spawn, reason = "observability-only snapshot thread with explicit stop+join; routing it through the executor would couple tuning to the dashboard")
        let handle = std::thread::Builder::new()
            .name("metrics-snapshot".to_string())
            .spawn(move || {
                let tick = Duration::from_millis(25).min(interval);
                let mut last = std::time::Instant::now();
                // First snapshot immediately, so followers see files early.
                Self::publish(&dir, &registry, &tel);
                while !stop_flag.load(Ordering::Acquire) {
                    std::thread::sleep(tick);
                    if last.elapsed() >= interval {
                        Self::publish(&dir, &registry, &tel);
                        last = std::time::Instant::now();
                    }
                }
                // Final snapshot so the files reflect run completion.
                Self::publish(&dir, &registry, &tel);
            })
            // aal-lint: allow(unwrap, reason = "thread spawn fails only on OS resource exhaustion; no recovery at this layer")
            .expect("spawn metrics-snapshot thread");
        SnapshotWriter { stop, handle: Some(handle) }
    }

    fn publish(dir: &Path, registry: &MetricsRegistry, tel: &Telemetry) {
        registry.gauge_set("snapshot.last_unix_ms", {
            #[allow(clippy::cast_precision_loss)]
            let ms = unix_ms_now() as f64;
            ms
        });
        if publish_snapshot(dir, registry).is_err() {
            registry.inc("snapshot.write_errors", 1);
        }
        emit_heartbeat(tel, registry);
    }

    /// Stops the thread after its final snapshot. Equivalent to dropping.
    pub fn finish(mut self) {
        self.join();
    }

    fn join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for SnapshotWriter {
    fn drop(&mut self) {
        self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Telemetry, VecSink};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aaltune-stream-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn follower_tails_complete_lines_only() {
        let dir = tmp_dir("follow");
        let path = dir.join("trace.jsonl");
        let mut follower = TraceFollower::new(&path);
        // File absent: empty, no error.
        assert!(follower.poll().unwrap().is_empty());

        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "{}", serde_json::to_string(&Record::Schema { version: 2 }).unwrap()).unwrap();
        // A partial line with no newline must not be yielded yet.
        write!(f, "{{\"Counter\":{{\"name\":\"a\",").unwrap();
        f.flush().unwrap();
        let first = follower.poll().unwrap();
        assert_eq!(first.len(), 1);
        assert!(matches!(first[0], Record::Schema { version: 2 }));

        // Complete the line: now it parses.
        writeln!(f, "\"value\":7}}}}").unwrap();
        f.flush().unwrap();
        let second = follower.poll().unwrap();
        assert_eq!(second.len(), 1);
        assert!(
            matches!(&second[0], Record::Counter { name, value: 7 } if name == "a"),
            "{second:?}"
        );
        assert_eq!(follower.malformed_lines(), 0);

        // Garbage lines are skipped and counted.
        writeln!(f, "not json at all").unwrap();
        f.flush().unwrap();
        assert!(follower.poll().unwrap().is_empty());
        assert_eq!(follower.malformed_lines(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn follower_recovers_from_truncation() {
        let dir = tmp_dir("trunc");
        let path = dir.join("trace.jsonl");
        let schema = serde_json::to_string(&Record::Schema { version: 2 }).unwrap();
        // Several lines, so the rewrite below is genuinely shorter.
        std::fs::write(&path, format!("{schema}\n{schema}\n{schema}\n")).unwrap();
        let mut follower = TraceFollower::new(&path);
        assert_eq!(follower.poll().unwrap().len(), 3);
        // Rewrite shorter: follower restarts from byte 0.
        std::fs::write(
            &path,
            format!(
                "{}\n",
                serde_json::to_string(&Record::Counter { name: "x".into(), value: 1 }).unwrap()
            ),
        )
        .unwrap();
        let recs = follower.poll().unwrap();
        assert_eq!(recs.len(), 1);
        assert!(matches!(&recs[0], Record::Counter { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_writer_publishes_and_heartbeats() {
        let dir = tmp_dir("writer");
        let reg = Arc::new(MetricsRegistry::new());
        reg.inc(TRIALS_COUNTER, 5);
        reg.set_label(CURRENT_TASK_LABEL, "m.T1");
        let sink = VecSink::new();
        let tel = Telemetry::new(sink.clone());
        let writer =
            SnapshotWriter::start(dir.clone(), Arc::clone(&reg), Duration::from_millis(10), tel);
        // Wait for at least the immediate first publish.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !dir.join(SNAPSHOT_FILE).exists() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        reg.inc(TRIALS_COUNTER, 2);
        writer.finish();

        let snap: crate::MetricsSnapshot =
            serde_json::from_str(&std::fs::read_to_string(dir.join(SNAPSHOT_FILE)).unwrap())
                .unwrap();
        // The final (drop-time) snapshot must include the late increment.
        assert_eq!(snap.counter(TRIALS_COUNTER), 7);
        let prom = std::fs::read_to_string(dir.join(PROM_FILE)).unwrap();
        let samples = crate::export::parse_prometheus(&prom).unwrap();
        assert!(samples.iter().any(|s| s.name == "aaltune_tune_trials" && s.value == 7.0));

        // Heartbeat events carry wall-clock time and live progress.
        let hb: Vec<_> =
            sink.records().iter().filter_map(crate::events::HeartbeatEvent::from_record).collect();
        assert!(!hb.is_empty(), "no heartbeat events recorded");
        let last = hb.last().unwrap();
        assert!(last.unix_ms > 0);
        assert_eq!(last.trials, 7);
        assert_eq!(last.task, "m.T1");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_replaces_content() {
        let dir = tmp_dir("atomic");
        let path = dir.join("out.txt");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        assert!(!path.with_extension("tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Mergeable metrics: monotonic counters live in the [`crate::Telemetry`]
//! handle; this module provides the log-scale [`Histogram`] they aggregate
//! alongside.

use serde::{Deserialize, Serialize};

/// Buckets per doubling of the observed value (~9% relative resolution).
const BUCKETS_PER_DOUBLING: f64 = 8.0;

/// Bucket index for non-positive or non-finite observations.
const UNDERFLOW: i32 = i32::MIN;

/// A log-scale histogram of non-negative observations.
///
/// Buckets are exponential: index `i` covers `[2^(i/8), 2^((i+1)/8))`, so
/// the bucket map stays tiny across many orders of magnitude (a µs-to-hours
/// latency range fits in ~250 buckets). Non-positive and non-finite values
/// land in a dedicated underflow bucket and do not contribute to `sum`.
///
/// Merging two histograms adds their bucket counts, which makes merge
/// associative and commutative on everything quantiles are computed from —
/// the property the per-thread aggregation relies on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Histogram {
    /// Sorted `(bucket index, count)` pairs.
    buckets: Vec<(i32, u64)>,
    /// Total observations, including underflow.
    count: u64,
    /// Sum of finite positive observations.
    sum: f64,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_of(value: f64) -> i32 {
        if value > 0.0 && value.is_finite() {
            #[allow(clippy::cast_possible_truncation)] // clamped below i32 range
            let idx =
                (value.log2() * BUCKETS_PER_DOUBLING).floor().clamp(-16_384.0, 16_384.0) as i32;
            idx
        } else {
            UNDERFLOW
        }
    }

    /// Midpoint value represented by bucket `idx`.
    fn representative(idx: i32) -> f64 {
        if idx == UNDERFLOW {
            0.0
        } else {
            2f64.powf((f64::from(idx) + 0.5) / BUCKETS_PER_DOUBLING)
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = Self::bucket_of(value);
        match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (idx, 1)),
        }
        self.count += 1;
        if idx != UNDERFLOW {
            self.sum += value;
        }
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all finite positive observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the recorded observations (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            let n = self.count as f64;
            self.sum / n
        }
    }

    /// Approximate `q`-quantile: the representative value of the bucket
    /// where the cumulative count crosses `q · count`.
    ///
    /// `q` is clamped to `[0, 1]` (a NaN `q` clamps to 0), so callers
    /// computing quantile positions arithmetically cannot panic on a value
    /// that lands epsilon outside the range. An empty histogram returns 0.0
    /// for every `q`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let q = if q.is_nan() { 0.0 } else { q };
        if self.count == 0 {
            return 0.0;
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for &(idx, c) in &self.buckets {
            cum += c;
            if cum >= target {
                return Self::representative(idx);
            }
        }
        Self::representative(self.buckets.last().map_or(UNDERFLOW, |&(i, _)| i))
    }

    /// Merges `other` into `self` by adding bucket counts.
    pub fn merge(&mut self, other: &Histogram) {
        for &(idx, c) in &other.buckets {
            match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += c,
                Err(pos) => self.buckets.insert(pos, (idx, c)),
            }
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The sorted `(bucket index, count)` pairs (for summarizers).
    #[must_use]
    pub fn buckets(&self) -> &[(i32, u64)] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.observe(f64::from(i));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // Log buckets are ~9% wide; allow generous brackets.
        assert!((400.0..700.0).contains(&p50), "p50 = {p50}");
        assert!((900.0..1200.0).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
        assert!((h.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn non_positive_values_underflow() {
        let mut h = Histogram::new();
        h.observe(0.0);
        h.observe(-3.0);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 1..=10 {
            a.observe(f64::from(i));
            b.observe(f64::from(i * 100));
        }
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), 20);
        assert!((m.sum() - (a.sum() + b.sum())).abs() < 1e-9);
        // Merged p25 comes from a's range, p75 from b's.
        assert!(m.quantile(0.25) <= 10.0 * 1.1);
        assert!(m.quantile(0.75) >= 100.0 * 0.9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.quantile(1.0), 0.0);
    }

    #[test]
    fn out_of_range_quantiles_clamp() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.observe(f64::from(i));
        }
        assert_eq!(h.quantile(-0.5), h.quantile(0.0));
        assert_eq!(h.quantile(1.5), h.quantile(1.0));
        assert_eq!(h.quantile(f64::NAN), h.quantile(0.0));
        // And clamping still returns data-bracketed values.
        assert!(h.quantile(1.5) >= h.quantile(-0.5));
        assert!(h.quantile(1.0) <= 100.0 * 1.1);
    }

    #[test]
    fn merge_of_disjoint_ranges_keeps_both_tails() {
        // a's values live around 1e-3, b's around 1e6: no shared buckets.
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 1..=50 {
            a.observe(1e-3 * f64::from(i) / 50.0);
            b.observe(1e6 * f64::from(i) / 50.0);
        }
        assert!(a.buckets().iter().all(|(i, _)| !b.buckets().iter().any(|(j, _)| i == j)));
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), 100);
        assert!((m.sum() - (a.sum() + b.sum())).abs() < 1e-6);
        // Low quantiles come from a's range, high ones from b's, with the
        // bucket list still sorted so the cumulative walk is correct.
        assert!(m.buckets().windows(2).all(|w| w[0].0 < w[1].0));
        assert!(m.quantile(0.25) <= 1e-3 * 1.1);
        assert!(m.quantile(0.75) >= 1e4);
        // Merging into an empty histogram is the identity.
        let mut e = Histogram::new();
        e.merge(&b);
        assert_eq!(e.count(), b.count());
        assert_eq!(e.quantile(0.5), b.quantile(0.5));
    }
}

//! Turning a JSONL trace back into numbers: per-phase time breakdown,
//! counter and histogram tables. Powers the CLI `trace` subcommand.

use crate::metrics::Histogram;
use crate::record::Record;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::BufRead;

/// Aggregated view of one trace.
#[derive(Debug, Default, Clone)]
pub struct TraceSummary {
    /// Per span name: aggregated timing.
    pub spans: BTreeMap<String, SpanStats>,
    /// Per event name: how many were emitted (report events included).
    pub events: BTreeMap<String, u64>,
    /// Final value of each counter. Within one process segment (between
    /// [`Record::Schema`] markers) snapshots are cumulative and the last
    /// wins; across segments — a resumed run appending to the same trace
    /// — segment finals sum.
    pub counters: BTreeMap<String, u64>,
    /// Final snapshot of each histogram, with the same segment rule as
    /// counters: last-wins within a segment, merged across segments.
    pub histograms: BTreeMap<String, Histogram>,
    /// Lines that failed to parse as records.
    pub malformed_lines: u64,
    /// Spans that started but never ended (crashed or truncated trace).
    pub unclosed_spans: u64,
    /// Wire-format version declared by the trace's [`Record::Schema`]
    /// header (`None` for traces predating the header).
    pub schema_version: Option<u32>,
}

/// Timing for every span sharing one name.
#[derive(Debug, Default, Clone, Copy)]
pub struct SpanStats {
    /// Number of completed spans with this name.
    pub count: u64,
    /// Summed wall time, µs.
    pub total_us: u64,
    /// Summed wall time minus time attributed to child spans, µs. This is
    /// the per-phase breakdown: self time answers "where did the run
    /// actually spend its wall clock".
    pub self_us: u64,
}

impl TraceSummary {
    /// Parses a JSONL trace. Corrupt, truncated, or non-UTF-8 lines are
    /// counted and skipped, not fatal — a trace cut short by a crash (or a
    /// partially flushed final line) should still summarize. Only the very
    /// first read failing surfaces as an error.
    pub fn from_reader(mut reader: impl BufRead) -> std::io::Result<TraceSummary> {
        let mut records = Vec::new();
        let mut malformed = 0u64;
        let mut buf = Vec::new();
        let mut first_read = true;
        loop {
            buf.clear();
            match reader.read_until(b'\n', &mut buf) {
                Ok(0) => break,
                Ok(_) => {}
                // An unreadable tail (e.g. a bad sector or a stream error
                // mid-file) is truncation, not a reason to drop the prefix.
                Err(_) if !first_read => {
                    malformed += 1;
                    break;
                }
                Err(e) => return Err(e),
            }
            first_read = false;
            let Ok(line) = std::str::from_utf8(&buf) else {
                malformed += 1;
                continue;
            };
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<Record>(line) {
                Ok(r) => records.push(r),
                Err(_) => malformed += 1,
            }
        }
        let mut s = TraceSummary::from_records(&records);
        s.malformed_lines += malformed;
        Ok(s)
    }

    /// Aggregates in-memory records (e.g. from a [`crate::VecSink`]).
    ///
    /// Counter and histogram records are cumulative snapshots within one
    /// process; a [`Record::Schema`] marker mid-stream means a new
    /// process appended to the trace (crash-safe resume), so the
    /// finished segment's final snapshots are committed — summed for
    /// counters, merged for histograms — before the new segment's
    /// snapshots start accumulating.
    #[must_use]
    pub fn from_records(records: &[Record]) -> TraceSummary {
        let mut out = TraceSummary::default();
        // id → (name, parent) from starts; on end, attribute duration to the
        // span's own name and subtract from the parent's self time.
        let mut open: BTreeMap<u64, (String, Option<u64>)> = BTreeMap::new();
        // id → child time accumulated so far (children end before parents).
        let mut child_time: BTreeMap<u64, u64> = BTreeMap::new();
        // Last snapshot per name in the current process segment.
        let mut seg_counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut seg_histograms: BTreeMap<String, Histogram> = BTreeMap::new();
        let commit = |out: &mut TraceSummary,
                      seg_counters: &mut BTreeMap<String, u64>,
                      seg_histograms: &mut BTreeMap<String, Histogram>| {
            for (name, value) in std::mem::take(seg_counters) {
                *out.counters.entry(name).or_insert(0) += value;
            }
            for (name, hist) in std::mem::take(seg_histograms) {
                out.histograms.entry(name).or_default().merge(&hist);
            }
        };
        for rec in records {
            match rec {
                Record::Schema { version } => {
                    commit(&mut out, &mut seg_counters, &mut seg_histograms);
                    out.schema_version = Some(*version);
                }
                Record::SpanStart { id, parent, name, .. } => {
                    open.insert(*id, (name.clone(), *parent));
                }
                Record::SpanEnd { id, name, dur_us, .. } => {
                    let (name, parent) = open.remove(id).unwrap_or_else(|| (name.clone(), None));
                    let children = child_time.remove(id).unwrap_or(0);
                    let stats = out.spans.entry(name).or_default();
                    stats.count += 1;
                    stats.total_us += dur_us;
                    stats.self_us += dur_us.saturating_sub(children);
                    if let Some(p) = parent {
                        *child_time.entry(p).or_insert(0) += dur_us;
                    }
                }
                Record::Event { name, .. } => {
                    *out.events.entry(name.clone()).or_insert(0) += 1;
                }
                Record::Counter { name, value } => {
                    seg_counters.insert(name.clone(), *value);
                }
                Record::Histogram { name, hist } => {
                    seg_histograms.insert(name.clone(), hist.clone());
                }
            }
        }
        commit(&mut out, &mut seg_counters, &mut seg_histograms);
        out.unclosed_spans = open.len() as u64;
        out
    }

    /// Renders the summary as aligned text tables.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        if !self.spans.is_empty() {
            let total: u64 = self.spans.values().map(|v| v.self_us).sum();
            let _ = writeln!(s, "== Per-phase time breakdown (self time) ==");
            let _ = writeln!(
                s,
                "{:<28} {:>7} {:>12} {:>12} {:>6}",
                "span", "count", "total", "self", "self%"
            );
            let mut rows: Vec<(&String, &SpanStats)> = self.spans.iter().collect();
            rows.sort_by_key(|&(_, st)| std::cmp::Reverse(st.self_us));
            for (name, st) in rows {
                #[allow(clippy::cast_precision_loss)]
                let pct = if total == 0 { 0.0 } else { 100.0 * st.self_us as f64 / total as f64 };
                let _ = writeln!(
                    s,
                    "{:<28} {:>7} {:>12} {:>12} {:>5.1}%",
                    name,
                    st.count,
                    fmt_us(st.total_us),
                    fmt_us(st.self_us),
                    pct
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(s, "\n== Counters ==");
            for (name, value) in &self.counters {
                let _ = writeln!(s, "{name:<40} {value:>10}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(s, "\n== Histograms ==");
            let _ = writeln!(
                s,
                "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}",
                "histogram", "count", "mean", "p50", "p90", "p99"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    s,
                    "{:<28} {:>8} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                    name,
                    h.count(),
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.9),
                    h.quantile(0.99)
                );
            }
        }
        if !self.events.is_empty() {
            let _ = writeln!(s, "\n== Events ==");
            for (name, n) in &self.events {
                let _ = writeln!(s, "{name:<40} {n:>10}");
            }
        }
        if self.malformed_lines > 0 {
            let _ = writeln!(s, "\n({} malformed line(s) skipped)", self.malformed_lines);
        }
        if let Some(warning) = self.schema_warning() {
            let _ = writeln!(s, "warning: {warning}");
        }
        if self.unclosed_spans > 0 {
            let _ =
                writeln!(s, "({} span(s) never closed — truncated trace?)", self.unclosed_spans);
        }
        if s.is_empty() {
            s.push_str("(empty trace)\n");
        }
        s
    }

    /// A human-readable warning when the trace's declared wire-format
    /// version is newer than this crate understands, `None` otherwise.
    /// Traces with no header predate versioning and parse as version 1.
    #[must_use]
    pub fn schema_warning(&self) -> Option<String> {
        match self.schema_version {
            Some(v) if v > crate::TRACE_SCHEMA_VERSION => Some(format!(
                "trace declares schema version {v}, newer than the supported {} — \
                 fields may be misread",
                crate::TRACE_SCHEMA_VERSION
            )),
            _ => None,
        }
    }
}

/// Renders microseconds with an adaptive unit.
fn fmt_us(us: u64) -> String {
    #[allow(clippy::cast_precision_loss)]
    let us_f = us as f64;
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us_f / 1e3)
    } else {
        format!("{:.2}s", us_f / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn span(id: u64, parent: Option<u64>, name: &str, t0: u64, dur: u64) -> [Record; 2] {
        [
            Record::SpanStart { id, parent, name: name.into(), t_us: t0 },
            Record::SpanEnd { id, name: name.into(), t_us: t0 + dur, dur_us: dur },
        ]
    }

    #[test]
    fn self_time_subtracts_children() {
        // parent (100µs) wraps child (60µs): parent self = 40µs.
        let [p0, p1] = span(1, None, "parent", 0, 100);
        let [c0, c1] = span(2, Some(1), "child", 10, 60);
        let s = TraceSummary::from_records(&[p0, c0, c1, p1]);
        assert_eq!(s.spans["parent"].total_us, 100);
        assert_eq!(s.spans["parent"].self_us, 40);
        assert_eq!(s.spans["child"].self_us, 60);
        assert_eq!(s.unclosed_spans, 0);
    }

    #[test]
    fn counters_keep_last_snapshot() {
        let recs = [
            Record::Counter { name: "c".into(), value: 5 },
            Record::Counter { name: "c".into(), value: 9 },
        ];
        let s = TraceSummary::from_records(&recs);
        assert_eq!(s.counters["c"], 9);
    }

    #[test]
    fn schema_markers_split_counter_segments_that_sum() {
        // One process counted to 9 (snapshots 5 then 9), crashed; the
        // resumed process appended a Schema header and counted to 4.
        let recs = [
            Record::Schema { version: crate::TRACE_SCHEMA_VERSION },
            Record::Counter { name: "c".into(), value: 5 },
            Record::Counter { name: "c".into(), value: 9 },
            Record::Schema { version: crate::TRACE_SCHEMA_VERSION },
            Record::Counter { name: "c".into(), value: 4 },
            Record::Counter { name: "only_second".into(), value: 2 },
        ];
        let s = TraceSummary::from_records(&recs);
        assert_eq!(s.counters["c"], 13, "segment finals sum across a resume");
        assert_eq!(s.counters["only_second"], 2);
    }

    #[test]
    fn schema_markers_merge_histogram_segments() {
        let mut h1 = Histogram::new();
        h1.observe(10.0);
        let mut h1b = h1.clone();
        h1b.observe(20.0);
        let mut h2 = Histogram::new();
        h2.observe(1000.0);
        let recs = [
            Record::Schema { version: crate::TRACE_SCHEMA_VERSION },
            // Two flushes in one process: cumulative snapshots, last wins.
            Record::Histogram { name: "h".into(), hist: h1 },
            Record::Histogram { name: "h".into(), hist: h1b },
            Record::Schema { version: crate::TRACE_SCHEMA_VERSION },
            Record::Histogram { name: "h".into(), hist: h2 },
        ];
        let s = TraceSummary::from_records(&recs);
        let h = &s.histograms["h"];
        assert_eq!(h.count(), 3, "2 from the first segment's final + 1 appended");
        assert!((h.sum() - 1030.0).abs() / 1030.0 < 0.1, "sum={}", h.sum());
        // The merged tail is visible: p99 sits near the appended 1000.
        assert!(h.quantile(0.99) > 500.0);
    }

    #[test]
    fn jsonl_round_trip_summarizes() {
        let mut h = Histogram::new();
        h.observe(10.0);
        let records: Vec<Record> = span(1, None, "tune", 0, 500)
            .into_iter()
            .chain([
                Record::Event {
                    name: "trial".into(),
                    span: Some(1),
                    t_us: 5,
                    fields: json!({"gflops": 10.0}),
                },
                Record::Counter { name: "sa.accepted".into(), value: 7 },
                Record::Histogram { name: "measure.us".into(), hist: h },
            ])
            .collect();
        let jsonl: String =
            records.iter().map(|r| serde_json::to_string(r).unwrap() + "\n").collect();
        let s = TraceSummary::from_reader(jsonl.as_bytes()).unwrap();
        assert_eq!(s.spans["tune"].count, 1);
        assert_eq!(s.events["trial"], 1);
        assert_eq!(s.counters["sa.accepted"], 7);
        assert_eq!(s.histograms["measure.us"].count(), 1);
        let rendered = s.render();
        assert!(rendered.contains("tune"), "{rendered}");
        assert!(rendered.contains("sa.accepted"), "{rendered}");
    }

    #[test]
    fn malformed_and_truncated_traces_still_summarize() {
        let jsonl =
            "not json\n{\"SpanStart\":{\"id\":1,\"parent\":null,\"name\":\"x\",\"t_us\":0}}\n";
        let s = TraceSummary::from_reader(jsonl.as_bytes()).unwrap();
        assert_eq!(s.malformed_lines, 1);
        assert_eq!(s.unclosed_spans, 1);
        assert!(s.render().contains("truncated"));
    }

    #[test]
    fn non_utf8_lines_count_as_malformed() {
        let mut bytes = b"{\"Counter\":{\"name\":\"c\",\"value\":3}}\n".to_vec();
        bytes.extend_from_slice(&[0xFF, 0xFE, 0xFD, b'\n']);
        bytes.extend_from_slice(b"{\"Counter\":{\"name\":\"d\",\"value\":4}}\n");
        let s = TraceSummary::from_reader(bytes.as_slice()).unwrap();
        assert_eq!(s.malformed_lines, 1);
        assert_eq!(s.counters["c"], 3);
        assert_eq!(s.counters["d"], 4, "lines after a corrupt one must still parse");
    }

    #[test]
    fn schema_version_is_tracked_and_newer_versions_warn() {
        let current =
            TraceSummary::from_records(&[Record::Schema { version: crate::TRACE_SCHEMA_VERSION }]);
        assert_eq!(current.schema_version, Some(crate::TRACE_SCHEMA_VERSION));
        assert!(current.schema_warning().is_none());

        let legacy = TraceSummary::from_records(&[Record::Counter { name: "c".into(), value: 1 }]);
        assert_eq!(legacy.schema_version, None);
        assert!(legacy.schema_warning().is_none());

        let future = TraceSummary::from_records(&[Record::Schema {
            version: crate::TRACE_SCHEMA_VERSION + 1,
        }]);
        let warning = future.schema_warning().unwrap();
        assert!(warning.contains("newer"), "{warning}");
        assert!(future.render().contains("warning:"));
    }
}

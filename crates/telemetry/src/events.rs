//! Typed views of the domain events the tuning stack emits.
//!
//! Trace consumers used to poke at `Record::Event` payloads with ad-hoc
//! JSON indexing, which silently yields zeros when a field is renamed.
//! This module is the single place that knows each event's payload shape:
//! every accessor returns `None` for a record that is not that event or
//! whose payload is missing a required field, so misparses are visible to
//! the caller instead of becoming fabricated data.

use crate::record::Record;
use serde_json::Value;

/// Name of the per-measurement event emitted by the tuning loop.
pub const TRIAL_EVENT: &str = "trial";
/// Name of the BAO scope-radius adaptation event.
pub const RADIUS_EVENT: &str = "bao.radius";
/// Name of the per-invocation SA search summary event.
pub const SA_DONE_EVENT: &str = "sa.done";
/// Name of the task-tuning start event.
pub const TUNE_START_EVENT: &str = "tune.start";
/// Name of the injected/observed measurement-fault event.
pub const MEASURE_FAULT_EVENT: &str = "measure.fault";
/// Name of the transient-fault retry event.
pub const MEASURE_RETRY_EVENT: &str = "measure.retry";
/// Name of the crashing-config quarantine event.
pub const MEASURE_QUARANTINE_EVENT: &str = "measure.quarantine";
/// Name of the crash-safe resume event (a tuning loop replaying a log).
pub const TUNE_RESUME_EVENT: &str = "tune.resume";
/// Name of the periodic liveness event the snapshot writer emits.
pub const RUN_HEARTBEAT_EVENT: &str = "run.heartbeat";
/// Name of the per-trial model-introspection event (capture only).
pub const MODEL_PRED_EVENT: &str = "model.pred";

fn event_parts<'a>(rec: &'a Record, expect: &str) -> Option<(Option<u64>, u64, &'a Value)> {
    match rec {
        Record::Event { name, span, t_us, fields } if name == expect => {
            Some((*span, *t_us, fields))
        }
        _ => None,
    }
}

/// One `trial` event: a single measured configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialEvent {
    /// 0-based measurement counter within the task.
    pub trial: u64,
    /// Flat configuration index in the task's space.
    pub config_index: u64,
    /// Measured GFLOPS (0.0 for a failed launch).
    pub gflops: f64,
    /// Best GFLOPS seen up to and including this trial.
    pub best_gflops: f64,
    /// Whether this trial improved on the best so far.
    pub improved: bool,
    /// Innermost open span at emission time.
    pub span: Option<u64>,
    /// Emission time, µs since telemetry start.
    pub t_us: u64,
}

impl TrialEvent {
    /// Parses a [`Record`] as a trial event; `None` for anything else.
    #[must_use]
    pub fn from_record(rec: &Record) -> Option<TrialEvent> {
        let (span, t_us, fields) = event_parts(rec, TRIAL_EVENT)?;
        Some(TrialEvent {
            trial: fields["trial"].as_u64()?,
            config_index: fields["config_index"].as_u64()?,
            gflops: fields["gflops"].as_f64()?,
            best_gflops: fields["best_gflops"].as_f64()?,
            improved: fields["improved"].as_bool().unwrap_or(false),
            span,
            t_us,
        })
    }
}

/// One `bao.radius` event: the adaptive-neighborhood state at one BAO step.
#[derive(Debug, Clone, PartialEq)]
pub struct RadiusEvent {
    /// BAO iteration counter.
    pub step: u64,
    /// Relative improvement r_t that drove the decision (`None` on the
    /// first step, before any improvement is defined).
    pub r_t: Option<f64>,
    /// Current scope radius after widening.
    pub radius: f64,
    /// Whether this step widened the radius.
    pub widened: bool,
    /// Consecutive sub-η steps so far.
    pub stall_widenings: u64,
    /// Innermost open span at emission time.
    pub span: Option<u64>,
    /// Emission time, µs since telemetry start.
    pub t_us: u64,
}

impl RadiusEvent {
    /// Parses a [`Record`] as a radius event; `None` for anything else.
    #[must_use]
    pub fn from_record(rec: &Record) -> Option<RadiusEvent> {
        let (span, t_us, fields) = event_parts(rec, RADIUS_EVENT)?;
        Some(RadiusEvent {
            step: fields["step"].as_u64()?,
            r_t: fields["r_t"].as_f64(),
            radius: fields["radius"].as_f64()?,
            widened: fields["widened"].as_bool().unwrap_or(false),
            stall_widenings: fields["stall_widenings"].as_u64().unwrap_or(0),
            span,
            t_us,
        })
    }
}

/// One `sa.done` event: the outcome of one simulated-annealing search.
#[derive(Debug, Clone, PartialEq)]
pub struct SaDoneEvent {
    /// Proposals accepted across the whole search.
    pub accepted: u64,
    /// Proposals rejected across the whole search.
    pub rejected: u64,
    /// Innermost open span at emission time.
    pub span: Option<u64>,
    /// Emission time, µs since telemetry start.
    pub t_us: u64,
}

impl SaDoneEvent {
    /// Parses a [`Record`] as an SA summary event; `None` for anything else.
    #[must_use]
    pub fn from_record(rec: &Record) -> Option<SaDoneEvent> {
        let (span, t_us, fields) = event_parts(rec, SA_DONE_EVENT)?;
        Some(SaDoneEvent {
            accepted: fields["accepted"].as_u64()?,
            rejected: fields["rejected"].as_u64()?,
            span,
            t_us,
        })
    }

    /// Fraction of proposals accepted (0.0 when the search made none).
    #[must_use]
    pub fn accept_rate(&self) -> f64 {
        let total = self.accepted + self.rejected;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            let rate = self.accepted as f64 / total as f64;
            rate
        }
    }
}

/// One `tune.start` event: a task-tuning run beginning.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneStartEvent {
    /// Task name.
    pub task: String,
    /// Method label.
    pub method: String,
    /// Master seed.
    pub seed: u64,
    /// Trial budget.
    pub n_trial: u64,
    /// Innermost open span at emission time (the `tune_task` span).
    pub span: Option<u64>,
    /// Emission time, µs since telemetry start.
    pub t_us: u64,
}

impl TuneStartEvent {
    /// Parses a [`Record`] as a tune-start event; `None` for anything else.
    #[must_use]
    pub fn from_record(rec: &Record) -> Option<TuneStartEvent> {
        let (span, t_us, fields) = event_parts(rec, TUNE_START_EVENT)?;
        Some(TuneStartEvent {
            task: fields["task"].as_str()?.to_string(),
            method: fields["method"].as_str()?.to_string(),
            seed: fields["seed"].as_u64()?,
            n_trial: fields["n_trial"].as_u64()?,
            span,
            t_us,
        })
    }
}

/// One `measure.fault` event: a measurement failure at the fault boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureFaultEvent {
    /// Task name.
    pub task: String,
    /// Flat configuration index.
    pub config_index: u64,
    /// Fault-taxonomy label (`timeout`, `launch_crash`, ...).
    pub kind: String,
    /// Whether a retry can plausibly clear it.
    pub transient: bool,
    /// 0-based attempt number for this configuration.
    pub attempt: u64,
    /// Innermost open span at emission time.
    pub span: Option<u64>,
    /// Emission time, µs since telemetry start.
    pub t_us: u64,
}

impl MeasureFaultEvent {
    /// Parses a [`Record`] as a fault event; `None` for anything else.
    #[must_use]
    pub fn from_record(rec: &Record) -> Option<MeasureFaultEvent> {
        let (span, t_us, fields) = event_parts(rec, MEASURE_FAULT_EVENT)?;
        Some(MeasureFaultEvent {
            task: fields["task"].as_str()?.to_string(),
            config_index: fields["config_index"].as_u64()?,
            kind: fields["kind"].as_str()?.to_string(),
            transient: fields["transient"].as_bool().unwrap_or(false),
            attempt: fields["attempt"].as_u64().unwrap_or(0),
            span,
            t_us,
        })
    }
}

/// One `measure.retry` event: the robust layer retrying a transient fault.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureRetryEvent {
    /// Task name.
    pub task: String,
    /// Flat configuration index.
    pub config_index: u64,
    /// 1-based retry attempt.
    pub attempt: u64,
    /// Fault-taxonomy label that triggered the retry.
    pub kind: String,
    /// Exponential backoff recorded for this retry, milliseconds.
    pub backoff_ms: u64,
    /// Innermost open span at emission time.
    pub span: Option<u64>,
    /// Emission time, µs since telemetry start.
    pub t_us: u64,
}

impl MeasureRetryEvent {
    /// Parses a [`Record`] as a retry event; `None` for anything else.
    #[must_use]
    pub fn from_record(rec: &Record) -> Option<MeasureRetryEvent> {
        let (span, t_us, fields) = event_parts(rec, MEASURE_RETRY_EVENT)?;
        Some(MeasureRetryEvent {
            task: fields["task"].as_str()?.to_string(),
            config_index: fields["config_index"].as_u64()?,
            attempt: fields["attempt"].as_u64()?,
            kind: fields["kind"].as_str()?.to_string(),
            backoff_ms: fields["backoff_ms"].as_u64().unwrap_or(0),
            span,
            t_us,
        })
    }
}

/// One `measure.quarantine` event: a config banned after persistent failure.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureQuarantineEvent {
    /// Task name.
    pub task: String,
    /// Flat configuration index now quarantined.
    pub config_index: u64,
    /// Fault-taxonomy label of the persistent failure.
    pub kind: String,
    /// Innermost open span at emission time.
    pub span: Option<u64>,
    /// Emission time, µs since telemetry start.
    pub t_us: u64,
}

impl MeasureQuarantineEvent {
    /// Parses a [`Record`] as a quarantine event; `None` for anything else.
    #[must_use]
    pub fn from_record(rec: &Record) -> Option<MeasureQuarantineEvent> {
        let (span, t_us, fields) = event_parts(rec, MEASURE_QUARANTINE_EVENT)?;
        Some(MeasureQuarantineEvent {
            task: fields["task"].as_str()?.to_string(),
            config_index: fields["config_index"].as_u64()?,
            kind: fields["kind"].as_str()?.to_string(),
            span,
            t_us,
        })
    }
}

/// One `tune.resume` event: a crash-safe resume replaying a trial log.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResumeEvent {
    /// Task name.
    pub task: String,
    /// Trials replayed from the recovered log before measuring resumed.
    pub replayed: u64,
    /// Innermost open span at emission time.
    pub span: Option<u64>,
    /// Emission time, µs since telemetry start.
    pub t_us: u64,
}

impl TuneResumeEvent {
    /// Parses a [`Record`] as a resume event; `None` for anything else.
    #[must_use]
    pub fn from_record(rec: &Record) -> Option<TuneResumeEvent> {
        let (span, t_us, fields) = event_parts(rec, TUNE_RESUME_EVENT)?;
        Some(TuneResumeEvent {
            task: fields["task"].as_str()?.to_string(),
            replayed: fields["replayed"].as_u64()?,
            span,
            t_us,
        })
    }
}

/// One `run.heartbeat` event: periodic liveness proof from a running tune.
///
/// Carries *wall-clock* time (unlike `t_us`, which is process-relative), so
/// `aaltune runs` can compare against "now" and flag a run whose heartbeats
/// stopped — a crashed run looks exactly like a slow one otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct HeartbeatEvent {
    /// Wall-clock milliseconds since the Unix epoch at emission.
    pub unix_ms: u64,
    /// Total live trials measured so far (across tasks).
    pub trials: u64,
    /// Tasks fully tuned so far.
    pub tasks_done: u64,
    /// Task currently tuning (`""` between tasks).
    pub task: String,
    /// Innermost open span at emission time.
    pub span: Option<u64>,
    /// Emission time, µs since telemetry start.
    pub t_us: u64,
}

impl HeartbeatEvent {
    /// Parses a [`Record`] as a heartbeat event; `None` for anything else.
    #[must_use]
    pub fn from_record(rec: &Record) -> Option<HeartbeatEvent> {
        let (span, t_us, fields) = event_parts(rec, RUN_HEARTBEAT_EVENT)?;
        Some(HeartbeatEvent {
            unix_ms: fields["unix_ms"].as_u64()?,
            trials: fields["trials"].as_u64().unwrap_or(0),
            tasks_done: fields["tasks_done"].as_u64().unwrap_or(0),
            task: fields["task"].as_str().unwrap_or("").to_string(),
            span,
            t_us,
        })
    }
}

/// One `model.pred` event: the surrogate's opinion of a measured trial.
///
/// Emitted only when model-introspection capture is on, alongside the
/// trial's `trial` event. Predictions are in measured units (GFLOPS);
/// `predicted_mean`/`predicted_std`/`acquisition` are `None` for blind
/// proposals (initialization, ε-greedy exploration, random fallback).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelPredEvent {
    /// Model-refit round the proposal came from (0-based).
    pub round: u64,
    /// 0-based measurement counter within the task.
    pub trial: u64,
    /// Flat configuration index in the task's space.
    pub config_index: u64,
    /// Surrogate's predicted GFLOPS (`None` for blind proposals).
    pub predicted_mean: Option<f64>,
    /// Predictive standard deviation (`None` when the model has no
    /// uncertainty estimate, e.g. a single non-bagged GBT).
    pub predicted_std: Option<f64>,
    /// Acquisition score the proposer ranked this config by.
    pub acquisition: Option<f64>,
    /// Measured GFLOPS (0.0 for a failed launch).
    pub measured_gflops: f64,
    /// Innermost open span at emission time.
    pub span: Option<u64>,
    /// Emission time, µs since telemetry start.
    pub t_us: u64,
}

impl ModelPredEvent {
    /// Parses a [`Record`] as a model-prediction event; `None` otherwise.
    #[must_use]
    pub fn from_record(rec: &Record) -> Option<ModelPredEvent> {
        let (span, t_us, fields) = event_parts(rec, MODEL_PRED_EVENT)?;
        Some(ModelPredEvent {
            round: fields["round"].as_u64()?,
            trial: fields["trial"].as_u64()?,
            config_index: fields["config_index"].as_u64()?,
            predicted_mean: fields["predicted_mean"].as_f64(),
            predicted_std: fields["predicted_std"].as_f64(),
            acquisition: fields["acquisition"].as_f64(),
            measured_gflops: fields["measured_gflops"].as_f64()?,
            span,
            t_us,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn ev(name: &str, fields: Value) -> Record {
        Record::Event { name: name.into(), span: Some(7), t_us: 42, fields }
    }

    #[test]
    fn trial_event_round_trips() {
        let rec = ev(
            TRIAL_EVENT,
            json!({
                "trial": 3u64,
                "config_index": 99u64,
                "gflops": 120.5,
                "best_gflops": 130.0,
                "improved": false,
            }),
        );
        let t = TrialEvent::from_record(&rec).unwrap();
        assert_eq!(t.trial, 3);
        assert_eq!(t.config_index, 99);
        assert!((t.gflops - 120.5).abs() < 1e-12);
        assert!((t.best_gflops - 130.0).abs() < 1e-12);
        assert!(!t.improved);
        assert_eq!(t.span, Some(7));
        assert_eq!(t.t_us, 42);
    }

    #[test]
    fn wrong_name_or_missing_field_is_none() {
        let other = ev("not.a.trial", json!({"trial": 1u64}));
        assert!(TrialEvent::from_record(&other).is_none());
        let missing = ev(TRIAL_EVENT, json!({"trial": 1u64}));
        assert!(TrialEvent::from_record(&missing).is_none());
        let non_event = Record::Counter { name: TRIAL_EVENT.into(), value: 1 };
        assert!(TrialEvent::from_record(&non_event).is_none());
    }

    #[test]
    fn radius_event_tolerates_null_rt() {
        let rec = ev(
            RADIUS_EVENT,
            json!({
                "step": 5u64,
                "r_t": Value::Null,
                "eta": 0.02,
                "radius": 2.5,
                "widened": true,
                "stall_widenings": 2u64,
            }),
        );
        let r = RadiusEvent::from_record(&rec).unwrap();
        assert_eq!(r.step, 5);
        assert_eq!(r.r_t, None);
        assert!(r.widened);
        assert_eq!(r.stall_widenings, 2);
    }

    #[test]
    fn sa_done_accept_rate() {
        let rec = ev(SA_DONE_EVENT, json!({"accepted": 30u64, "rejected": 10u64}));
        let s = SaDoneEvent::from_record(&rec).unwrap();
        assert!((s.accept_rate() - 0.75).abs() < 1e-12);
        let empty = ev(SA_DONE_EVENT, json!({"accepted": 0u64, "rejected": 0u64}));
        assert_eq!(SaDoneEvent::from_record(&empty).unwrap().accept_rate(), 0.0);
    }

    #[test]
    fn fault_retry_quarantine_and_resume_events_round_trip() {
        let fault = ev(
            MEASURE_FAULT_EVENT,
            json!({
                "task": "m.T1", "config_index": 12u64, "kind": "timeout",
                "transient": true, "attempt": 1u64,
            }),
        );
        let f = MeasureFaultEvent::from_record(&fault).unwrap();
        assert_eq!(f.task, "m.T1");
        assert_eq!(f.config_index, 12);
        assert_eq!(f.kind, "timeout");
        assert!(f.transient);
        assert_eq!(f.attempt, 1);

        let retry = ev(
            MEASURE_RETRY_EVENT,
            json!({
                "task": "m.T1", "config_index": 12u64, "attempt": 2u64,
                "kind": "transient_flake", "backoff_ms": 200u64,
            }),
        );
        let r = MeasureRetryEvent::from_record(&retry).unwrap();
        assert_eq!(r.attempt, 2);
        assert_eq!(r.backoff_ms, 200);
        assert_eq!(r.kind, "transient_flake");

        let quarantine = ev(
            MEASURE_QUARANTINE_EVENT,
            json!({"task": "m.T1", "config_index": 12u64, "kind": "launch_crash"}),
        );
        let q = MeasureQuarantineEvent::from_record(&quarantine).unwrap();
        assert_eq!(q.config_index, 12);
        assert_eq!(q.kind, "launch_crash");

        let resume = ev(TUNE_RESUME_EVENT, json!({"task": "m.T1", "replayed": 37u64}));
        let t = TuneResumeEvent::from_record(&resume).unwrap();
        assert_eq!(t.replayed, 37);

        // Cross-parse must fail, not fabricate.
        assert!(MeasureFaultEvent::from_record(&retry).is_none());
        assert!(MeasureRetryEvent::from_record(&fault).is_none());
        assert!(MeasureQuarantineEvent::from_record(&resume).is_none());
        assert!(TuneResumeEvent::from_record(&quarantine).is_none());
    }

    #[test]
    fn heartbeat_round_trips_and_requires_wall_clock() {
        let rec = ev(
            RUN_HEARTBEAT_EVENT,
            json!({"unix_ms": 1_700_000_000_000u64, "trials": 96u64,
                   "tasks_done": 2u64, "task": "m.T3"}),
        );
        let h = HeartbeatEvent::from_record(&rec).unwrap();
        assert_eq!(h.unix_ms, 1_700_000_000_000);
        assert_eq!(h.trials, 96);
        assert_eq!(h.tasks_done, 2);
        assert_eq!(h.task, "m.T3");
        // unix_ms is the staleness signal: without it the event is useless.
        let missing = ev(RUN_HEARTBEAT_EVENT, json!({"trials": 1u64}));
        assert!(HeartbeatEvent::from_record(&missing).is_none());
    }

    #[test]
    fn model_pred_event_round_trips_and_tolerates_blind_proposals() {
        let rec = ev(
            MODEL_PRED_EVENT,
            json!({
                "round": 4u64, "trial": 70u64, "config_index": 1234u64,
                "predicted_mean": 110.5, "predicted_std": 8.25,
                "acquisition": 0.91, "measured_gflops": 104.0,
            }),
        );
        let m = ModelPredEvent::from_record(&rec).unwrap();
        assert_eq!(m.round, 4);
        assert_eq!(m.trial, 70);
        assert_eq!(m.config_index, 1234);
        assert!((m.predicted_mean.unwrap() - 110.5).abs() < 1e-12);
        assert!((m.predicted_std.unwrap() - 8.25).abs() < 1e-12);
        assert!((m.acquisition.unwrap() - 0.91).abs() < 1e-12);
        assert!((m.measured_gflops - 104.0).abs() < 1e-12);

        // Blind proposals carry null opinions, not fabricated zeros.
        let blind = ev(
            MODEL_PRED_EVENT,
            json!({
                "round": 0u64, "trial": 0u64, "config_index": 7u64,
                "predicted_mean": Value::Null, "predicted_std": Value::Null,
                "acquisition": Value::Null, "measured_gflops": 50.0,
            }),
        );
        let b = ModelPredEvent::from_record(&blind).unwrap();
        assert_eq!(b.predicted_mean, None);
        assert_eq!(b.predicted_std, None);
        assert_eq!(b.acquisition, None);

        // Cross-parse must fail, not fabricate.
        let trial = ev(TRIAL_EVENT, json!({"trial": 1u64}));
        assert!(ModelPredEvent::from_record(&trial).is_none());
        assert!(TrialEvent::from_record(&rec).is_none());
    }

    #[test]
    fn tune_start_extracts_task_and_method() {
        let rec = ev(
            TUNE_START_EVENT,
            json!({"task": "m.T1", "method": "bted+bao", "seed": 9u64, "n_trial": 512u64}),
        );
        let t = TuneStartEvent::from_record(&rec).unwrap();
        assert_eq!(t.task, "m.T1");
        assert_eq!(t.method, "bted+bao");
        assert_eq!(t.seed, 9);
        assert_eq!(t.n_trial, 512);
    }
}

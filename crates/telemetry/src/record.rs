//! The wire format: one [`Record`] per JSONL line.

use crate::metrics::Histogram;
use serde::{Deserialize, Serialize};
use serde_json::Value;

/// One telemetry record. Traces are streams of these, serialized as JSON
/// lines in the order they were emitted.
///
/// Timestamps (`t_us`) are microseconds since the owning
/// [`crate::Telemetry`] handle was created, so traces are comparable across
/// processes without wall-clock coupling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Record {
    /// Trace header: the wire-format version the rest of the stream uses.
    ///
    /// Emitted once, first, by every [`crate::Telemetry`] handle. Consumers
    /// compare `version` against [`crate::TRACE_SCHEMA_VERSION`] and warn on
    /// newer streams instead of silently misparsing them.
    Schema {
        /// Wire-format version ([`crate::TRACE_SCHEMA_VERSION`] at write
        /// time).
        version: u32,
    },
    /// A span opened: a named region of wall time, possibly nested.
    SpanStart {
        /// Span id, unique within the trace.
        id: u64,
        /// Enclosing span on the same thread, if any.
        parent: Option<u64>,
        /// Span name (e.g. `"bted"`, `"bs.fit"`).
        name: String,
        /// Start time, µs since telemetry start.
        t_us: u64,
    },
    /// A span closed.
    SpanEnd {
        /// Id matching the corresponding [`Record::SpanStart`].
        id: u64,
        /// Span name, repeated so single-line consumers need no join.
        name: String,
        /// End time, µs since telemetry start.
        t_us: u64,
        /// Wall-time duration of the span in µs.
        dur_us: u64,
    },
    /// A point-in-time event with a typed payload.
    Event {
        /// Event name (e.g. `"trial"`, `"bao.radius"`).
        name: String,
        /// Innermost open span on the emitting thread, if any.
        span: Option<u64>,
        /// Emission time, µs since telemetry start.
        t_us: u64,
        /// Structured payload.
        fields: Value,
    },
    /// Cumulative value of a monotonic counter at flush time.
    Counter {
        /// Counter name.
        name: String,
        /// Cumulative count.
        value: u64,
    },
    /// Snapshot of a histogram at flush time.
    Histogram {
        /// Histogram name.
        name: String,
        /// The aggregated distribution.
        hist: Histogram,
    },
}

impl Record {
    /// The record's name field regardless of variant.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Record::Schema { .. } => "schema",
            Record::SpanStart { name, .. }
            | Record::SpanEnd { name, .. }
            | Record::Event { name, .. }
            | Record::Counter { name, .. }
            | Record::Histogram { name, .. } => name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn every_variant_round_trips_through_json() {
        let mut h = Histogram::new();
        h.observe(3.5);
        h.observe(900.0);
        let records = vec![
            Record::Schema { version: 1 },
            Record::SpanStart { id: 1, parent: None, name: "a".into(), t_us: 10 },
            Record::SpanStart { id: 2, parent: Some(1), name: "b".into(), t_us: 12 },
            Record::Event {
                name: "trial".into(),
                span: Some(2),
                t_us: 15,
                fields: json!({"trial": 3u64, "gflops": 120.5}),
            },
            Record::SpanEnd { id: 2, name: "b".into(), t_us: 30, dur_us: 18 },
            Record::Counter { name: "sa.accepted".into(), value: 42 },
            Record::Histogram { name: "measure.us".into(), hist: h },
        ];
        for r in records {
            let line = serde_json::to_string(&r).unwrap();
            let back: Record = serde_json::from_str(&line).unwrap();
            assert_eq!(r, back, "line was: {line}");
        }
    }
}

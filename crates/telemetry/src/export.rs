//! Prometheus text-format export of a [`MetricsSnapshot`], plus a small
//! validating parser used by tests and `aaltune top --check`.
//!
//! The exposition format is the 0.0.4 text format: `# TYPE` comments,
//! `name{labels} value` samples, names matching `[a-zA-Z_:][a-zA-Z0-9_:]*`.
//! Internal metric names are dotted (`exec.queue.build.depth.now`); export
//! sanitizes them by mapping every non-conforming byte to `_` and prefixing
//! [`METRIC_PREFIX`], so `measure.retry` becomes `aaltune_measure_retry`.
//!
//! Histograms export as Prometheus *summaries*: quantile-labelled samples
//! from [`Histogram::quantile`] plus `_sum` and `_count`. Labels export as
//! an info-style gauge (`aaltune_label{name="...", value="..."} 1`).

use crate::metrics::Histogram;
use crate::registry::MetricsSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Prefix for every exported metric name, namespacing the exposition.
pub const METRIC_PREFIX: &str = "aaltune_";

/// Quantiles exported for each histogram-backed summary.
const SUMMARY_QUANTILES: [f64; 4] = [0.5, 0.9, 0.99, 1.0];

/// Maps an internal dotted metric name to a valid Prometheus name:
/// non-`[a-zA-Z0-9_:]` bytes become `_`, a leading digit gains a `_`
/// prefix, and [`METRIC_PREFIX`] is prepended.
#[must_use]
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(METRIC_PREFIX.len() + name.len());
    out.push_str(METRIC_PREFIX);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 {
            "+Inf".to_string()
        } else {
            "-Inf".to_string()
        }
    } else {
        format!("{v}")
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn emit_summary(out: &mut String, name: &str, hist: &Histogram) {
    let _ = writeln!(out, "# TYPE {name} summary");
    for q in SUMMARY_QUANTILES {
        let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {}", fmt_value(hist.quantile(q)));
    }
    let _ = writeln!(out, "{name}_sum {}", fmt_value(hist.sum()));
    let _ = writeln!(out, "{name}_count {}", hist.count());
}

/// Renders `snap` in the Prometheus text exposition format.
///
/// Distinct internal names can sanitize to the same exported name (or a
/// counter and a gauge can share one); later duplicates are dropped with a
/// `# skipped` comment rather than emitting an invalid exposition.
#[must_use]
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut taken: BTreeMap<String, ()> = BTreeMap::new();
    fn claim(
        taken: &mut BTreeMap<String, ()>,
        out: &mut String,
        name: &str,
        internal: &str,
    ) -> bool {
        if taken.insert(name.to_string(), ()).is_some() {
            let _ = writeln!(out, "# skipped duplicate exported name for {internal:?}");
            false
        } else {
            true
        }
    }

    let _ = writeln!(out, "# aaltune metrics snapshot, schema v{}", snap.schema_version);
    let uptime = sanitize_name("uptime_seconds");
    let _ = writeln!(out, "# TYPE {uptime} gauge");
    #[allow(clippy::cast_precision_loss)]
    let up_s = snap.uptime_us as f64 / 1e6;
    let _ = writeln!(out, "{uptime} {}", fmt_value(up_s));
    taken.insert(uptime, ());
    let hb = sanitize_name("snapshot_unix_ms");
    let _ = writeln!(out, "# TYPE {hb} gauge");
    let _ = writeln!(out, "{hb} {}", snap.unix_ms);
    taken.insert(hb, ());

    for (name, value) in &snap.counters {
        let n = sanitize_name(name);
        if claim(&mut taken, &mut out, &n, name) {
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {value}");
        }
    }
    for (name, value) in &snap.gauges {
        let n = sanitize_name(name);
        if claim(&mut taken, &mut out, &n, name) {
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {}", fmt_value(*value));
        }
    }
    for (name, hist) in &snap.histograms {
        let n = sanitize_name(name);
        // A summary also claims its _sum/_count derivatives.
        let claimed = claim(&mut taken, &mut out, &n, name)
            && claim(&mut taken, &mut out, &format!("{n}_sum"), name)
            && claim(&mut taken, &mut out, &format!("{n}_count"), name);
        if claimed {
            emit_summary(&mut out, &n, hist);
        }
    }
    for (name, value) in &snap.labels {
        let _ = writeln!(
            out,
            "{}label{{name=\"{}\",value=\"{}\"}} 1",
            METRIC_PREFIX,
            escape_label(name),
            escape_label(value)
        );
    }
    out
}

/// One parsed sample line from a Prometheus exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name (without labels).
    pub name: String,
    /// Raw label block, `""` when absent.
    pub labels: String,
    /// Sample value.
    pub value: f64,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else { return false };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses (and thereby validates) a Prometheus text exposition.
///
/// Accepts the subset [`to_prometheus`] emits: `# ...` comment lines, blank
/// lines, and `name[{labels}] value` samples. Returns every sample in file
/// order.
///
/// # Errors
///
/// Returns a message naming the first malformed line: an invalid metric
/// name, an unterminated label block, or an unparsable value.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, labels, rest) = if let Some(open) = line.find('{') {
            // The closing brace is the first `}` *outside* a quoted label
            // value: values may legally contain `{`/`}` unescaped.
            let mut close = None;
            let mut in_quotes = false;
            let mut escaped = false;
            for (i, c) in line[open + 1..].char_indices() {
                match c {
                    _ if escaped => escaped = false,
                    '\\' if in_quotes => escaped = true,
                    '"' => in_quotes = !in_quotes,
                    '}' if !in_quotes => {
                        close = Some(open + 1 + i);
                        break;
                    }
                    _ => {}
                }
            }
            let Some(close) = close else {
                return Err(format!("line {}: unterminated label block: {raw:?}", lineno + 1));
            };
            (&line[..open], line[open + 1..close].to_string(), line[close + 1..].trim())
        } else {
            let Some(sp) = line.find(char::is_whitespace) else {
                return Err(format!("line {}: no value: {raw:?}", lineno + 1));
            };
            (&line[..sp], String::new(), line[sp..].trim())
        };
        if !valid_name(name_part) {
            return Err(format!("line {}: invalid metric name {name_part:?}", lineno + 1));
        }
        // Value is the first whitespace token after the name/labels; an
        // optional timestamp may follow per the exposition format.
        let value_tok = rest.split_whitespace().next().unwrap_or("");
        let value = match value_tok {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            tok => {
                tok.parse::<f64>().map_err(|_| format!("line {}: bad value {tok:?}", lineno + 1))?
            }
        };
        samples.push(PromSample { name: name_part.to_string(), labels, value });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(sanitize_name("measure.retry"), "aaltune_measure_retry");
        assert_eq!(sanitize_name("exec.device.0.busy_us"), "aaltune_exec_device_0_busy_us");
        assert_eq!(sanitize_name("9lives"), "aaltune__9lives");
        assert_eq!(sanitize_name("task.m.T1/relu best"), "aaltune_task_m_T1_relu_best");
    }

    #[test]
    fn export_round_trips_every_metric() {
        let reg = MetricsRegistry::new();
        reg.inc("tune.trials", 42);
        reg.inc("measure.retry", 3);
        reg.gauge_set("exec.queue.build.depth.now", 5.0);
        reg.gauge_set("neg", -2.5);
        for i in 1..=10 {
            reg.observe("trial.gflops", f64::from(i) * 10.0);
        }
        reg.set_label("task.current", "m.T1");
        let snap = reg.snapshot();
        let text = to_prometheus(&snap);
        let samples = parse_prometheus(&text).unwrap();

        let find =
            |n: &str| samples.iter().find(|s| s.name == n && s.labels.is_empty()).map(|s| s.value);
        assert_eq!(find("aaltune_tune_trials"), Some(42.0));
        assert_eq!(find("aaltune_measure_retry"), Some(3.0));
        assert_eq!(find("aaltune_exec_queue_build_depth_now"), Some(5.0));
        assert_eq!(find("aaltune_neg"), Some(-2.5));
        assert_eq!(find("aaltune_trial_gflops_count"), Some(10.0));
        assert!(find("aaltune_trial_gflops_sum").unwrap() > 0.0);
        assert!(samples
            .iter()
            .any(|s| s.name == "aaltune_trial_gflops" && s.labels.contains("quantile=\"0.5\"")));
        assert!(samples.iter().any(|s| s.name == "aaltune_label" && s.labels.contains("m.T1")));
        assert!(find("aaltune_uptime_seconds").is_some());
        assert!(find("aaltune_snapshot_unix_ms").unwrap() > 0.0);
    }

    #[test]
    fn colliding_exported_names_are_skipped_not_duplicated() {
        let reg = MetricsRegistry::new();
        reg.inc("a.b", 1);
        reg.gauge_set("a_b", 2.0); // sanitizes to the same exported name
        let text = to_prometheus(&reg.snapshot());
        let samples = parse_prometheus(&text).unwrap();
        let hits: Vec<_> = samples.iter().filter(|s| s.name == "aaltune_a_b").collect();
        assert_eq!(hits.len(), 1, "duplicate exported name must be dropped: {text}");
        assert!(text.contains("# skipped duplicate"));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("ok_metric 1\n").is_ok());
        assert!(parse_prometheus("bad-name 1\n").is_err());
        assert!(parse_prometheus("no_value\n").is_err());
        assert!(parse_prometheus("unterminated{quantile=\"0.5\" 1\n").is_err());
        assert!(parse_prometheus("bad_value x\n").is_err());
        assert!(parse_prometheus("# just a comment\n\n").unwrap().is_empty());
        let inf = parse_prometheus("m{quantile=\"1\"} +Inf\n").unwrap();
        assert!(inf[0].value.is_infinite());
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.set_label("weird", "a\"b\\c\nd");
        let text = to_prometheus(&reg.snapshot());
        assert!(text.contains("value=\"a\\\"b\\\\c\\nd\""));
        parse_prometheus(&text).unwrap();
    }

    #[test]
    fn hostile_metric_names_still_export_validly() {
        // Anything a task name can smuggle into a metric name — unicode,
        // spaces, braces, quotes, an empty string — must sanitize to a
        // parseable exposition, never an invalid line.
        let reg = MetricsRegistry::new();
        reg.inc("tâche.μ/relu é", 1);
        reg.inc("", 2);
        reg.gauge_set("a{b=\"c\"} 1\n# sneaky", 3.0);
        reg.gauge_set("0.force.leading.digit", 4.0);
        let text = to_prometheus(&reg.snapshot());
        let samples = parse_prometheus(&text).expect("sanitized export must parse");
        assert_eq!(sanitize_name(""), "aaltune_");
        let find = |n: String| samples.iter().find(|s| s.name == n).map(|s| s.value);
        assert_eq!(find(sanitize_name("tâche.μ/relu é")), Some(1.0));
        assert_eq!(find(sanitize_name("")), Some(2.0));
        assert_eq!(find(sanitize_name("a{b=\"c\"} 1\n# sneaky")), Some(3.0));
        assert_eq!(find(sanitize_name("0.force.leading.digit")), Some(4.0));
        assert_eq!(sanitize_name("0.x"), "aaltune__0_x", "leading digit gains an underscore");
    }

    #[test]
    fn hostile_label_names_and_values_round_trip() {
        let reg = MetricsRegistry::new();
        reg.set_label("task \"naïve\"\n", "π={3,14}\\\"");
        let text = to_prometheus(&reg.snapshot());
        let samples = parse_prometheus(&text).expect("escaped labels must parse");
        let label = samples.iter().find(|s| s.name == "aaltune_label").unwrap();
        // The newline and quotes are escaped inside the label block — the
        // exposition stays one line per sample.
        assert!(label.labels.contains("task \\\"naïve\\\"\\n"), "{}", label.labels);
        assert!(label.labels.contains("π={3,14}\\\\\\\""), "{}", label.labels);
    }
}

//! Where records go: the [`Sink`] trait and its implementations.

use crate::record::Record;
use crate::sync::lock_or_recover;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Receives every record a [`crate::Telemetry`] handle emits.
///
/// Sinks are shared across threads (BTED batches run on scoped threads), so
/// implementations synchronize internally.
pub trait Sink: Send + Sync {
    /// Consumes one record.
    fn record(&self, rec: &Record);

    /// Flushes any buffered output (called by [`crate::Telemetry::flush`]).
    fn flush(&self) {}
}

/// Discards everything.
///
/// Rarely needed directly: a [`crate::Telemetry::disabled`] handle
/// short-circuits before records (or their payload closures) are even
/// built, which is the true zero-overhead path. `NoopSink` exists for
/// compositions that want an explicit "off" arm at runtime.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&self, _rec: &Record) {}
}

/// Thread-safe JSONL writer: one record per line.
pub struct FileSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl FileSink {
    /// Creates (truncating) `path` and writes records to it as JSON lines.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        // aal-lint: allow(raw-artifact-write, reason = "opens the append-only trace; records are checksummed and readers tolerate torn tails")
        let f = std::fs::File::create(path)?;
        Ok(FileSink { out: Mutex::new(Box::new(std::io::BufWriter::new(f))) })
    }

    /// Opens `path` for appending (creating it if absent). A resumed run
    /// uses this so its records extend the crashed run's trace; the
    /// fresh [`Record::Schema`] header it emits marks the segment
    /// boundary for [`crate::TraceSummary`]'s merge rules.
    ///
    /// # Errors
    ///
    /// Propagates file-open errors.
    pub fn append(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(FileSink { out: Mutex::new(Box::new(std::io::BufWriter::new(f))) })
    }

    /// Wraps an arbitrary writer (e.g. a `Vec<u8>` in tests).
    pub fn from_writer(w: impl Write + Send + 'static) -> Self {
        FileSink { out: Mutex::new(Box::new(w)) }
    }
}

impl Sink for FileSink {
    fn record(&self, rec: &Record) {
        // aal-lint: allow(unwrap, reason = "trace records are plain data; serialization cannot fail")
        let line = serde_json::to_string(rec).expect("records serialize");
        let mut out = lock_or_recover(&self.out);
        // Trace output is best-effort: losing a line beats panicking the
        // tuning loop on a full disk.
        let _ = writeln!(out, "{line}");
    }

    fn flush(&self) {
        let _ = lock_or_recover(&self.out).flush();
    }
}

/// In-memory sink for tests. Clones share the same buffer, so keep one
/// handle and give the other to [`crate::Telemetry::new`].
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    records: Arc<Mutex<Vec<Record>>>,
}

impl VecSink {
    /// Creates an empty shared buffer.
    #[must_use]
    pub fn new() -> Self {
        VecSink::default()
    }

    /// Snapshot of everything recorded so far.
    #[must_use]
    pub fn records(&self) -> Vec<Record> {
        lock_or_recover(&self.records).clone()
    }

    /// Number of records so far.
    #[must_use]
    pub fn len(&self) -> usize {
        lock_or_recover(&self.records).len()
    }

    /// True if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for VecSink {
    fn record(&self, rec: &Record) {
        lock_or_recover(&self.records).push(rec.clone());
    }
}

/// Fans every record out to several sinks (e.g. a human reporter plus a
/// JSONL trace file).
#[derive(Default)]
pub struct TeeSink {
    sinks: Vec<Box<dyn Sink>>,
}

impl TeeSink {
    /// Creates an empty tee.
    #[must_use]
    pub fn new() -> Self {
        TeeSink::default()
    }

    /// Adds a downstream sink.
    #[must_use]
    pub fn with(mut self, sink: impl Sink + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }

    /// Number of downstream sinks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// True if there are no downstream sinks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl Sink for TeeSink {
    fn record(&self, rec: &Record) {
        for s in &self.sinks {
            s.record(rec);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

/// Renders `report` events human-readably on stderr, or as JSON lines when
/// `json` is set — the single progress reporter behind `--quiet` / `--json`.
///
/// Only events named [`crate::REPORT_EVENT`] are printed; spans, metrics,
/// and domain events pass through silently (they belong in a trace file).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReporterSink {
    json: bool,
}

impl ReporterSink {
    /// Human-readable reporter.
    #[must_use]
    pub fn human() -> Self {
        ReporterSink { json: false }
    }

    /// JSON-lines reporter (one record per line on stderr).
    #[must_use]
    pub fn json() -> Self {
        ReporterSink { json: true }
    }
}

impl Sink for ReporterSink {
    fn record(&self, rec: &Record) {
        let Record::Event { name, t_us, fields, .. } = rec else { return };
        if name != crate::REPORT_EVENT {
            return;
        }
        if self.json {
            // aal-lint: allow(unwrap, reason = "trace records are plain data; serialization cannot fail")
            eprintln!("{}", serde_json::to_string(rec).expect("records serialize"));
        } else {
            let msg = fields["msg"].as_str().unwrap_or_default();
            #[allow(clippy::cast_precision_loss)]
            let secs = *t_us as f64 / 1e6;
            eprintln!("[{secs:>8.2}s] {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn ev(name: &str) -> Record {
        Record::Event { name: name.into(), span: None, t_us: 1, fields: json!({"msg": "hi"}) }
    }

    #[test]
    fn vec_sink_accumulates() {
        let v = VecSink::new();
        assert!(v.is_empty());
        v.record(&ev("a"));
        v.record(&ev("b"));
        assert_eq!(v.len(), 2);
        assert_eq!(v.records()[1].name(), "b");
    }

    #[test]
    fn tee_fans_out() {
        let a = VecSink::new();
        let b = VecSink::new();
        let tee = TeeSink::new().with(a.clone()).with(b.clone());
        assert_eq!(tee.len(), 2);
        tee.record(&ev("x"));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn file_sink_writes_parseable_jsonl() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::default();
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                lock_or_recover(&self.0).extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = FileSink::from_writer(Shared(buf.clone()));
        sink.record(&ev("one"));
        sink.record(&ev("two"));
        sink.flush();
        let text = String::from_utf8(lock_or_recover(&buf).clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in lines {
            let r: Record = serde_json::from_str(l).unwrap();
            assert!(matches!(r, Record::Event { .. }));
        }
    }
}

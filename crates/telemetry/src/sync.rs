//! The workspace's single lock-poisoning policy.
//!
//! Every `Mutex`/`RwLock` acquisition in the stack goes through these three
//! helpers instead of `.lock().unwrap()` at the call site (enforced by
//! aal-lint's `lock-unwrap` rule). The policy is **observe and recover**:
//! a poisoned lock yields its inner data instead of cascading the panic.
//!
//! Why recovery is sound here, uniformly:
//!
//! * Guarded state is either monotone (counters, histograms, append-only
//!   record vectors) or re-derivable (quarantine sets, checkpoint staging,
//!   device free-lists), so a write interrupted by a panic leaves data that
//!   is stale at worst, never load-bearing-corrupt.
//! * Durability never depends on in-memory state surviving a panic: the
//!   crash-safety discipline (append-before-apply, temp+fsync+rename)
//!   treats *process death* as the failure model, which subsumes panics.
//! * The panicking thread still unwinds: worker panics surface at `join`
//!   in the executor, so recovery cannot mask a failure — it only keeps
//!   telemetry shutdown paths and sibling workers from dying in sympathy.
//!
//! If a future structure violates these assumptions (a multi-step update
//! whose intermediate state must never be seen), it needs its own explicit
//! handling — not a fourth helper here.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Acquires `m`, recovering the data if a previous holder panicked.
pub fn lock_or_recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-acquires `l`, recovering the data if a writer panicked.
pub fn read_or_recover<T: ?Sized>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-acquires `l`, recovering the data if a previous holder panicked.
pub fn write_or_recover<T: ?Sized>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn recovers_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_or_recover(&m), 1);
        *lock_or_recover(&m) = 2;
        assert_eq!(*lock_or_recover(&m), 2);
    }

    #[test]
    fn recovers_a_poisoned_rwlock() {
        let l = Arc::new(RwLock::new(7u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert_eq!(*read_or_recover(&l), 7);
        *write_or_recover(&l) = 8;
        assert_eq!(*read_or_recover(&l), 8);
    }

    #[test]
    fn plain_acquisition_passes_through() {
        let m = Mutex::new(Vec::<u8>::new());
        lock_or_recover(&m).push(3);
        assert_eq!(*lock_or_recover(&m), vec![3]);
    }
}

//! Structured tracing, metrics, and tuning-trace artifacts for the aaltune
//! stack.
//!
//! The paper's claims are all about *where time and measurements go* — how
//! many configurations each arm measures, how fast each arm converges, how
//! BAO's scope radius adapts. This crate makes those quantities observable:
//!
//! * **Spans** — named regions of wall time with parent links, so the trace
//!   reconstructs the per-phase breakdown (init-set selection, surrogate
//!   fits, measurement batches).
//! * **Events** — point-in-time facts with typed JSON payloads (one per
//!   trial, one per BAO radius adaptation, …).
//! * **Metrics** — monotonic counters (SA proposals accepted/rejected) and
//!   mergeable log-scale [`Histogram`]s (measurement latency, fit time),
//!   snapshotted into the trace at [`Telemetry::flush`].
//!
//! Everything flows into a [`Sink`]: [`FileSink`] writes JSONL trace
//! artifacts, [`VecSink`] captures records for tests, [`ReporterSink`]
//! renders progress for humans, and [`TeeSink`] composes them.
//!
//! # Handles and the global registry
//!
//! A [`Telemetry`] handle is a cheap [`Arc`] clone. The tuning loop spans
//! three crates and many free functions, so instead of threading a handle
//! through every signature the process installs one with [`set_global`] and
//! instrumented code grabs it with [`global`]. The default global handle is
//! **disabled**: every probe short-circuits on an atomic load before any
//! payload is built, which keeps the un-instrumented hot path at zero cost.
//!
//! ```
//! use telemetry::{global, set_global, Telemetry, VecSink};
//!
//! let sink = VecSink::new();
//! set_global(Telemetry::new(sink.clone()));
//! {
//!     let tel = global();
//!     let _span = tel.span("bted");
//!     tel.event("trial", || telemetry::json!({"trial": 1u64, "gflops": 88.5}));
//!     tel.count("sa.accepted", 1);
//!     tel.observe("measure.us", 1250.0);
//! }
//! global().flush();
//! assert!(sink.len() >= 4); // span start/end, event, counter, histogram
//! # set_global(Telemetry::disabled());
//! ```

pub mod bus;
pub mod events;
pub mod export;
pub mod metrics;
pub mod record;
pub mod registry;
pub mod sink;
pub mod stream;
pub mod summary;
pub mod sync;

pub use bus::{BusRecv, EventBus, EventSub};
pub use events::{HeartbeatEvent, RadiusEvent, SaDoneEvent, TrialEvent, TuneStartEvent};
pub use export::{parse_prometheus, to_prometheus};
pub use metrics::Histogram;
pub use record::Record;
pub use registry::{MetricsRegistry, MetricsSnapshot, SNAPSHOT_SCHEMA_VERSION};
/// Re-exported so instrumentation sites can build event payloads without
/// depending on `serde_json` directly.
pub use serde_json::{json, Value};
pub use sink::{FileSink, NoopSink, ReporterSink, Sink, TeeSink, VecSink};
pub use stream::{SnapshotWriter, TraceFollower, PROM_FILE, SNAPSHOT_FILE};
pub use summary::TraceSummary;
pub use sync::{lock_or_recover, read_or_recover, write_or_recover};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Name of the progress-report event rendered by [`ReporterSink`].
///
/// Report events carry a `{"msg": "..."}` payload and replace ad-hoc
/// `println!` progress output; domain events use their own names and stay
/// machine-oriented.
pub const REPORT_EVENT: &str = "report";

/// Version of the trace wire format this crate writes.
///
/// Every enabled [`Telemetry`] handle emits a [`Record::Schema`] record
/// first, so consumers (`trace`, `compare`, `report`) can warn on traces
/// written by a newer crate instead of silently misparsing them. Bump when
/// a record variant or event payload changes incompatibly.
///
/// Version 2 adds the measurement-health events (`measure.fault`,
/// `measure.retry`, `measure.quarantine`, `tune.resume`) and the
/// multi-segment trace convention: a resumed run appends to the existing
/// trace file, and a mid-stream [`Record::Schema`] marker starts a new
/// process segment whose counter/histogram snapshots sum/merge with the
/// previous segment's finals.
pub const TRACE_SCHEMA_VERSION: u32 = 2;

struct Inner {
    sink: Box<dyn Sink>,
    start: Instant,
    next_span: AtomicU64,
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    /// Optional live mirror: when attached, `count`/`observe` also publish
    /// into it immediately, and `gauge`/`set_label` become live-only probes.
    live: Option<Arc<MetricsRegistry>>,
}

thread_local! {
    /// Innermost-last stack of `(handle identity, span id)` for the current
    /// thread. Handle identity (the `Arc` pointer) keys the stack so two
    /// live handles on one thread cannot adopt each other's spans.
    static SPAN_STACK: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

/// A handle for emitting telemetry. Cloning is cheap (one `Arc` clone); a
/// [`Telemetry::disabled`] handle makes every probe a no-op that
/// short-circuits before payloads are built.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("enabled", &self.is_enabled()).finish()
    }
}

impl Telemetry {
    /// Creates a handle that emits every record to `sink`. Timestamps are
    /// microseconds since this call.
    pub fn new(sink: impl Sink + 'static) -> Self {
        Self::build(Box::new(sink), None)
    }

    /// [`Telemetry::new`] with a live [`MetricsRegistry`] attached: every
    /// `count`/`observe` also publishes into the registry immediately, and
    /// [`Telemetry::gauge`]/[`Telemetry::set_label`] become live probes.
    /// The registry never alters what reaches the sink.
    pub fn with_registry(sink: impl Sink + 'static, registry: Arc<MetricsRegistry>) -> Self {
        Self::build(Box::new(sink), Some(registry))
    }

    fn build(sink: Box<dyn Sink>, live: Option<Arc<MetricsRegistry>>) -> Self {
        let tel = Telemetry {
            inner: Some(Arc::new(Inner {
                sink,
                start: Instant::now(),
                next_span: AtomicU64::new(1),
                counters: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                live,
            })),
        };
        if let Some(inner) = &tel.inner {
            inner.sink.record(&Record::Schema { version: TRACE_SCHEMA_VERSION });
        }
        tel
    }

    /// The attached live registry, if any. Observers (snapshot writer,
    /// dashboards) read it; publishers go through the probe methods.
    #[must_use]
    pub fn live_registry(&self) -> Option<Arc<MetricsRegistry>> {
        self.inner.as_ref().and_then(|i| i.live.clone())
    }

    /// True when a live registry is attached — lets hot paths skip building
    /// gauge names that would go nowhere.
    #[must_use]
    pub fn has_live_registry(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.live.is_some())
    }

    /// Creates a handle whose probes all short-circuit. This is the true
    /// zero-overhead path — payload closures are never invoked.
    #[must_use]
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// True when records actually go somewhere.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn now_us(inner: &Inner) -> u64 {
        u64::try_from(inner.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn identity(inner: &Arc<Inner>) -> usize {
        Arc::as_ptr(inner) as usize
    }

    /// Opens a span named `name`. The span closes (emitting
    /// [`Record::SpanEnd`] with its duration) when the returned guard drops.
    /// Spans opened while another of this handle's spans is live on the same
    /// thread record it as their parent.
    pub fn span(&self, name: &str) -> SpanGuard {
        let Some(inner) = &self.inner else { return SpanGuard { live: None } };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let me = Self::identity(inner);
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.iter().rev().find(|&&(h, _)| h == me).map(|&(_, id)| id);
            s.push((me, id));
            parent
        });
        inner.sink.record(&Record::SpanStart {
            id,
            parent,
            name: name.to_string(),
            t_us: Self::now_us(inner),
        });
        SpanGuard {
            live: Some(LiveSpan {
                inner: Arc::clone(inner),
                id,
                name: name.to_string(),
                opened: Instant::now(),
            }),
        }
    }

    /// Emits an event named `name`. `fields` is only invoked when the
    /// handle is enabled, so payload construction costs nothing otherwise.
    /// The innermost open span of this handle on the current thread is
    /// recorded as the event's span.
    pub fn event(&self, name: &str, fields: impl FnOnce() -> Value) {
        let Some(inner) = &self.inner else { return };
        let me = Self::identity(inner);
        let span = SPAN_STACK
            .with(|s| s.borrow().iter().rev().find(|&&(h, _)| h == me).map(|&(_, id)| id));
        inner.sink.record(&Record::Event {
            name: name.to_string(),
            span,
            t_us: Self::now_us(inner),
            fields: fields(),
        });
    }

    /// Emits a human-oriented progress line as a [`REPORT_EVENT`] event.
    /// `msg` is only invoked when the handle is enabled.
    pub fn report(&self, msg: impl FnOnce() -> String) {
        self.event(REPORT_EVENT, || json!({ "msg": msg() }));
    }

    /// Adds `delta` to the monotonic counter `name`. Counters are emitted
    /// as [`Record::Counter`] snapshots at [`Telemetry::flush`].
    pub fn count(&self, name: &str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        {
            let mut counters = lock_or_recover(&inner.counters);
            *counters.entry(name.to_string()).or_insert(0) += delta;
        }
        if let Some(live) = &inner.live {
            live.inc(name, delta);
        }
    }

    /// Records `value` into the log-scale histogram `name`. Histograms are
    /// emitted as [`Record::Histogram`] snapshots at [`Telemetry::flush`].
    pub fn observe(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        {
            let mut hists = lock_or_recover(&inner.histograms);
            hists.entry(name.to_string()).or_default().observe(value);
        }
        if let Some(live) = &inner.live {
            live.observe(name, value);
        }
    }

    /// Sets the live gauge `name` to `value`. Gauges are instantaneous
    /// state (queue depth, busy workers) — they exist only in the attached
    /// [`MetricsRegistry`] and never reach the trace, so instrumenting a
    /// gauge cannot change any trace artifact. No-op without a registry.
    pub fn gauge(&self, name: &str, value: f64) {
        let Some(live) = self.inner.as_ref().and_then(|i| i.live.as_ref()) else { return };
        live.gauge_set(name, value);
    }

    /// Adds `delta` (may be negative) to the live gauge `name`. Live-only,
    /// like [`Telemetry::gauge`].
    pub fn gauge_add(&self, name: &str, delta: f64) {
        let Some(live) = self.inner.as_ref().and_then(|i| i.live.as_ref()) else { return };
        live.gauge_add(name, delta);
    }

    /// Sets the live string label `name` (e.g. the task currently tuning).
    /// Live-only, like [`Telemetry::gauge`].
    pub fn set_label(&self, name: &str, value: &str) {
        let Some(live) = self.inner.as_ref().and_then(|i| i.live.as_ref()) else { return };
        live.set_label(name, value);
    }

    /// Emits the current counter and histogram snapshots, then flushes the
    /// sink. Call once at the end of a run (snapshots are cumulative, so
    /// flushing repeatedly is safe — summarizers keep the last value seen).
    pub fn flush(&self) {
        let Some(inner) = &self.inner else { return };
        {
            let counters = lock_or_recover(&inner.counters);
            for (name, &value) in counters.iter() {
                inner.sink.record(&Record::Counter { name: name.clone(), value });
            }
        }
        {
            let hists = lock_or_recover(&inner.histograms);
            for (name, hist) in hists.iter() {
                inner.sink.record(&Record::Histogram { name: name.clone(), hist: hist.clone() });
            }
        }
        inner.sink.flush();
    }
}

struct LiveSpan {
    inner: Arc<Inner>,
    id: u64,
    name: String,
    opened: Instant,
}

/// Closes its span on drop. Hold it for the lifetime of the region:
/// `let _span = tel.span("bted");`
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl SpanGuard {
    /// Span id, for correlating events in tests. `None` on disabled handles.
    #[must_use]
    pub fn id(&self) -> Option<u64> {
        self.live.as_ref().map(|l| l.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        let me = Telemetry::identity(&live.inner);
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards are usually dropped innermost-first, but a guard moved
            // across scopes may not be on top: remove by id, not by pop.
            if let Some(pos) = s.iter().rposition(|&e| e == (me, live.id)) {
                s.remove(pos);
            }
        });
        let dur_us = u64::try_from(live.opened.elapsed().as_micros()).unwrap_or(u64::MAX);
        live.inner.sink.record(&Record::SpanEnd {
            id: live.id,
            name: live.name,
            t_us: Telemetry::now_us(&live.inner),
            dur_us,
        });
    }
}

/// Fast-path flag mirroring whether the global handle is enabled, so
/// [`global`] on the disabled default is a single atomic load.
static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: RwLock<Option<Telemetry>> = RwLock::new(None);

/// Installs `tel` as the process-wide handle returned by [`global`].
/// Installing [`Telemetry::disabled`] turns global telemetry off again.
pub fn set_global(tel: Telemetry) {
    let enabled = tel.is_enabled();
    *write_or_recover(&GLOBAL) = enabled.then_some(tel);
    GLOBAL_ENABLED.store(enabled, Ordering::Release);
}

/// The process-wide handle. Disabled (all probes no-ops) until
/// [`set_global`] installs an enabled one. Grab it once per function, not
/// per loop iteration — the enabled path takes a read lock.
#[must_use]
pub fn global() -> Telemetry {
    if !GLOBAL_ENABLED.load(Ordering::Acquire) {
        return Telemetry::disabled();
    }
    read_or_recover(&GLOBAL).clone().unwrap_or_default()
}

/// Builds and installs the standard command-line pipeline: a progress
/// [`ReporterSink`] (human-readable, or JSON lines when `json` is set,
/// suppressed entirely by `quiet`) teed with an optional JSONL trace
/// [`FileSink`] at `trace`.
///
/// Returns the installed handle so the caller can [`Telemetry::flush`] it
/// once the run finishes. With no reporter and no trace file the handle is
/// [`Telemetry::disabled`], keeping the hot path at zero overhead.
///
/// # Errors
///
/// Propagates trace-file creation errors.
pub fn install_pipeline(
    trace: Option<&std::path::Path>,
    quiet: bool,
    json: bool,
) -> std::io::Result<Telemetry> {
    install_pipeline_mode(trace, quiet, json, false)
}

/// [`install_pipeline`] with an explicit trace-file mode: when `append`
/// is set the trace file is extended instead of truncated, which is what
/// a crash-safe resume wants — its fresh [`Record::Schema`] header marks
/// a new process segment in the same trace.
///
/// # Errors
///
/// Propagates trace-file open errors.
pub fn install_pipeline_mode(
    trace: Option<&std::path::Path>,
    quiet: bool,
    json: bool,
    append: bool,
) -> std::io::Result<Telemetry> {
    install_pipeline_live(trace, quiet, json, append, None)
}

/// [`install_pipeline_mode`] with an optional live [`MetricsRegistry`]
/// attached to the installed handle, so every instrumentation site in the
/// process publishes live metrics without code changes. The registry never
/// changes what reaches the trace file.
///
/// # Errors
///
/// Propagates trace-file open errors.
pub fn install_pipeline_live(
    trace: Option<&std::path::Path>,
    quiet: bool,
    json: bool,
    append: bool,
    live: Option<Arc<MetricsRegistry>>,
) -> std::io::Result<Telemetry> {
    let mut tee = TeeSink::new();
    if !quiet {
        tee = tee.with(if json { ReporterSink::json() } else { ReporterSink::human() });
    }
    if let Some(path) = trace {
        tee = tee.with(if append { FileSink::append(path)? } else { FileSink::create(path)? });
    }
    let tel = if tee.is_empty() && live.is_none() {
        Telemetry::disabled()
    } else {
        Telemetry::build(Box::new(tee), live)
    };
    set_global(tel.clone());
    Ok(tel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_never_invokes_payloads() {
        let tel = Telemetry::disabled();
        let _span = tel.span("dead");
        tel.event("never", || unreachable!("payload built on disabled handle"));
        tel.report(|| unreachable!("report built on disabled handle"));
        tel.count("c", 1);
        tel.observe("h", 1.0);
        tel.flush();
    }

    #[test]
    fn spans_nest_and_parent_on_one_thread() {
        let sink = VecSink::new();
        let tel = Telemetry::new(sink.clone());
        {
            let outer = tel.span("outer");
            let outer_id = outer.id().unwrap();
            {
                let inner = tel.span("inner");
                assert_ne!(inner.id(), outer.id());
                tel.event("tick", || json!({ "n": 1u64 }));
            }
            let _sibling = tel.span("sibling");
            drop(outer);
            let _ = outer_id;
        }
        let recs = sink.records();
        let parent_of = |name: &str| {
            recs.iter()
                .find_map(|r| match r {
                    Record::SpanStart { name: n, parent, .. } if n == name => Some(*parent),
                    _ => None,
                })
                .unwrap()
        };
        let id_of = |name: &str| {
            recs.iter()
                .find_map(|r| match r {
                    Record::SpanStart { name: n, id, .. } if n == name => Some(*id),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(parent_of("outer"), None);
        assert_eq!(parent_of("inner"), Some(id_of("outer")));
        assert_eq!(parent_of("sibling"), Some(id_of("outer")));
        // The event attributes to the innermost open span at emission time.
        let ev_span = recs
            .iter()
            .find_map(|r| match r {
                Record::Event { name, span, .. } if name == "tick" => Some(*span),
                _ => None,
            })
            .unwrap();
        assert_eq!(ev_span, Some(id_of("inner")));
        // Every start has a matching end with the same id and name.
        for r in &recs {
            if let Record::SpanStart { id, name, .. } = r {
                assert!(recs.iter().any(|e| matches!(
                    e,
                    Record::SpanEnd { id: eid, name: en, .. } if eid == id && en == name
                )));
            }
        }
    }

    #[test]
    fn spans_on_different_threads_do_not_adopt_each_other() {
        let sink = VecSink::new();
        let tel = Telemetry::new(sink.clone());
        let _outer = tel.span("outer");
        let tel2 = tel.clone();
        std::thread::spawn(move || {
            let _worker = tel2.span("worker");
        })
        .join()
        .unwrap();
        let parent = sink
            .records()
            .iter()
            .find_map(|r| match r {
                Record::SpanStart { name, parent, .. } if name == "worker" => Some(*parent),
                _ => None,
            })
            .unwrap();
        assert_eq!(parent, None, "cross-thread span must not parent to outer");
    }

    #[test]
    fn flush_snapshots_counters_and_histograms() {
        let sink = VecSink::new();
        let tel = Telemetry::new(sink.clone());
        tel.count("sa.accepted", 3);
        tel.count("sa.accepted", 2);
        tel.observe("measure.us", 100.0);
        tel.observe("measure.us", 200.0);
        tel.flush();
        let recs = sink.records();
        assert!(recs
            .iter()
            .any(|r| matches!(r, Record::Counter { name, value: 5 } if name == "sa.accepted")));
        let hist_count = recs
            .iter()
            .find_map(|r| match r {
                Record::Histogram { name, hist } if name == "measure.us" => Some(hist.count()),
                _ => None,
            })
            .unwrap();
        assert_eq!(hist_count, 2);
    }

    #[test]
    fn attached_registry_mirrors_counts_and_observes_without_changing_records() {
        let reg = Arc::new(MetricsRegistry::new());
        let plain_sink = VecSink::new();
        let live_sink = VecSink::new();
        let plain = Telemetry::new(plain_sink.clone());
        let live = Telemetry::with_registry(live_sink.clone(), Arc::clone(&reg));
        for tel in [&plain, &live] {
            tel.count("c", 4);
            tel.observe("h", 10.0);
            tel.gauge("g", 2.0);
            tel.gauge_add("g", 0.5);
            tel.set_label("l", "v");
            tel.flush();
        }
        // Live metrics landed in the registry...
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), 4);
        assert_eq!(snap.histograms["h"].count(), 1);
        assert!((snap.gauge("g") - 2.5).abs() < 1e-12);
        assert_eq!(snap.labels["l"], "v");
        // ...and the record streams are identical: gauges/labels are
        // live-only, and mirroring adds no records.
        let names =
            |s: &VecSink| -> Vec<String> { s.records().iter().map(|r| format!("{r:?}")).collect() };
        assert_eq!(names(&plain_sink), names(&live_sink));
    }

    #[test]
    fn gauge_and_label_are_noops_without_registry() {
        let sink = VecSink::new();
        let tel = Telemetry::new(sink.clone());
        tel.gauge("g", 1.0);
        tel.set_label("l", "v");
        assert!(tel.live_registry().is_none());
        let disabled = Telemetry::disabled();
        disabled.gauge("g", 1.0);
        disabled.gauge_add("g", 1.0);
        disabled.set_label("l", "v");
    }

    #[test]
    fn global_defaults_to_disabled_and_round_trips() {
        // Note: tests in this binary run in parallel; this test owns the
        // global slot only briefly and restores it.
        let sink = VecSink::new();
        set_global(Telemetry::new(sink.clone()));
        assert!(global().is_enabled());
        global().event("probe", || json!({}));
        set_global(Telemetry::disabled());
        assert!(!global().is_enabled());
        assert!(sink.records().iter().any(|r| r.name() == "probe"));
    }
}

//! Live, thread-safe metrics shared between publishers (executor workers,
//! the robust measurer, tuning loops) and observers (the snapshot writer,
//! `aaltune top`).
//!
//! The trace pipeline in [`crate::Telemetry`] is *post-hoc*: counters and
//! histograms only reach the sink at flush time, so nothing can watch a run
//! while it executes. A [`MetricsRegistry`] is the live complement: every
//! update lands in shared memory immediately, and [`MetricsRegistry::snapshot`]
//! produces a consistent, serializable [`MetricsSnapshot`] at any moment
//! without stopping publishers.
//!
//! Publisher cost is kept near zero:
//!
//! * counters are `Arc<AtomicU64>` — one `fetch_add` after a read-locked
//!   name lookup, and hot paths can hoist the lookup out entirely by
//!   holding a [`CounterHandle`];
//! * gauges store `f64` bits in an `AtomicU64` (set is a single store;
//!   add is a CAS loop that virtually never spins in practice);
//! * histograms reuse the mergeable log-scale [`Histogram`] under
//!   name-sharded mutexes, so two workers observing different metrics
//!   almost never contend on the same lock.
//!
//! The registry is deliberately *not* part of the trace wire format: live
//! metrics are a lossy, restart-scoped view, while the trace is the durable
//! record. Attaching a registry to a [`crate::Telemetry`] handle must never
//! change what the trace (or any tuning artifact) contains — that is the
//! determinism constraint the snapshot layer is built around.

use crate::metrics::Histogram;
use crate::sync::{lock_or_recover, read_or_recover, write_or_recover};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Version of the `metrics.snapshot.json` schema written by
/// [`MetricsSnapshot`]. Bump when a field changes incompatibly; consumers
/// (`aaltune top`, the run registry) warn on versions newer than they know.
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// Number of independent histogram shards. Shard choice is by name hash,
/// so distinct metrics contend only on an 1-in-8 collision.
const HIST_SHARDS: usize = 8;

/// A pre-resolved counter: one atomic `fetch_add` per increment, no name
/// lookup. Obtain via [`MetricsRegistry::counter`] and hold it across a
/// hot loop.
#[derive(Clone, Debug)]
pub struct CounterHandle(Arc<AtomicU64>);

impl CounterHandle {
    /// Adds `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A pre-resolved gauge storing an `f64` as atomic bits.
#[derive(Clone, Debug)]
pub struct GaugeHandle(Arc<AtomicU64>);

impl GaugeHandle {
    /// Sets the gauge to `value`.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative) to the gauge.
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Thread-safe live metrics: atomic counters and gauges, sharded log-scale
/// histograms, and small string labels (e.g. the task currently tuning).
///
/// Cloning the `Arc` this usually lives in is the intended sharing model;
/// the struct itself is `Sync` and all methods take `&self`.
pub struct MetricsRegistry {
    start: Instant,
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    labels: RwLock<BTreeMap<String, String>>,
    hist_shards: Vec<Mutex<BTreeMap<String, Histogram>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry; uptime counts from this call.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry {
            start: Instant::now(),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            labels: RwLock::new(BTreeMap::new()),
            hist_shards: (0..HIST_SHARDS).map(|_| Mutex::new(BTreeMap::new())).collect(),
        }
    }

    /// Microseconds since the registry was created.
    #[must_use]
    pub fn uptime_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn cell(
        map: &RwLock<BTreeMap<String, Arc<AtomicU64>>>,
        name: &str,
        init: u64,
    ) -> Arc<AtomicU64> {
        if let Some(cell) = read_or_recover(map).get(name) {
            return Arc::clone(cell);
        }
        let mut w = write_or_recover(map);
        Arc::clone(w.entry(name.to_string()).or_insert_with(|| Arc::new(AtomicU64::new(init))))
    }

    /// Resolves (creating if needed) the counter `name` into a handle the
    /// caller can increment without further lookups.
    #[must_use]
    pub fn counter(&self, name: &str) -> CounterHandle {
        CounterHandle(Self::cell(&self.counters, name, 0))
    }

    /// Adds `delta` to counter `name` (lookup + `fetch_add`).
    pub fn inc(&self, name: &str, delta: u64) {
        self.counter(name).add(delta);
    }

    /// Resolves (creating if needed) the gauge `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> GaugeHandle {
        GaugeHandle(Self::cell(&self.gauges, name, 0f64.to_bits()))
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.gauge(name).set(value);
    }

    /// Adds `delta` (may be negative) to gauge `name`.
    pub fn gauge_add(&self, name: &str, delta: f64) {
        self.gauge(name).add(delta);
    }

    fn shard_of(name: &str) -> usize {
        // FNV-1a: tiny, deterministic, and good enough to spread names.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % HIST_SHARDS as u64) as usize
    }

    /// Records `value` into the live histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        let shard = &self.hist_shards[Self::shard_of(name)];
        lock_or_recover(shard).entry(name.to_string()).or_default().observe(value);
    }

    /// Sets the string label `name` (e.g. `task.current`).
    pub fn set_label(&self, name: &str, value: &str) {
        write_or_recover(&self.labels).insert(name.to_string(), value.to_string());
    }

    /// Produces a consistent point-in-time view of every registered metric.
    ///
    /// Consistency is per-family (counters are snapshotted together, then
    /// gauges, then histograms) — cross-family skew of a few microseconds is
    /// acceptable for a live dashboard and keeps publishers unblocked.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = read_or_recover(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = read_or_recover(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let labels = read_or_recover(&self.labels).clone();
        let mut histograms = BTreeMap::new();
        for shard in &self.hist_shards {
            for (k, h) in lock_or_recover(shard).iter() {
                histograms.insert(k.clone(), h.clone());
            }
        }
        MetricsSnapshot {
            schema_version: SNAPSHOT_SCHEMA_VERSION,
            uptime_us: self.uptime_us(),
            unix_ms: unix_ms_now(),
            counters,
            gauges,
            labels,
            histograms,
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").field("uptime_us", &self.uptime_us()).finish()
    }
}

/// Wall-clock milliseconds since the Unix epoch (0 if the clock is before
/// the epoch, which only happens on badly misconfigured hosts).
#[must_use]
pub fn unix_ms_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// A serializable point-in-time view of a [`MetricsRegistry`], written to
/// `metrics.snapshot.json` in the run directory and consumed by
/// `aaltune top` and the run registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// [`SNAPSHOT_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Microseconds since the publishing process created its registry.
    pub uptime_us: u64,
    /// Wall-clock ms since the Unix epoch at snapshot time — the staleness
    /// signal (`t_us`/`uptime_us` are process-relative and can't detect a
    /// crashed publisher).
    pub unix_ms: u64,
    /// Monotonic counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Small string labels by name (e.g. `task.current`).
    pub labels: BTreeMap<String, String>,
    /// Live histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Counter value by name, 0 when absent.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name, 0.0 when absent.
    #[must_use]
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// True when nothing has been registered yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.labels.is_empty()
            && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let reg = MetricsRegistry::new();
        reg.inc("a", 2);
        reg.inc("a", 3);
        reg.inc("b", 1);
        let handle = reg.counter("a");
        handle.add(5);
        assert_eq!(handle.get(), 10);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), 10);
        assert_eq!(snap.counter("b"), 1);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.schema_version, SNAPSHOT_SCHEMA_VERSION);
        assert!(snap.unix_ms > 0);
    }

    #[test]
    fn gauges_set_add_and_go_negative() {
        let reg = MetricsRegistry::new();
        reg.gauge_set("depth", 4.0);
        reg.gauge_add("depth", -1.5);
        assert!((reg.gauge("depth").get() - 2.5).abs() < 1e-12);
        reg.gauge_add("drift", -3.0);
        assert!((reg.snapshot().gauge("drift") + 3.0).abs() < 1e-12);
        assert_eq!(reg.snapshot().gauge("missing"), 0.0);
    }

    #[test]
    fn histograms_shard_by_name_and_snapshot_merges_shards() {
        let reg = MetricsRegistry::new();
        for i in 1..=100 {
            reg.observe("lat.a", f64::from(i));
            reg.observe("lat.b", f64::from(i) * 10.0);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.histograms["lat.a"].count(), 100);
        assert_eq!(snap.histograms["lat.b"].count(), 100);
        assert!(snap.histograms["lat.b"].quantile(0.5) > snap.histograms["lat.a"].quantile(0.5));
    }

    #[test]
    fn labels_round_trip() {
        let reg = MetricsRegistry::new();
        reg.set_label("task.current", "m.T3");
        reg.set_label("task.current", "m.T4");
        assert_eq!(reg.snapshot().labels["task.current"], "m.T4");
    }

    #[test]
    fn snapshot_serializes_and_parses() {
        let reg = MetricsRegistry::new();
        reg.inc("trials", 7);
        reg.gauge_set("busy", 2.0);
        reg.observe("us", 123.0);
        reg.set_label("task.current", "t");
        let snap = reg.snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
        assert!(!back.is_empty());
        assert!(MetricsSnapshot {
            schema_version: SNAPSHOT_SCHEMA_VERSION,
            uptime_us: 0,
            unix_ms: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            labels: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
        .is_empty());
    }

    #[test]
    fn concurrent_increments_sum_exactly() {
        let reg = Arc::new(MetricsRegistry::new());
        let threads = 8;
        let per = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let c = reg.counter("hot");
                    for _ in 0..per {
                        c.add(1);
                        reg.gauge_add("g", 1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.snapshot().counter("hot"), threads * per);
        #[allow(clippy::cast_precision_loss)]
        let expect = (threads * per) as f64;
        assert!((reg.snapshot().gauge("g") - expect).abs() < 1e-6);
    }
}

//! Probe-overhead benchmarks: the acceptance bar is that a disabled
//! (default) telemetry handle costs effectively nothing in the tuning hot
//! loop, and an enabled `VecSink` handle stays cheap relative to a single
//! simulated measurement (~tens of µs).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use telemetry::{json, Telemetry, VecSink};

fn bench_overhead(c: &mut Criterion) {
    let disabled = Telemetry::disabled();
    c.bench_function("disabled_event", |b| {
        b.iter(|| {
            disabled.event("trial", || json!({"trial": 1u64, "gflops": 100.0}));
            black_box(());
        });
    });
    c.bench_function("disabled_span", |b| {
        b.iter(|| {
            let g = disabled.span("measure");
            black_box(g.id());
        });
    });
    c.bench_function("disabled_observe", |b| {
        b.iter(|| disabled.observe("measure.us", black_box(123.0)));
    });

    let enabled = Telemetry::new(VecSink::new());
    c.bench_function("enabled_event_vecsink", |b| {
        b.iter(|| enabled.event("trial", || json!({"trial": 1u64, "gflops": 100.0})));
    });
    c.bench_function("enabled_span_vecsink", |b| {
        b.iter(|| {
            let g = enabled.span("measure");
            black_box(g.id());
        });
    });
    c.bench_function("enabled_observe", |b| {
        b.iter(|| enabled.observe("measure.us", black_box(123.0)));
    });
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);

//! Property tests for the live metrics layer: concurrent publishers must
//! never lose an increment, and the Prometheus exposition must round-trip
//! every registered metric name and value through the validating parser.

use proptest::prelude::*;
use std::sync::Arc;
use telemetry::export::{parse_prometheus, sanitize_name, to_prometheus};
use telemetry::MetricsRegistry;

/// Name pool shaped like real internal metrics: dotted segments, digits,
/// and bytes that force sanitization (`/`, space, `-`).
const NAME_POOL: &[&str] = &[
    "tune.trials",
    "measure.retry",
    "exec.queue.build.depth.now",
    "exec.device.0.busy_us",
    "task.m.T1/relu best",
    "9starts.with-digit",
    "snapshot.write_errors",
    "a",
];

fn arb_names() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(0usize..NAME_POOL.len(), 1..4).prop_map(|idxs| {
        let mut names: Vec<String> = idxs.iter().map(|&i| NAME_POOL[i].to_string()).collect();
        names.sort();
        names.dedup();
        names
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// N threads each adding `per_thread` to a shared set of counters sum
    /// exactly — no lost updates, whatever the thread/name interleaving.
    #[test]
    fn concurrent_increments_sum_exactly(
        threads in 1usize..8,
        per_thread in 1u64..400,
        names in arb_names(),
    ) {
        let reg = Arc::new(MetricsRegistry::new());
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let names = names.clone();
                std::thread::spawn(move || {
                    // Mix cached handles and by-name increments: both paths
                    // must land on the same atomic.
                    let handle = reg.counter(&names[0]);
                    for i in 0..per_thread {
                        if i % 2 == 0 {
                            reg.inc(&names[i as usize % names.len()], 1);
                        } else {
                            handle.add(1);
                        }
                        reg.gauge_add("live.gauge", 1.0);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let snap = reg.snapshot();
        let total: u64 = names.iter().map(|n| snap.counter(n)).sum();
        prop_assert_eq!(total, threads as u64 * per_thread);
        #[allow(clippy::cast_precision_loss)]
        let expect = (threads as u64 * per_thread) as f64;
        prop_assert!((snap.gauge("live.gauge") - expect).abs() < 1e-6);
    }

    /// Every registered counter and gauge survives export → parse with its
    /// exact value, and every histogram surfaces its count; the exposition
    /// itself always validates.
    #[test]
    fn prometheus_export_round_trips_every_metric(
        counter_names in arb_names(),
        counter_vals in proptest::collection::vec(0u64..1_000_000, 8),
        gauge_names in arb_names(),
        gauge_vals in proptest::collection::vec(-1e6f64..1e6, 8),
        hist_obs in proptest::collection::vec(1e-3f64..1e6, 0..20),
    ) {
        let reg = MetricsRegistry::new();
        for (i, name) in counter_names.iter().enumerate() {
            reg.inc(name, counter_vals[i]);
        }
        for (i, name) in gauge_names.iter().enumerate() {
            // Suffix keeps gauge names from colliding with counter names —
            // the collision case is covered separately in export.rs tests.
            reg.gauge_set(&format!("{name}.g"), gauge_vals[i]);
        }
        for v in &hist_obs {
            reg.observe("props.hist", *v);
        }
        let snap = reg.snapshot();
        let text = to_prometheus(&snap);
        let samples = parse_prometheus(&text).unwrap();
        let find = |n: &str| samples.iter().find(|s| s.name == n && s.labels.is_empty());

        // Sanitization can still collide distinct internal names (the
        // exporter keeps the first claimant), so assert per exported name.
        let mut claimed = std::collections::BTreeSet::new();
        for (name, v) in &snap.counters {
            let exported = sanitize_name(name);
            if claimed.insert(exported.clone()) {
                let sample = find(&exported).unwrap();
                #[allow(clippy::cast_precision_loss)]
                let want = *v as f64;
                prop_assert!((sample.value - want).abs() < 1e-9, "{} -> {}", name, exported);
            }
        }
        for (name, v) in &snap.gauges {
            let exported = sanitize_name(name);
            if claimed.insert(exported.clone()) {
                let sample = find(&exported).unwrap();
                prop_assert!(
                    (sample.value - v).abs() <= 1e-9 * v.abs().max(1.0),
                    "{} -> {}: {} vs {}",
                    name, exported, sample.value, v
                );
            }
        }
        if !hist_obs.is_empty() {
            let count = find("aaltune_props_hist_count").unwrap();
            #[allow(clippy::cast_precision_loss)]
            let want = hist_obs.len() as f64;
            prop_assert!((count.value - want).abs() < 1e-9);
        }
    }
}

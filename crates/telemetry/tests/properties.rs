//! Property-based invariants for the telemetry metrics layer: histogram
//! merge must behave like multiset union so per-thread aggregation can
//! combine partial histograms in any grouping and order.

use proptest::prelude::*;
use telemetry::Histogram;

/// Observations spanning many buckets, including underflow cases.
fn arb_obs() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        prop_oneof![
            1e-6f64..1e9,   // positive range across ~50 doublings
            Just(0.0),      // underflow bucket
            Just(-1.0),     // underflow bucket
            Just(f64::NAN), // underflow bucket
        ],
        0..40,
    )
}

fn hist_of(obs: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in obs {
        h.observe(v);
    }
    h
}

/// Everything quantiles and tables are computed from.
fn fingerprint(h: &Histogram) -> (Vec<(i32, u64)>, u64, f64) {
    (h.buckets().to_vec(), h.count(), h.sum())
}

fn close(a: &Histogram, b: &Histogram) -> bool {
    let (ab, ac, asum) = fingerprint(a);
    let (bb, bc, bsum) = fingerprint(b);
    ab == bb && ac == bc && (asum - bsum).abs() <= 1e-9 * asum.abs().max(1.0)
}

proptest! {
    /// (a ∪ b) ∪ c == a ∪ (b ∪ c)
    #[test]
    fn merge_is_associative(xs in arb_obs(), ys in arb_obs(), zs in arb_obs()) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        prop_assert!(close(&left, &right));
    }

    /// a ∪ b == b ∪ a
    #[test]
    fn merge_is_commutative(xs in arb_obs(), ys in arb_obs()) {
        let (a, b) = (hist_of(&xs), hist_of(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert!(close(&ab, &ba));
    }

    /// Observing a stream in any order, or splitting it into per-thread
    /// shards and merging, lands on the same distribution.
    #[test]
    fn merge_is_order_and_sharding_independent(xs in arb_obs(), split in 0usize..40) {
        let whole = hist_of(&xs);

        let cut = split.min(xs.len());
        let mut sharded = hist_of(&xs[..cut]);
        sharded.merge(&hist_of(&xs[cut..]));
        prop_assert!(close(&whole, &sharded));

        let mut rev: Vec<f64> = xs.clone();
        rev.reverse();
        prop_assert!(close(&whole, &hist_of(&rev)));
    }

    /// The empty histogram is the merge identity.
    #[test]
    fn empty_is_identity(xs in arb_obs()) {
        let a = hist_of(&xs);
        let mut merged = a.clone();
        merged.merge(&Histogram::new());
        prop_assert!(close(&a, &merged));
    }

    /// Merge never loses observations and quantiles stay inside [min-bucket,
    /// max-bucket] representatives.
    #[test]
    fn merged_quantiles_are_sane(xs in arb_obs(), ys in arb_obs()) {
        let mut m = hist_of(&xs);
        m.merge(&hist_of(&ys));
        prop_assert_eq!(m.count(), (xs.len() + ys.len()) as u64);
        let p50 = m.quantile(0.5);
        let p99 = m.quantile(0.99);
        prop_assert!(p50 <= p99 || (p50 - p99).abs() < 1e-12);
    }
}

//! End-to-end crash safety: SIGKILL a chaos `tune` mid-run, resume it, and
//! require the final per-task trial log to be byte-identical to an
//! uninterrupted run with the same seed and fault stream.
//!
//! If the child happens to finish before the kill lands, the resume path
//! degrades to a completed-task read-back and the assertion still holds, so
//! the test is timing-tolerant rather than flaky.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

fn aaltune() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aaltune"))
}

fn tune_args(out: &Path) -> Vec<String> {
    [
        "tune",
        "squeezenet",
        "--task",
        "0",
        "--n-trial",
        "60",
        "--method",
        "autotvm",
        "--quiet",
        "--fault-rate",
        "0.1",
        "--fault-seed",
        "3",
        "--out",
        out.to_str().unwrap(),
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect()
}

fn task_log(base: &Path, sub: &str, run: &str) -> PathBuf {
    std::fs::read_dir(base.join(sub).join(run).join("logs"))
        .expect("logs dir exists")
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "jsonl"))
        .expect("task log exists")
}

#[test]
fn sigkill_mid_run_then_resume_matches_uninterrupted() {
    let base = std::env::temp_dir().join(format!("aaltune-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let run = "squeezenet_v1.1-autotvm-seed0";

    let status = aaltune().args(tune_args(&base.join("full"))).status().expect("spawn full run");
    assert!(status.success(), "uninterrupted run must succeed");

    // Start the same run again, wait until some trials have hit disk, then
    // kill -9 without any chance to clean up.
    let mut child = aaltune().args(tune_args(&base.join("cut"))).spawn().expect("spawn cut run");
    let logs_dir = base.join("cut").join(run).join("logs");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let bytes: u64 = std::fs::read_dir(&logs_dir)
            .into_iter()
            .flatten()
            .filter_map(Result::ok)
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum();
        if bytes > 600 || child.try_wait().expect("try_wait").is_some() || Instant::now() > deadline
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let _ = child.kill();
    let _ = child.wait();

    let run_dir = base.join("cut").join(run);
    let status = aaltune()
        .args(["tune", "--resume", run_dir.to_str().unwrap(), "--quiet"])
        .status()
        .expect("spawn resume");
    assert!(status.success(), "resume must succeed");

    let full = std::fs::read(task_log(&base, "full", run)).expect("full log");
    let cut = std::fs::read(task_log(&base, "cut", run)).expect("cut log");
    assert_eq!(full, cut, "resumed log must be byte-identical to the uninterrupted run");

    std::fs::remove_dir_all(&base).expect("cleanup");
}

//! Argument parsing and name resolution for the CLI.

use active_learning::Method;
use dnn_graph::{models, Graph};
use gpu_sim::GpuDevice;
use std::collections::BTreeMap;

/// Flags that are switches (present or absent) rather than `--key value`
/// pairs.
const BOOL_FLAGS: &[&str] =
    &["quiet", "json", "fail-on-regress", "once", "check", "no-capture-model", "repair", "wait"];

/// Parsed command line: a positional list plus `--key value` flags.
#[derive(Debug, Default)]
pub struct Cli {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    flags: BTreeMap<String, String>,
}

impl Cli {
    /// Splits `args` into positionals and flags.
    ///
    /// # Errors
    ///
    /// Returns an error string if a flag is missing its value.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut cli = Cli::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if BOOL_FLAGS.contains(&name) {
                    cli.flags.insert(name.to_string(), "true".to_string());
                    continue;
                }
                let value = it.next().ok_or_else(|| format!("missing value for --{name}"))?;
                cli.flags.insert(name.to_string(), value.clone());
            } else {
                cli.positional.push(a.clone());
            }
        }
        Ok(cli)
    }

    /// True if the switch `name` (one of [`BOOL_FLAGS`]) was given.
    #[must_use]
    pub fn flag_present(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// Typed flag lookup with default.
    ///
    /// # Errors
    ///
    /// Returns an error string if the value fails to parse.
    pub fn flag<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value for --{name}: `{v}`")),
        }
    }

    /// String flag lookup.
    #[must_use]
    pub fn flag_str(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }
}

/// Resolves a model name.
///
/// # Errors
///
/// Returns an error listing the valid names.
pub fn model_by_name(name: &str) -> Result<Graph, String> {
    match name {
        "alexnet" => Ok(models::alexnet(1)),
        "resnet18" => Ok(models::resnet18(1)),
        "resnet34" => Ok(models::resnet34(1)),
        "vgg16" => Ok(models::vgg16(1)),
        "vgg19" => Ok(models::vgg19(1)),
        "mobilenet_v1" | "mobilenet" => Ok(models::mobilenet_v1(1)),
        "squeezenet_v1.1" | "squeezenet" => Ok(models::squeezenet_v1_1(1)),
        other => Err(format!(
            "unknown model `{other}` (alexnet, resnet18, resnet34, vgg16, vgg19, \
             mobilenet_v1, squeezenet_v1.1)"
        )),
    }
}

/// Resolves a method label.
///
/// # Errors
///
/// Returns an error listing the valid labels.
pub fn method_by_name(name: &str) -> Result<Method, String> {
    match name {
        "random" => Ok(Method::Random),
        "autotvm" => Ok(Method::AutoTvm),
        "bted" => Ok(Method::Bted),
        "bted+bao" | "bao" | "ours" => Ok(Method::BtedBao),
        other => Err(format!("unknown method `{other}` (random, autotvm, bted, bted+bao)")),
    }
}

/// Resolves a device preset.
///
/// # Errors
///
/// Returns an error listing the valid names.
pub fn device_by_name(name: &str) -> Result<GpuDevice, String> {
    match name {
        "gtx1080ti" | "1080ti" => Ok(GpuDevice::gtx_1080_ti()),
        "v100" => Ok(GpuDevice::tesla_v100()),
        "jetson" | "tx2" => Ok(GpuDevice::jetson_tx2()),
        other => Err(format!("unknown device `{other}` (gtx1080ti, v100, jetson)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn parse_mixes_positionals_and_flags() {
        let cli = Cli::parse(&sv(&["tune", "mobilenet_v1", "--n-trial", "64"])).unwrap();
        assert_eq!(cli.positional, vec!["tune", "mobilenet_v1"]);
        assert_eq!(cli.flag::<usize>("n-trial", 0).unwrap(), 64);
        assert_eq!(cli.flag::<usize>("seed", 5).unwrap(), 5);
    }

    #[test]
    fn missing_flag_value_is_an_error() {
        assert!(Cli::parse(&sv(&["tune", "--seed"])).is_err());
    }

    #[test]
    fn bool_flags_take_no_value() {
        let cli = Cli::parse(&sv(&["tune", "mobilenet", "--quiet", "--seed", "3"])).unwrap();
        assert!(cli.flag_present("quiet"));
        assert!(!cli.flag_present("json"));
        assert_eq!(cli.flag::<u64>("seed", 0).unwrap(), 3);
        assert_eq!(cli.positional, vec!["tune", "mobilenet"]);
    }

    #[test]
    fn bad_flag_value_is_an_error() {
        let cli = Cli::parse(&sv(&["--seed", "abc"])).unwrap();
        assert!(cli.flag::<u64>("seed", 0).is_err());
    }

    #[test]
    fn resolvers_accept_aliases() {
        assert!(model_by_name("mobilenet").is_ok());
        assert!(model_by_name("resnet34").is_ok());
        assert!(model_by_name("vgg19").is_ok());
        assert!(model_by_name("nope").is_err());
        assert_eq!(method_by_name("ours").unwrap(), Method::BtedBao);
        assert!(method_by_name("rl").is_err());
        assert_eq!(device_by_name("v100").unwrap().name, "Tesla V100");
        assert!(device_by_name("tpu").is_err());
    }
}

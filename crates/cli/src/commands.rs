//! CLI subcommands.

use crate::opts::{device_by_name, method_by_name, model_by_name, Cli};
use active_learning::{
    tune_model, tune_task, RunDir, RunManifest, TuneOptions, MANIFEST_SCHEMA_VERSION,
};
use dnn_graph::task::extract_tasks;
use gpu_sim::SimMeasurer;
use schedule::template::space_for_task;
use std::path::{Path, PathBuf};
use trace_analysis::{
    compare_logs, compare_run_dirs, render_report, CompareOptions, LoadedRun, Registry, RunEntry,
    Verdict,
};

/// Exit code for a gated regression (`compare --fail-on-regress`): distinct
/// from 1, which `main` uses for usage/runtime errors.
pub const EXIT_REGRESSED: u8 = 2;

/// Usage text printed on errors.
pub const USAGE: &str = "\
usage:
  aaltune tasks   <model>
  aaltune dot     <model> [--fused true]
  aaltune devices
  aaltune tune    <model> [--task N] [--method M] [--n-trial N] [--seed S]
                          [--device D] [--log FILE] [--out DIR]
                          [--trace FILE] [--quiet] [--json]
  aaltune deploy  <model> [--method M] [--n-trial N] [--runs R] [--seed S]
                          [--device D] [--trace FILE] [--quiet] [--json]
  aaltune trace   <trace.jsonl>
  aaltune runs    [DIR] [--model M] [--method M] [--kind K]
  aaltune compare <BASE_RUN> <CAND_RUN> [--alpha A] [--resamples N]
                          [--min-effect PCT] [--boot-seed S] [--fail-on-regress]
  aaltune report  <RUN> [BASELINE] [--html FILE] [--alpha A] [--resamples N]
                          [--min-effect PCT] [--boot-seed S]
models:  alexnet resnet18 resnet34 vgg16 vgg19 mobilenet_v1 squeezenet_v1.1
methods: random autotvm bted bted+bao (default)
devices: gtx1080ti (default) v100 jetson
tracing: --trace writes a JSONL telemetry trace (`aaltune trace` summarizes
         it); --out creates a per-run results dir with manifest, logs, and
         trace, and registers the run in DIR/index.jsonl
analysis: `runs` lists the registry (DIR defaults to ./runs); `compare`
         bootstraps per-task deltas between two run dirs and exits 2 on a
         gated regression; `report` writes a self-contained HTML report";

/// Parses and runs one invocation, returning the process exit code
/// (0 = success, [`EXIT_REGRESSED`] = gated regression).
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, names, or values.
pub fn dispatch(args: &[String]) -> Result<u8, String> {
    let cli = Cli::parse(args)?;
    match cli.positional.first().map(String::as_str) {
        Some("tasks") => tasks(&cli).map(|()| 0),
        Some("dot") => dot(&cli).map(|()| 0),
        Some("devices") => {
            devices();
            Ok(0)
        }
        Some("tune") => tune(&cli).map(|()| 0),
        Some("deploy") => deploy(&cli).map(|()| 0),
        Some("trace") => trace(&cli).map(|()| 0),
        Some("runs") => runs(&cli).map(|()| 0),
        Some("compare") => compare(&cli),
        Some("report") => report(&cli).map(|()| 0),
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("no command given".to_string()),
    }
}

/// Installs the global telemetry pipeline from `--trace`/`--quiet`/`--json`,
/// preferring an explicit `--trace` path over the run directory's default.
fn install_telemetry(cli: &Cli, run_dir: Option<&RunDir>) -> Result<telemetry::Telemetry, String> {
    let trace: Option<PathBuf> =
        cli.flag_str("trace").map(PathBuf::from).or_else(|| run_dir.map(RunDir::trace_path));
    telemetry::install_pipeline(
        trace.as_deref(),
        cli.flag_present("quiet"),
        cli.flag_present("json"),
    )
    .map_err(|e| format!("cannot create trace file: {e}"))
}

/// Flushes counters/histograms into the trace and uninstalls the pipeline.
fn finish_telemetry(tel: &telemetry::Telemetry) {
    tel.flush();
    telemetry::set_global(telemetry::Telemetry::disabled());
}

fn model_arg(cli: &Cli) -> Result<dnn_graph::Graph, String> {
    let name = cli.positional.get(1).ok_or("missing <model> argument")?;
    model_by_name(name)
}

fn options(cli: &Cli) -> Result<TuneOptions, String> {
    let n_trial: usize = cli.flag("n-trial", 512)?;
    Ok(TuneOptions {
        n_trial,
        early_stopping: 400.min(n_trial),
        seed: cli.flag("seed", 0)?,
        ..TuneOptions::default()
    })
}

fn measurer(cli: &Cli) -> Result<SimMeasurer, String> {
    let device = device_by_name(cli.flag_str("device").unwrap_or("gtx1080ti"))?;
    Ok(SimMeasurer::new(device))
}

fn tasks(cli: &Cli) -> Result<(), String> {
    let model = model_arg(cli)?;
    let tasks = extract_tasks(&model);
    println!("{}: {} tuning tasks", model.name, tasks.len());
    for t in &tasks {
        let space = space_for_task(t);
        println!("  {:<18} {:>14} configs   {}", t.name, space.len(), t.workload);
    }
    Ok(())
}

fn dot(cli: &Cli) -> Result<(), String> {
    let model = model_arg(cli)?;
    let fused: bool = cli.flag("fused", false)?;
    if fused {
        let groups = dnn_graph::fusion::fuse(&model);
        print!("{}", dnn_graph::dot::to_dot_fused(&model, &groups));
    } else {
        print!("{}", dnn_graph::dot::to_dot(&model));
    }
    Ok(())
}

fn devices() {
    for d in [
        gpu_sim::GpuDevice::gtx_1080_ti(),
        gpu_sim::GpuDevice::tesla_v100(),
        gpu_sim::GpuDevice::jetson_tx2(),
    ] {
        println!(
            "{:<14} {:>3} SMs  {:>6.1} GB/s  {:>5.1} TFLOPS",
            d.name,
            d.num_sms,
            d.dram_bw_gbps,
            d.peak_flops() / 1e12
        );
    }
}

fn tune(cli: &Cli) -> Result<(), String> {
    let started = std::time::Instant::now();
    let model = model_arg(cli)?;
    let method = method_by_name(cli.flag_str("method").unwrap_or("bted+bao"))?;
    let opts = options(cli)?;
    let m = measurer(cli)?;

    // --out DIR: self-describing per-run results directory.
    let run_dir = cli
        .flag_str("out")
        .map(|base| {
            let name = format!("{}-{method}-seed{}", model.name, opts.seed);
            RunDir::create(Path::new(base).join(name))
                .map_err(|e| format!("cannot create run directory: {e}"))
        })
        .transpose()?;
    let tel = install_telemetry(cli, run_dir.as_ref())?;

    let tasks = extract_tasks(&model);
    let selected: Vec<usize> = match cli.flag_str("task") {
        Some(s) => {
            let i: usize = s.parse().map_err(|_| format!("invalid --task index `{s}`"))?;
            if i >= tasks.len() {
                finish_telemetry(&tel);
                return Err(format!("--task {i} out of range (model has {})", tasks.len()));
            }
            vec![i]
        }
        None => (0..tasks.len()).collect(),
    };
    let mut logs = Vec::new();
    for i in selected {
        let r = tune_task(&tasks[i], &m, method, &opts);
        tel.report(|| {
            format!(
                "{:<18} {:>9.1} GFLOPS in {:>4} measurements ({method})",
                r.task_name, r.best_gflops, r.num_measured
            )
        });
        logs.push(r.log);
    }

    if let Some(dir) = &run_dir {
        let manifest = RunManifest {
            model: model.name.clone(),
            method: method.to_string(),
            tasks: logs.iter().map(|l| l.task_name.clone()).collect(),
            seed: opts.seed,
            options: opts,
            schema_version: Some(MANIFEST_SCHEMA_VERSION),
            git_describe: trace_analysis::git_describe(Path::new(".")),
            wall_time_s: Some(started.elapsed().as_secs_f64()),
        };
        dir.write_manifest(&manifest).map_err(|e| format!("cannot write manifest: {e}"))?;
        for log in &logs {
            dir.write_log(log).map_err(|e| format!("cannot write log: {e}"))?;
        }
        // Register the run in the shared index so `aaltune runs` /
        // `compare` / `report` can find it later.
        let base = cli.flag_str("out").expect("run_dir implies --out");
        let entry = RunEntry::from_run_dir(dir.path())?;
        Registry::at(base)
            .append(&entry)
            .map_err(|e| format!("cannot update run registry: {e}"))?;
        tel.report(|| format!("wrote run artifacts to {}", dir.path().display()));
    }
    if let Some(path) = cli.flag_str("log") {
        let mut f =
            std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        for log in &logs {
            log.write_jsonl(&mut f).map_err(|e| format!("write failed: {e}"))?;
        }
        tel.report(|| format!("wrote {} logs to {path}", logs.len()));
    }
    finish_telemetry(&tel);
    Ok(())
}

fn deploy(cli: &Cli) -> Result<(), String> {
    let model = model_arg(cli)?;
    let method = method_by_name(cli.flag_str("method").unwrap_or("bted+bao"))?;
    let opts = options(cli)?;
    let runs: usize = cli.flag("runs", 600)?;
    let m = measurer(cli)?;
    let tel = install_telemetry(cli, None)?;
    let r = tune_model(&model, &m, method, &opts, runs);
    tel.report(|| {
        format!(
            "{} ({method}): latency {:.4} ms  variance {:.4}  min {:.4}  max {:.4}  \
             ({} measurements)",
            r.model_name,
            r.latency.mean_ms,
            r.latency.variance,
            r.latency.min_ms,
            r.latency.max_ms,
            r.total_measurements
        )
    });
    finish_telemetry(&tel);
    Ok(())
}

fn trace(cli: &Cli) -> Result<(), String> {
    let path = cli.positional.get(1).ok_or("missing <trace.jsonl> argument")?;
    let f = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let summary = telemetry::TraceSummary::from_reader(std::io::BufReader::new(f))
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    print!("{}", summary.render());
    Ok(())
}

fn runs(cli: &Cli) -> Result<(), String> {
    let root = cli.positional.get(1).map_or("runs", String::as_str);
    let reg = Registry::at(root);
    let idx = reg.load().map_err(|e| format!("cannot read {}: {e}", reg.index_path().display()))?;
    let filtered =
        idx.filtered(cli.flag_str("model"), cli.flag_str("method"), cli.flag_str("kind"));
    if filtered.is_empty() {
        println!("no matching runs in {}", reg.index_path().display());
    } else {
        print!("{}", idx.render(&filtered));
    }
    Ok(())
}

fn compare_options(cli: &Cli) -> Result<CompareOptions, String> {
    let defaults = CompareOptions::default();
    Ok(CompareOptions {
        alpha: cli.flag("alpha", defaults.alpha)?,
        resamples: cli.flag("resamples", defaults.resamples)?,
        min_effect_pct: cli.flag("min-effect", defaults.min_effect_pct)?,
        seed: cli.flag("boot-seed", defaults.seed)?,
    })
}

fn compare(cli: &Cli) -> Result<u8, String> {
    let base = cli.positional.get(1).ok_or("missing <BASE_RUN> directory")?;
    let cand = cli.positional.get(2).ok_or("missing <CAND_RUN> directory")?;
    let cmp = compare_run_dirs(Path::new(base), Path::new(cand), compare_options(cli)?)?;
    print!("{}", cmp.render());
    if cli.flag_present("fail-on-regress") && cmp.has_regressions() {
        eprintln!("FAIL: {} task(s) regressed", cmp.count(Verdict::Regressed));
        return Ok(EXIT_REGRESSED);
    }
    Ok(0)
}

fn report(cli: &Cli) -> Result<(), String> {
    let run_path = cli.positional.get(1).ok_or("missing <RUN> directory")?;
    let run = LoadedRun::load(Path::new(run_path))?;
    let baseline = cli.positional.get(2).map(|p| LoadedRun::load(Path::new(p))).transpose()?;
    let comparison = baseline
        .as_ref()
        .map(|b| -> Result<_, String> {
            Ok(compare_logs(
                b.id.clone(),
                run.id.clone(),
                &b.logs,
                &run.logs,
                compare_options(cli)?,
                Vec::new(),
            ))
        })
        .transpose()?;
    let html = render_report(&run, baseline.as_ref(), comparison.as_ref());
    let out =
        cli.flag_str("html").map_or_else(|| Path::new(run_path).join("report.html"), PathBuf::from);
    std::fs::write(&out, html).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!("wrote {}", out.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn unknown_command_errors() {
        assert!(dispatch(&sv(&["frobnicate"])).is_err());
        assert!(dispatch(&sv(&[])).is_err());
    }

    #[test]
    fn tasks_lists_mobilenet() {
        dispatch(&sv(&["tasks", "mobilenet_v1"])).unwrap();
    }

    #[test]
    fn dot_export_runs() {
        dispatch(&sv(&["dot", "alexnet"])).unwrap();
        dispatch(&sv(&["dot", "resnet18", "--fused", "true"])).unwrap();
    }

    #[test]
    fn devices_prints() {
        dispatch(&sv(&["devices"])).unwrap();
    }

    #[test]
    fn tune_single_task_smoke() {
        dispatch(&sv(&[
            "tune",
            "squeezenet",
            "--task",
            "0",
            "--n-trial",
            "40",
            "--method",
            "autotvm",
        ]))
        .unwrap();
    }

    #[test]
    fn tune_task_out_of_range_errors() {
        let e = dispatch(&sv(&["tune", "alexnet", "--task", "99"])).unwrap_err();
        assert!(e.contains("out of range"));
    }

    #[test]
    fn tune_writes_run_dir_and_trace_summarizes() {
        let base = std::env::temp_dir().join(format!("aaltune-cli-run-{}", std::process::id()));
        dispatch(&sv(&[
            "tune",
            "squeezenet",
            "--task",
            "0",
            "--n-trial",
            "40",
            "--method",
            "autotvm",
            "--quiet",
            "--out",
            base.to_str().unwrap(),
        ]))
        .unwrap();
        let run = base.join("squeezenet_v1.1-autotvm-seed0");
        assert!(run.join("manifest.json").is_file());
        assert!(run.join("trace.jsonl").is_file());
        assert!(base.join("index.jsonl").is_file(), "tune --out must register the run");
        let logs: Vec<_> = std::fs::read_dir(run.join("logs")).unwrap().collect();
        assert_eq!(logs.len(), 1);
        // The recorded trace must summarize via the `trace` subcommand.
        dispatch(&sv(&["trace", run.join("trace.jsonl").to_str().unwrap()])).unwrap();
        // The registry must list it.
        dispatch(&sv(&["runs", base.to_str().unwrap()])).unwrap();
        dispatch(&sv(&["runs", base.to_str().unwrap(), "--model", "squeezenet"])).unwrap();
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn trace_on_missing_file_errors() {
        assert!(dispatch(&sv(&["trace", "/nonexistent/trace.jsonl"])).is_err());
    }

    #[test]
    fn compare_and_report_on_identical_seeds_pass_the_gate() {
        let base = std::env::temp_dir().join(format!("aaltune-cli-compare-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        for sub in ["a", "b"] {
            dispatch(&sv(&[
                "tune",
                "squeezenet",
                "--task",
                "0",
                "--n-trial",
                "30",
                "--method",
                "autotvm",
                "--quiet",
                "--out",
                base.join(sub).to_str().unwrap(),
            ]))
            .unwrap();
        }
        let run_a = base.join("a/squeezenet_v1.1-autotvm-seed0");
        let run_b = base.join("b/squeezenet_v1.1-autotvm-seed0");
        // Same seed + same config ⇒ identical trials ⇒ noise everywhere,
        // and the gate must not fire.
        let code = dispatch(&sv(&[
            "compare",
            run_a.to_str().unwrap(),
            run_b.to_str().unwrap(),
            "--fail-on-regress",
            "--resamples",
            "300",
        ]))
        .unwrap();
        assert_eq!(code, 0, "identical runs must not be flagged as regressions");
        // The report (with baseline) must land as one self-contained file.
        dispatch(&sv(&[
            "report",
            run_b.to_str().unwrap(),
            run_a.to_str().unwrap(),
            "--resamples",
            "300",
        ]))
        .unwrap();
        let html = std::fs::read_to_string(run_b.join("report.html")).unwrap();
        assert!(html.contains("<svg"));
        assert!(!html.contains("http://") && !html.contains("https://"));
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn compare_on_missing_dirs_errors() {
        assert!(dispatch(&sv(&["compare", "/nonexistent/a"])).is_err());
        assert!(dispatch(&sv(&["report"])).is_err());
    }

    #[test]
    fn fail_on_regress_gates_with_exit_code_2() {
        // Pinned against the committed golden fixtures (regenerate with
        // `cargo run -p trace-analysis --example gen_fixtures`).
        let fixtures =
            Path::new(env!("CARGO_MANIFEST_DIR")).join("../trace-analysis/tests/fixtures");
        let base = fixtures.join("base");
        let regressed = fixtures.join("regressed");
        let gated = dispatch(&sv(&[
            "compare",
            base.to_str().unwrap(),
            regressed.to_str().unwrap(),
            "--fail-on-regress",
            "--resamples",
            "500",
        ]))
        .unwrap();
        assert_eq!(gated, EXIT_REGRESSED);
        // Without the gate the regression is still reported, but exits 0.
        let ungated = dispatch(&sv(&[
            "compare",
            base.to_str().unwrap(),
            regressed.to_str().unwrap(),
            "--resamples",
            "500",
        ]))
        .unwrap();
        assert_eq!(ungated, 0);
    }
}

//! CLI subcommands.

use crate::opts::{device_by_name, method_by_name, model_by_name, Cli};
use active_learning::{
    read_model_quality, tune_model_parallel, tune_task_with, write_model_quality, Checkpoint,
    DbProvenance, Method, ModelPredRecord, RunDir, RunManifest, TrialRecord, TuneHooks,
    TuneOptions, TuningLog, WarmSeed, CHECKPOINT_SCHEMA_VERSION, MANIFEST_SCHEMA_VERSION,
    MODEL_QUALITY_FILE,
};
use dnn_graph::task::extract_tasks;
use executor::{run_ordered, Executor, ExecutorConfig};
use gpu_sim::{
    FaultConfig, FaultInjectingMeasurer, Measurer, RetryPolicy, RobustMeasurer, SimMeasurer,
};
use schedule::template::space_for_task;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;
use telemetry::sync::lock_or_recover;
use trace_analysis::{
    compare_logs, compare_run_dirs, render_report, CompareOptions, LoadedRun, Registry, RunEntry,
    Verdict,
};
use tuning_db::{
    decimate_curve, DbRecord, LockOptions, TaskSpec, TopConfig, TuningDb, DB_SCHEMA_VERSION,
    DB_WARM_START_COUNTER, TOP_K,
};

/// Exit code for a gated regression (`compare --fail-on-regress`): distinct
/// from 1, which `main` uses for usage/runtime errors.
pub const EXIT_REGRESSED: u8 = 2;

/// Usage text printed on errors.
pub const USAGE: &str = "\
usage:
  aaltune tasks   <model>
  aaltune dot     <model> [--fused true]
  aaltune devices
  aaltune tune    <model> [--task N] [--method M] [--n-trial N] [--seed S]
                          [--device D] [--log FILE] [--out DIR]
                          [--workers N] [--devices M] [--batch-size K]
                          [--device-ms T]
                          [--fault-rate P] [--fault-seed S] [--max-retries R]
                          [--trial-timeout-ms T] [--max-fail-rate F]
                          [--snapshot-interval-ms T] [--no-capture-model]
                          [--db DIR] [--db-policy serve|warm]
                          [--trace FILE] [--quiet] [--json]
  aaltune tune    --resume RUN_DIR [--workers N] [--devices M] [--quiet] [--json]
  aaltune db      <stats|fsck|export> <DB> [--repair]
  aaltune top     RUN_DIR [--refresh-ms T] [--once] [--check]
  aaltune explain RUN_DIR
  aaltune deploy  <model> [--method M] [--n-trial N] [--runs R] [--seed S]
                          [--workers N] [--device D] [--trace FILE]
                          [--quiet] [--json]
  aaltune trace   <trace.jsonl>
  aaltune runs    [DIR] [--model M] [--method M] [--kind K]
  aaltune compare <BASE_RUN> <CAND_RUN> [--alpha A] [--resamples N]
                          [--min-effect PCT] [--boot-seed S] [--fail-on-regress]
  aaltune report  <RUN> [BASELINE] [--html FILE] [--alpha A] [--resamples N]
                          [--min-effect PCT] [--boot-seed S]
  aaltune serve   [--root DIR] [--addr H:P] [--http-workers N] [--job-workers N]
                          [--devices M] [--exec-workers N] [--device-ms T]
                          [--backlog B] [--tenant-devices Q]
                          [--db DIR] [--snapshot-interval-ms T] [--quiet]
  aaltune client  <submit|status|result|events|best|shutdown> [ID]
                          [--root DIR | --addr H:P] [--tenant T] [--model M]
                          [--task N] [--method M] [--n-trial N] [--seed S]
                          [--device D] [--priority P] [--wait]
models:  alexnet resnet18 resnet34 vgg16 vgg19 mobilenet_v1 squeezenet_v1.1
methods: random autotvm bted bted+bao (default)
devices: gtx1080ti (default) v100 jetson
tracing: --trace writes a JSONL telemetry trace (`aaltune trace` summarizes
         it); --out creates a per-run results dir with manifest, logs, and
         trace, and registers the run in DIR/index.jsonl
faults:  --fault-rate injects deterministic measurement faults (seeded by
         --fault-seed); transient faults are retried up to --max-retries,
         persistent crashers are quarantined, and a task aborts once more
         than --max-fail-rate of its trials fail. Runs with --out are
         crash-safe: kill the process and continue with `tune --resume`
parallel: --workers runs measurements on N worker threads over M simulated
         device slots (--devices, default N) with --batch-size proposals per
         round; results are re-sequenced by submission index, so trial logs
         are byte-identical to --workers 1 for the same seed. --device-ms
         emulates per-measurement device occupancy (real time per lease)
analysis: `runs` lists the registry (DIR defaults to ./runs); `compare`
         bootstraps per-task deltas between two run dirs and exits 2 on a
         gated regression; `report` writes a self-contained HTML report
live:    a run with --out publishes metrics.snapshot.json and metrics.prom
         into its run dir every --snapshot-interval-ms (default 1000; 0
         disables) — `top` renders them as a refreshing dashboard (--once
         for a single plain frame, --check to validate the files in CI).
         Snapshots never change trial logs: byte-identical on or off
database: --db opens a crash-safe on-disk store of the best configurations
         per task (keyed by op, shapes, knob space, and device). An exact
         hit is served with one verifying measurement (--db-policy serve,
         default) or warm-starts the initial set (warm); a miss warm-starts
         from nearest-neighbor tasks. Completed tasks are folded back in.
         `db stats` summarizes a store, `db fsck` checks every record
         (exit 1 when committed data is unreadable; --repair quarantines
         corrupt lines and rebuilds the index), `db export` dumps records
         as JSONL
insight: `tune` records the surrogate's per-proposal predictions into
         RUN_DIR/model_quality.jsonl (off with --no-capture-model; capture
         never changes trial logs). `explain RUN_DIR` prints per-round rank
         correlation, top-k recall, calibration error, and regret, with a
         trust verdict; `report` adds a Model quality panel; `compare
         --fail-on-regress` also gates on rank-correlation drops when both
         runs captured
serving: `serve` runs a long-lived tuning server: POST /jobs queues tuning
         jobs per tenant (fair-share scheduling, per-tenant --backlog and
         --tenant-devices quotas), GET /best answers from the tuning
         database without touching the tuning loop, and GET /jobs/ID/events
         streams progress. Jobs are journaled and checkpointed: kill the
         server and restart it on the same --root, and the queue resumes
         with byte-identical trial logs. `top ROOT` watches a live server;
         `client` is the matching command-line client (--root reads the
         published address from ROOT/serve.addr; submit --wait polls the
         job to completion and prints its result)";

/// Parses and runs one invocation, returning the process exit code
/// (0 = success, [`EXIT_REGRESSED`] = gated regression).
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, names, or values.
pub fn dispatch(args: &[String]) -> Result<u8, String> {
    let cli = Cli::parse(args)?;
    match cli.positional.first().map(String::as_str) {
        Some("tasks") => tasks(&cli).map(|()| 0),
        Some("dot") => dot(&cli).map(|()| 0),
        Some("devices") => {
            devices();
            Ok(0)
        }
        Some("tune") => tune(&cli).map(|()| 0),
        Some("db") => db_cmd(&cli),
        Some("top") => crate::top::top(&cli).map(|()| 0),
        Some("explain") => explain(&cli).map(|()| 0),
        Some("deploy") => deploy(&cli).map(|()| 0),
        Some("trace") => trace(&cli).map(|()| 0),
        Some("runs") => runs(&cli).map(|()| 0),
        Some("compare") => compare(&cli),
        Some("report") => report(&cli).map(|()| 0),
        Some("serve") => serve_cmd(&cli).map(|()| 0),
        Some("client") => client_cmd(&cli),
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("no command given".to_string()),
    }
}

/// Installs the global telemetry pipeline from `--trace`/`--quiet`/`--json`,
/// preferring an explicit `--trace` path over the run directory's default.
fn install_telemetry(cli: &Cli, run_dir: Option<&RunDir>) -> Result<telemetry::Telemetry, String> {
    let trace: Option<PathBuf> =
        cli.flag_str("trace").map(PathBuf::from).or_else(|| run_dir.map(RunDir::trace_path));
    telemetry::install_pipeline(
        trace.as_deref(),
        cli.flag_present("quiet"),
        cli.flag_present("json"),
    )
    .map_err(|e| format!("cannot create trace file: {e}"))
}

/// Flushes counters/histograms into the trace and uninstalls the pipeline.
fn finish_telemetry(tel: &telemetry::Telemetry) {
    tel.flush();
    telemetry::set_global(telemetry::Telemetry::disabled());
}

fn model_arg(cli: &Cli) -> Result<dnn_graph::Graph, String> {
    let name = cli.positional.get(1).ok_or("missing <model> argument")?;
    model_by_name(name)
}

/// Optional typed flag: absent flags stay `None` instead of defaulting.
fn opt_flag<T: std::str::FromStr>(cli: &Cli, name: &str) -> Result<Option<T>, String> {
    cli.flag_str(name)
        .map(|v| v.parse().map_err(|_| format!("invalid value for --{name}: `{v}`")))
        .transpose()
}

fn options(cli: &Cli) -> Result<TuneOptions, String> {
    let n_trial: usize = cli.flag("n-trial", 512)?;
    Ok(TuneOptions {
        n_trial,
        early_stopping: 400.min(n_trial),
        seed: cli.flag("seed", 0)?,
        batch_size: cli.flag("batch-size", TuneOptions::default().batch_size)?,
        max_retries: opt_flag(cli, "max-retries")?,
        trial_timeout_ms: opt_flag(cli, "trial-timeout-ms")?,
        fail_rate_cap: opt_flag(cli, "max-fail-rate")?,
        ..TuneOptions::default()
    })
}

fn measurer(cli: &Cli) -> Result<SimMeasurer, String> {
    let device = device_by_name(cli.flag_str("device").unwrap_or("gtx1080ti"))?;
    Ok(SimMeasurer::new(device))
}

fn tasks(cli: &Cli) -> Result<(), String> {
    let model = model_arg(cli)?;
    let tasks = extract_tasks(&model);
    println!("{}: {} tuning tasks", model.name, tasks.len());
    for t in &tasks {
        let space = space_for_task(t);
        println!("  {:<18} {:>14} configs   {}", t.name, space.len(), t.workload);
    }
    Ok(())
}

fn dot(cli: &Cli) -> Result<(), String> {
    let model = model_arg(cli)?;
    let fused: bool = cli.flag("fused", false)?;
    if fused {
        let groups = dnn_graph::fusion::fuse(&model);
        print!("{}", dnn_graph::dot::to_dot_fused(&model, &groups));
    } else {
        print!("{}", dnn_graph::dot::to_dot(&model));
    }
    Ok(())
}

fn devices() {
    for d in [
        gpu_sim::GpuDevice::gtx_1080_ti(),
        gpu_sim::GpuDevice::tesla_v100(),
        gpu_sim::GpuDevice::jetson_tx2(),
    ] {
        println!(
            "{:<14} {:>3} SMs  {:>6.1} GB/s  {:>5.1} TFLOPS",
            d.name,
            d.num_sms,
            d.dram_bw_gbps,
            d.peak_flops() / 1e12
        );
    }
}

/// How `tune` consumes an exact tuning-database hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DbPolicy {
    /// Serve the cached best: one verifying measurement, no tuning loop.
    Serve,
    /// Warm-start the initial measurement set from the cached top-k and
    /// tune normally.
    Warm,
}

impl DbPolicy {
    fn label(self) -> &'static str {
        match self {
            DbPolicy::Serve => "serve",
            DbPolicy::Warm => "warm",
        }
    }

    fn parse(s: &str) -> Result<DbPolicy, String> {
        match s {
            "serve" => Ok(DbPolicy::Serve),
            "warm" => Ok(DbPolicy::Warm),
            other => Err(format!("unknown --db-policy `{other}` (serve, warm)")),
        }
    }
}

/// The tuning database a run is attached to.
struct DbSettings {
    path: PathBuf,
    policy: DbPolicy,
}

/// Everything `tune` needs to run, resolved either from the command line
/// (fresh run) or from a run directory's manifest (`--resume`).
struct TunePlan {
    model: dnn_graph::Graph,
    method: Method,
    opts: TuneOptions,
    fault: FaultConfig,
    device_name: String,
    run_dir: Option<RunDir>,
    /// Where the run registry lives (the parent of the run directory).
    registry_base: Option<PathBuf>,
    resume: bool,
    /// Loop state recovered from `checkpoint.json` (default when fresh).
    checkpoint: Checkpoint,
    /// Exact task set pinned by the original manifest on resume.
    task_names: Option<Vec<String>>,
    /// Measurement worker threads (free to change on resume: worker count
    /// never changes results, only wall time).
    workers: usize,
    /// Simulated device slots in the executor pool.
    devices: usize,
    /// Tuning database attachment, if any. On resume this comes from the
    /// manifest's provenance, so the continued run consults the same store
    /// under the same policy.
    db: Option<DbSettings>,
}

impl TunePlan {
    fn fresh(cli: &Cli) -> Result<TunePlan, String> {
        let model = model_arg(cli)?;
        let method = method_by_name(cli.flag_str("method").unwrap_or("bted+bao"))?;
        // Capture is on by default for `tune`: it is pure (trial logs stay
        // byte-identical) and it is what `explain` and the report's model
        // panel feed on. The manifest pins the choice, so resume inherits it.
        let opts = TuneOptions {
            capture_model: Some(!cli.flag_present("no-capture-model")),
            ..options(cli)?
        };
        let fault =
            FaultConfig { rate: cli.flag("fault-rate", 0.0)?, seed: cli.flag("fault-seed", 0)? };
        if !(0.0..=1.0).contains(&fault.rate) {
            return Err(format!("--fault-rate {} out of range [0, 1]", fault.rate));
        }
        let run_dir = cli
            .flag_str("out")
            .map(|base| {
                let name = format!("{}-{method}-seed{}", model.name, opts.seed);
                RunDir::create(Path::new(base).join(name))
                    .map_err(|e| format!("cannot create run directory: {e}"))
            })
            .transpose()?;
        let db = match cli.flag_str("db") {
            Some(p) => Some(DbSettings {
                path: PathBuf::from(p),
                policy: DbPolicy::parse(cli.flag_str("db-policy").unwrap_or("serve"))?,
            }),
            None if cli.flag_str("db-policy").is_some() => {
                return Err("--db-policy requires --db".to_string())
            }
            None => None,
        };
        Ok(TunePlan {
            model,
            method,
            opts,
            fault,
            device_name: cli.flag_str("device").unwrap_or("gtx1080ti").to_string(),
            run_dir,
            registry_base: cli.flag_str("out").map(PathBuf::from),
            resume: false,
            checkpoint: Checkpoint::default(),
            task_names: None,
            workers: 1,
            devices: 1,
            db,
        })
    }

    /// Rebuilds the plan of a killed run from its manifest: model, method,
    /// options, device, and fault stream all come from the directory, so
    /// the continued run is the same experiment.
    fn resume(path: &Path) -> Result<TunePlan, String> {
        if !path.is_dir() {
            return Err(format!("{} is not a run directory", path.display()));
        }
        let dir =
            RunDir::create(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
        let manifest =
            dir.read_manifest().map_err(|e| format!("cannot resume {}: {e}", path.display()))?;
        if let Some(w) = manifest.schema_warning() {
            return Err(format!("cannot resume {}: {w}", path.display()));
        }
        let checkpoint = dir
            .read_checkpoint()
            .map_err(|e| format!("bad checkpoint in {}: {e}", path.display()))?
            .unwrap_or_default();
        let db = manifest
            .db
            .as_ref()
            .map(|p| {
                Ok::<_, String>(DbSettings {
                    path: PathBuf::from(&p.path),
                    policy: DbPolicy::parse(&p.policy)?,
                })
            })
            .transpose()?;
        Ok(TunePlan {
            model: model_by_name(&manifest.model)?,
            method: method_by_name(&manifest.method)?,
            opts: manifest.options,
            fault: manifest.fault.unwrap_or_else(FaultConfig::off),
            device_name: manifest.device.clone().unwrap_or_else(|| "gtx1080ti".to_string()),
            registry_base: path.parent().map(Path::to_path_buf),
            run_dir: Some(dir),
            resume: true,
            checkpoint,
            task_names: Some(manifest.tasks),
            workers: manifest.workers.unwrap_or(1),
            devices: manifest.devices.unwrap_or(1),
            db,
        })
    }

    fn manifest(&self, task_names: Vec<String>, wall_time_s: Option<f64>) -> RunManifest {
        RunManifest {
            model: self.model.name.clone(),
            method: self.method.to_string(),
            tasks: task_names,
            seed: self.opts.seed,
            options: self.opts,
            schema_version: Some(MANIFEST_SCHEMA_VERSION),
            git_describe: trace_analysis::git_describe(Path::new(".")),
            wall_time_s,
            device: Some(self.device_name.clone()),
            fault: (!self.fault.is_off()).then_some(self.fault),
            resumed: self.resume.then_some(true),
            workers: Some(self.workers),
            devices: Some(self.devices),
            db: self.db.as_ref().map(|d| DbProvenance {
                path: d.path.display().to_string(),
                policy: d.policy.label().to_string(),
            }),
        }
    }
}

/// Shared crash-safety bookkeeping while tasks tune concurrently.
struct CkptState {
    /// Tasks whose logs are complete and durable.
    completed: Vec<String>,
    /// Per in-flight task: config indices already appended to its durable
    /// log. Checkpoints restrict each in-flight task's quarantine to this
    /// set — a batch can quarantine a config trials before its record is
    /// durable, and a resume that excluded such a config would diverge
    /// from the uninterrupted run.
    appended: BTreeMap<String, BTreeSet<u64>>,
}

#[allow(clippy::too_many_lines)]
fn tune(cli: &Cli) -> Result<(), String> {
    // aal-lint: allow(wall-clock, reason = "elapsed time reported to the user and run registry; not a tuning input")
    let started = std::time::Instant::now();
    let mut plan = match cli.flag_str("resume") {
        Some(p) => TunePlan::resume(Path::new(p))?,
        None => TunePlan::fresh(cli)?,
    };
    if let Some(w) = opt_flag::<usize>(cli, "workers")? {
        plan.workers = w;
    }
    if let Some(d) = opt_flag::<usize>(cli, "devices")? {
        plan.devices = d;
    } else if !plan.resume {
        plan.devices = plan.devices.max(plan.workers);
    }
    if plan.workers == 0 || plan.devices == 0 {
        return Err("--workers and --devices must be at least 1".to_string());
    }
    let device_ms: f64 = cli.flag("device-ms", 0.0)?;
    if device_ms < 0.0 {
        return Err(format!("--device-ms {device_ms} must be non-negative"));
    }

    // The full measurement stack, always assembled the same way: fault
    // injection (transparent at rate 0) under the retry/timeout/quarantine
    // policy, fanned out over the executor's worker pool (a transparent
    // pass-through at --workers 1). A resumed run restores the checkpointed
    // quarantine so known-crashing configs are never re-measured.
    let policy = RetryPolicy {
        max_retries: plan.opts.max_retries_or_default(),
        trial_timeout_ms: plan.opts.trial_timeout_ms.unwrap_or(0.0),
        ..RetryPolicy::default()
    };
    let device = device_by_name(&plan.device_name)?;
    let robust = RobustMeasurer::new(
        FaultInjectingMeasurer::new(SimMeasurer::new(device), plan.fault),
        policy,
    );
    if let Some(q) = plan.checkpoint.quarantine.clone() {
        robust.restore_quarantine(q);
    }
    let m = Executor::new(
        robust,
        ExecutorConfig::for_workers(plan.workers)
            .with_devices(plan.devices)
            .with_device_hold(Duration::from_secs_f64(device_ms / 1000.0)),
    );

    // A resumed process appends to the existing trace; its fresh schema
    // header marks the segment boundary for counter summing.
    let trace: Option<PathBuf> = cli
        .flag_str("trace")
        .map(PathBuf::from)
        .or_else(|| plan.run_dir.as_ref().map(RunDir::trace_path));
    // Live observability: with a run dir and a non-zero interval, attach a
    // metrics registry so every probe publishes live, and snapshot it into
    // the run dir periodically. The registry and the snapshot thread only
    // write side files (metrics.snapshot.json / metrics.prom) and append
    // heartbeat events to the trace — trial logs stay byte-identical
    // whether or not snapshots are enabled.
    let snapshot_ms: u64 = cli.flag("snapshot-interval-ms", 1000)?;
    let live_registry = plan
        .run_dir
        .as_ref()
        .filter(|_| snapshot_ms > 0)
        .map(|_| std::sync::Arc::new(telemetry::MetricsRegistry::new()));
    let tel = telemetry::install_pipeline_live(
        trace.as_deref(),
        cli.flag_present("quiet"),
        cli.flag_present("json"),
        plan.resume,
        live_registry.clone(),
    )
    .map_err(|e| format!("cannot create trace file: {e}"))?;
    let mut snapshot_writer = match (&plan.run_dir, &live_registry) {
        (Some(dir), Some(reg)) => Some(telemetry::SnapshotWriter::start(
            dir.path().to_path_buf(),
            std::sync::Arc::clone(reg),
            Duration::from_millis(snapshot_ms),
            tel.clone(),
        )),
        _ => None,
    };

    let tasks = extract_tasks(&plan.model);
    let selected: Vec<usize> = if let Some(names) = &plan.task_names {
        tasks.iter().enumerate().filter(|(_, t)| names.contains(&t.name)).map(|(i, _)| i).collect()
    } else {
        match cli.flag_str("task") {
            Some(s) => {
                let i: usize = s.parse().map_err(|_| format!("invalid --task index `{s}`"))?;
                if i >= tasks.len() {
                    finish_telemetry(&tel);
                    return Err(format!("--task {i} out of range (model has {})", tasks.len()));
                }
                vec![i]
            }
            None => (0..tasks.len()).collect(),
        }
    };
    let selected_names: Vec<String> = selected.iter().map(|&i| tasks[i].name.clone()).collect();

    // Crash-safety contract: the manifest exists from the first moment a
    // trial can be lost, so a killed run is always resumable.
    if let Some(dir) = &plan.run_dir {
        if !plan.resume {
            dir.write_manifest(&plan.manifest(selected_names.clone(), None))
                .map_err(|e| format!("cannot write manifest: {e}"))?;
        }
        // Register the run up front (no wall time yet), so `aaltune runs`
        // lists it as live/stale while it executes; the completion append
        // below shadows this entry (the registry keeps the last per id).
        // Best-effort: a killed run's logs can be torn mid-line until the
        // resume repairs them, and observability must never block tuning.
        if let Some(base) = &plan.registry_base {
            if let Ok(entry) = RunEntry::from_run_dir(dir.path()) {
                let _ = Registry::at(base).append(&entry);
            }
        }
    }

    // The tuning database opens after the telemetry pipeline so its
    // lock-takeover counter and task gauge land in this run's trace. The
    // advisory writer lock is held for the whole run; a concurrent live
    // writer makes this open back off and fail cleanly.
    let db: Option<Mutex<TuningDb>> = match &plan.db {
        Some(s) => match TuningDb::open(&s.path, &LockOptions::default()) {
            Ok(store) => Some(Mutex::new(store)),
            Err(e) => {
                finish_telemetry(&tel);
                return Err(format!("cannot open tuning database {}: {e}", s.path.display()));
            }
        },
        None => None,
    };
    let db_policy = plan.db.as_ref().map_or(DbPolicy::Serve, |s| s.policy);

    let method = plan.method;
    // Folds a finished task's log into the database: top-k measured
    // configurations plus the decimated convergence curve, merged under
    // the run-wide writer lock (append-then-apply, so a kill between the
    // segment write and the in-memory update loses nothing).
    let upsert_result = |task: &dnn_graph::task::TuningTask,
                         log: &TuningLog|
     -> Result<(), String> {
        let Some(store) = &db else { return Ok(()) };
        let space = space_for_task(task);
        let mut ranked: Vec<&TrialRecord> = log.records.iter().filter(|r| r.gflops > 0.0).collect();
        ranked.sort_by(|a, b| {
            b.gflops.total_cmp(&a.gflops).then(a.config_index.cmp(&b.config_index))
        });
        let mut seen = BTreeSet::new();
        let mut top_k = Vec::new();
        for r in ranked {
            if top_k.len() >= TOP_K {
                break;
            }
            if !seen.insert(r.config_index) {
                continue;
            }
            let cfg = space.config(r.config_index).map_err(|e| {
                format!("bad config index {} in log of {}: {e}", r.config_index, task.name)
            })?;
            top_k.push(TopConfig {
                config_index: r.config_index,
                choices: cfg.choices,
                gflops: r.gflops,
                latency_s: r.latency_s,
            });
        }
        if top_k.is_empty() {
            // Every measurement failed; nothing worth remembering.
            return Ok(());
        }
        let rec = DbRecord {
            schema_version: DB_SCHEMA_VERSION,
            spec: TaskSpec::of(task, &space, &plan.device_name),
            feature: TaskSpec::features(task),
            method: method.label().to_string(),
            seed: plan.opts.seed,
            n_trials: log.records.len() as u64,
            best_gflops: top_k[0].gflops,
            top_k,
            curve: decimate_curve(&log.convergence_curve(), 64),
        };
        lock_or_recover(store)
            .upsert(rec)
            .map_err(|e| format!("cannot upsert {} into tuning database: {e}", task.name))
    };
    let ckpt_state = Mutex::new(CkptState {
        completed: plan.checkpoint.completed_tasks.clone(),
        appended: BTreeMap::new(),
    });
    // Checkpoint writes serialize under the state lock; the quarantine of
    // every in-flight task is restricted to its durably-logged configs.
    let write_ckpt =
        |dir: &RunDir, st: &CkptState, in_flight: Option<&str>, trials: Option<u64>| {
            let mut quarantine = m.inner().quarantine_snapshot();
            for (task, allowed) in &st.appended {
                quarantine.restrict(task, allowed);
            }
            dir.write_checkpoint(&Checkpoint {
                schema_version: Some(CHECKPOINT_SCHEMA_VERSION),
                completed_tasks: st.completed.clone(),
                in_flight: in_flight.map(str::to_string),
                trials_logged: trials,
                quarantine: Some(quarantine),
            })
            .map_err(|e| format!("cannot write checkpoint: {e}"))
        };
    // Model-capture bookkeeping: records fold per task and the file is
    // rewritten (atomically) whenever a task completes, so a killed run
    // keeps the capture of every completed task across a resume — the
    // early-return path below reads those records back instead of
    // refitting models.
    let capture = plan.opts.capture_model_or_default();
    let prior_model_records: Vec<ModelPredRecord> = match &plan.run_dir {
        Some(dir) if plan.resume && capture && dir.model_quality_path().is_file() => {
            read_model_quality(&dir.model_quality_path())?
        }
        _ => Vec::new(),
    };
    let model_records: Mutex<BTreeMap<String, Vec<ModelPredRecord>>> = Mutex::new(BTreeMap::new());
    let write_model_capture = |dir: &RunDir| -> Result<(), String> {
        let by_task = lock_or_recover(&model_records);
        let all: Vec<ModelPredRecord> = selected_names
            .iter()
            .filter_map(|name| by_task.get(name))
            .flat_map(|recs| recs.iter().cloned())
            .collect();
        write_model_quality(&dir.model_quality_path(), &all)
            .map_err(|e| format!("cannot write {MODEL_QUALITY_FILE}: {e}"))
    };
    let run_task = |task: &dnn_graph::task::TuningTask| -> Result<TuningLog, String> {
        if let Some(dir) = &plan.run_dir {
            if lock_or_recover(&ckpt_state).completed.contains(&task.name) {
                // Finished before the kill: read the durable log back (and
                // the task's capture records, written when it completed).
                // Its database upsert was durable before the completion
                // checkpoint, so no re-consultation happens here.
                let f = std::fs::File::open(dir.log_path(&task.name))
                    .map_err(|e| format!("cannot reopen log of {}: {e}", task.name))?;
                let log = TuningLog::read_jsonl(std::io::BufReader::new(f))
                    .map_err(|e| format!("bad log for completed task {}: {e}", task.name))?;
                if capture {
                    let prior: Vec<ModelPredRecord> = prior_model_records
                        .iter()
                        .filter(|rec| rec.task == task.name)
                        .cloned()
                        .collect();
                    lock_or_recover(&model_records).insert(task.name.clone(), prior);
                }
                tel.report(|| {
                    format!(
                        "{:<18} already complete ({} trials) — skipped",
                        log.task_name,
                        log.records.len()
                    )
                });
                return Ok(log);
            }
        }
        // Database consultation happens before any measurement. A resumed
        // task replays the seed pinned in the run dir — re-deriving from a
        // store that has moved on since the kill would diverge — while a
        // fresh task derives one (exact hit or nearest neighbors) and pins
        // it before the first trial.
        let db_seed: Option<WarmSeed> = if let Some(store) = &db {
            let space = space_for_task(task);
            let spec = TaskSpec::of(task, &space, &plan.device_name);
            let pinned = match &plan.run_dir {
                Some(dir) if plan.resume => dir
                    .read_warm_start(&task.name)
                    .map_err(|e| format!("bad warm-start seed for {}: {e}", task.name))?,
                _ => None,
            };
            let seed = match pinned {
                Some(s) => Some(s),
                None => {
                    let derived = {
                        let store = lock_or_recover(store);
                        match store.lookup(&spec) {
                            Some(rec) if db_policy == DbPolicy::Serve => Some(WarmSeed {
                                mode: "serve".into(),
                                configs: rec.configs_for(&space, 1),
                            }),
                            Some(rec) => Some(WarmSeed {
                                mode: "warm".into(),
                                configs: rec.configs_for(&space, plan.opts.init_points.max(1)),
                            }),
                            None => {
                                let feature = TaskSpec::features(task);
                                let mut seen = BTreeSet::new();
                                let mut configs = Vec::new();
                                'neighbors: for n in store.nearest(&spec, &feature, 3) {
                                    for cfg in n.configs_for(&space, TOP_K) {
                                        if configs.len() >= plan.opts.init_points.max(1) {
                                            break 'neighbors;
                                        }
                                        if seen.insert(cfg.index) {
                                            configs.push(cfg);
                                        }
                                    }
                                }
                                (!configs.is_empty())
                                    .then(|| WarmSeed { mode: "warm".into(), configs })
                            }
                        }
                    };
                    if let (Some(dir), Some(s)) = (&plan.run_dir, &derived) {
                        dir.write_warm_start(&task.name, s).map_err(|e| {
                            format!("cannot pin warm-start seed for {}: {e}", task.name)
                        })?;
                    }
                    derived
                }
            };
            let seed = seed.filter(|s| !s.configs.is_empty());
            if let Some(s) = &seed {
                tel.count(DB_WARM_START_COUNTER, 1);
                tel.report(|| {
                    format!(
                        "{:<18} {} seed from db ({} configs)",
                        task.name,
                        s.mode,
                        s.configs.len()
                    )
                });
            }
            seed
        } else {
            None
        };
        // Serve policy on an exact hit: one verifying measurement of the
        // cached best replaces the whole tuning loop. A failed verification
        // (the config no longer launches) falls through to full tuning
        // warm-started from the same seed.
        if let Some(seed) = db_seed.as_ref().filter(|s| s.mode == "serve") {
            let cfg = &seed.configs[0];
            let space = space_for_task(task);
            let res = &m.measure_batch(task, &space, std::slice::from_ref(cfg))[0];
            if res.gflops > 0.0 {
                let rec = TrialRecord {
                    trial: 0,
                    config_index: cfg.index,
                    gflops: res.gflops,
                    latency_s: res.latency_s,
                    best_gflops: res.gflops,
                };
                let mut log = TuningLog::new(task.name.clone(), method.label());
                log.records.push(rec.clone());
                if let Some(dir) = &plan.run_dir {
                    let mut w = dir
                        .create_log(&task.name, method.label())
                        .map_err(|e| format!("cannot create log of {}: {e}", task.name))?;
                    w.append(&rec)
                        .map_err(|e| format!("trial log of {} failed to write: {e}", task.name))?;
                }
                // Upsert before the completion checkpoint: a kill between
                // the two re-serves the task on resume (idempotent merge)
                // instead of silently losing the database write.
                upsert_result(task, &log)?;
                if let Some(dir) = &plan.run_dir {
                    let mut st = lock_or_recover(&ckpt_state);
                    st.completed.push(task.name.clone());
                    write_ckpt(dir, &st, None, None)?;
                }
                tel.report(|| {
                    format!(
                        "{:<18} {:>9.1} GFLOPS served from db (1 verifying measurement)",
                        task.name, res.gflops
                    )
                });
                return Ok(log);
            }
            tel.report(|| format!("{}: cached best failed verification — retuning", task.name));
        }
        let warm: Option<Vec<schedule::Config>> = db_seed.map(|s| s.configs);
        let r = if let Some(dir) = &plan.run_dir {
            // Durable path: recover any partial log, replay it through the
            // deterministic loop, and append every live trial before the
            // tuner consumes it.
            let (replay, mut writer) = {
                let recovered = if plan.resume {
                    dir.recover_log(&task.name)
                        .map_err(|e| format!("cannot recover log of {}: {e}", task.name))?
                } else {
                    None
                };
                match recovered {
                    Some((rec, w)) => {
                        if rec.dropped_tail {
                            tel.report(|| {
                                format!("{}: dropped a half-written trial line", task.name)
                            });
                        }
                        (rec.log.records, w)
                    }
                    None => (
                        Vec::new(),
                        dir.create_log(&task.name, method.label())
                            .map_err(|e| format!("cannot create log of {}: {e}", task.name))?,
                    ),
                }
            };
            {
                let mut st = lock_or_recover(&ckpt_state);
                st.appended
                    .insert(task.name.clone(), replay.iter().map(|rec| rec.config_index).collect());
                write_ckpt(dir, &st, Some(&task.name), Some(replay.len() as u64))?;
            }
            let trials_logged = std::cell::Cell::new(replay.len() as u64);
            let write_err: std::cell::RefCell<Option<String>> = std::cell::RefCell::new(None);
            // Capture sink: the loop recomputes diagnostics for replayed
            // trials too, so a resumed task rebuilds its full record set.
            let mut task_records: Vec<ModelPredRecord> = Vec::new();
            let mut model_sink = |rec: &ModelPredRecord| task_records.push(rec.clone());
            let mut sink = |rec: &TrialRecord| {
                if let Err(e) = writer.append(rec) {
                    write_err.borrow_mut().get_or_insert(e.to_string());
                }
                trials_logged.set(trials_logged.get() + 1);
                let mut st = lock_or_recover(&ckpt_state);
                st.appended.entry(task.name.clone()).or_default().insert(rec.config_index);
                if trials_logged.get().is_multiple_of(16) {
                    let _ = write_ckpt(dir, &st, Some(&task.name), Some(trials_logged.get()));
                }
            };
            let r = tune_task_with(
                task,
                &m,
                method,
                &plan.opts,
                TuneHooks {
                    on_trial: Some(&mut sink),
                    on_model: Some(&mut model_sink),
                    replay: Some(&replay),
                    warm_start: warm.as_deref(),
                },
            );
            if let Some(e) = write_err.into_inner() {
                return Err(format!("trial log of {} failed to write: {e}", task.name));
            }
            // Upsert before the completion checkpoint (see the serve path).
            upsert_result(task, &r.log)?;
            {
                let mut st = lock_or_recover(&ckpt_state);
                st.appended.remove(&task.name);
                st.completed.push(task.name.clone());
                write_ckpt(dir, &st, None, None)?;
            }
            if capture {
                lock_or_recover(&model_records).insert(task.name.clone(), task_records);
                write_model_capture(dir)?;
            }
            r
        } else {
            let r = tune_task_with(
                task,
                &m,
                method,
                &plan.opts,
                TuneHooks { warm_start: warm.as_deref(), ..TuneHooks::default() },
            );
            upsert_result(task, &r.log)?;
            r
        };
        if let Some(diag) = &r.aborted {
            tel.report(|| format!("{:<18} ABORTED: {diag}", r.task_name));
        }
        tel.report(|| {
            format!(
                "{:<18} {:>9.1} GFLOPS in {:>4} measurements ({method})",
                r.task_name, r.best_gflops, r.num_measured
            )
        });
        Ok(r.log)
    };
    // Task-level scheduling: up to --workers tasks in flight, sharing the
    // executor's worker pool and devices (fair-shared per task name); the
    // log vector folds back in task order, exactly as the serial loop.
    let concurrency = plan.workers.min(selected.len()).max(1);
    let outcomes = run_ordered(selected, concurrency, |_, i| run_task(&tasks[i]));
    let mut logs = Vec::with_capacity(outcomes.len());
    let mut first_err: Option<String> = None;
    for outcome in outcomes {
        match outcome {
            Ok(log) => logs.push(log),
            Err(e) => {
                first_err.get_or_insert(e);
            }
        }
    }
    if let Some(e) = first_err {
        finish_telemetry(&tel);
        return Err(e);
    }

    if let Some(dir) = &plan.run_dir {
        // Stop the snapshot thread first: its final publish lands before
        // the manifest gains a wall time, so `top` never sees a "done" run
        // with a half-stale snapshot.
        if let Some(writer) = snapshot_writer.take() {
            writer.finish();
        }
        // The capture file is complete before the manifest gains a wall
        // time, so a "done" run always has its final model_quality.jsonl.
        if capture {
            write_model_capture(dir)?;
        }
        // Rewrite the manifest with the final wall time (and the resumed
        // marker) now that the run is complete.
        dir.write_manifest(
            &plan.manifest(selected_names.clone(), Some(started.elapsed().as_secs_f64())),
        )
        .map_err(|e| format!("cannot write manifest: {e}"))?;
        // Flush counters into the trace before the registry reads it for
        // the health columns.
        tel.flush();
        if let Some(base) = &plan.registry_base {
            let entry = RunEntry::from_run_dir(dir.path())?;
            Registry::at(base)
                .append(&entry)
                .map_err(|e| format!("cannot update run registry: {e}"))?;
        }
        tel.report(|| format!("wrote run artifacts to {}", dir.path().display()));
    }
    if let Some(path) = cli.flag_str("log") {
        let mut f =
            // aal-lint: allow(raw-artifact-write, reason = "explicit --log export requested by the user; regenerable from the run directory")
            std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        for log in &logs {
            log.write_jsonl(&mut f).map_err(|e| format!("write failed: {e}"))?;
        }
        tel.report(|| format!("wrote {} logs to {path}", logs.len()));
    }
    finish_telemetry(&tel);
    Ok(())
}

/// `aaltune db <stats|fsck|export> <DB> [--repair]` — inspect, check, or
/// dump a tuning database. `fsck` exits 1 when committed data is
/// unreadable (and was not repaired), so CI can gate on store health.
fn db_cmd(cli: &Cli) -> Result<u8, String> {
    let sub = cli
        .positional
        .get(1)
        .map(String::as_str)
        .ok_or("missing db subcommand (stats, fsck, export)")?;
    let root = PathBuf::from(cli.positional.get(2).ok_or("missing <DB> directory")?);
    match sub {
        "stats" => {
            let store = TuningDb::open(&root, &LockOptions::default())
                .map_err(|e| format!("cannot open {}: {e}", root.display()))?;
            let s = store.stats();
            println!("tasks:         {}", s.tasks);
            println!("configs:       {}", s.configs);
            println!("segments:      {}", s.segments);
            println!("covered seq:   {}", s.covered_seq);
            println!("corrupt lines: {}", s.corrupt_lines);
            println!("best:          {:.1} GFLOPS", s.best_gflops);
            Ok(0)
        }
        "fsck" => {
            let repair = cli.flag_present("repair");
            let report = TuningDb::fsck(&root, repair, &LockOptions::default())
                .map_err(|e| format!("cannot fsck {}: {e}", root.display()))?;
            println!("segments:      {}", report.segments);
            println!("records:       {}", report.records);
            println!("corrupt lines: {}", report.corrupt_lines);
            println!("torn tails:    {}", report.torn_tails);
            println!("index damaged: {}", report.index_damaged);
            if repair {
                println!("quarantined:   {}", report.quarantined);
            }
            if report.healthy() {
                println!("status:        healthy");
                Ok(0)
            } else {
                println!("status:        UNHEALTHY (run fsck --repair to quarantine and rebuild)");
                Ok(1)
            }
        }
        "export" => {
            let store = TuningDb::open(&root, &LockOptions::default())
                .map_err(|e| format!("cannot open {}: {e}", root.display()))?;
            for rec in store.records() {
                let line =
                    serde_json::to_string(&rec).map_err(|e| format!("serialize failed: {e}"))?;
                println!("{line}");
            }
            Ok(0)
        }
        other => Err(format!("unknown db subcommand `{other}` (stats, fsck, export)")),
    }
}

fn deploy(cli: &Cli) -> Result<(), String> {
    let model = model_arg(cli)?;
    let method = method_by_name(cli.flag_str("method").unwrap_or("bted+bao"))?;
    let opts = options(cli)?;
    let runs: usize = cli.flag("runs", 600)?;
    let workers: usize = cli.flag("workers", 1)?;
    if workers == 0 {
        return Err("--workers must be at least 1".to_string());
    }
    let m = measurer(cli)?;
    let tel = install_telemetry(cli, None)?;
    let r = tune_model_parallel(&model, &m, method, &opts, runs, workers);
    tel.report(|| {
        format!(
            "{} ({method}): latency {:.4} ms  variance {:.4}  min {:.4}  max {:.4}  \
             ({} measurements)",
            r.model_name,
            r.latency.mean_ms,
            r.latency.variance,
            r.latency.min_ms,
            r.latency.max_ms,
            r.total_measurements
        )
    });
    finish_telemetry(&tel);
    Ok(())
}

fn trace(cli: &Cli) -> Result<(), String> {
    let path = cli.positional.get(1).ok_or("missing <trace.jsonl> argument")?;
    let f = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let summary = telemetry::TraceSummary::from_reader(std::io::BufReader::new(f))
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    print!("{}", summary.render());
    Ok(())
}

fn runs(cli: &Cli) -> Result<(), String> {
    let root = cli.positional.get(1).map_or("runs", String::as_str);
    let reg = Registry::at(root);
    let idx = reg.load().map_err(|e| format!("cannot read {}: {e}", reg.index_path().display()))?;
    let filtered =
        idx.filtered(cli.flag_str("model"), cli.flag_str("method"), cli.flag_str("kind"));
    if filtered.is_empty() {
        println!("no matching runs in {}", reg.index_path().display());
    } else {
        print!("{}", idx.render(&filtered));
    }
    Ok(())
}

fn compare_options(cli: &Cli) -> Result<CompareOptions, String> {
    let defaults = CompareOptions::default();
    Ok(CompareOptions {
        alpha: cli.flag("alpha", defaults.alpha)?,
        resamples: cli.flag("resamples", defaults.resamples)?,
        min_effect_pct: cli.flag("min-effect", defaults.min_effect_pct)?,
        seed: cli.flag("boot-seed", defaults.seed)?,
    })
}

fn compare(cli: &Cli) -> Result<u8, String> {
    let base = cli.positional.get(1).ok_or("missing <BASE_RUN> directory")?;
    let cand = cli.positional.get(2).ok_or("missing <CAND_RUN> directory")?;
    let cmp = compare_run_dirs(Path::new(base), Path::new(cand), compare_options(cli)?)?;
    print!("{}", cmp.render());
    if cli.flag_present("fail-on-regress") && cmp.has_regressions() {
        let model = cmp.model_quality.iter().filter(|m| m.regressed).count();
        eprintln!(
            "FAIL: {} task(s) regressed, {model} model rank-correlation drop(s)",
            cmp.count(Verdict::Regressed)
        );
        return Ok(EXIT_REGRESSED);
    }
    Ok(0)
}

fn report(cli: &Cli) -> Result<(), String> {
    let run_path = cli.positional.get(1).ok_or("missing <RUN> directory")?;
    let run = LoadedRun::load(Path::new(run_path))?;
    let baseline = cli.positional.get(2).map(|p| LoadedRun::load(Path::new(p))).transpose()?;
    let comparison = baseline
        .as_ref()
        .map(|b| -> Result<_, String> {
            Ok(compare_logs(
                b.id.clone(),
                run.id.clone(),
                &b.logs,
                &run.logs,
                compare_options(cli)?,
                Vec::new(),
            ))
        })
        .transpose()?;
    let html = render_report(&run, baseline.as_ref(), comparison.as_ref());
    let out =
        cli.flag_str("html").map_or_else(|| Path::new(run_path).join("report.html"), PathBuf::from);
    // aal-lint: allow(raw-artifact-write, reason = "HTML report is a derived view; regenerable from the trace")
    std::fs::write(&out, html).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!("wrote {}", out.display());
    Ok(())
}

fn explain(cli: &Cli) -> Result<(), String> {
    let path = Path::new(cli.positional.get(1).ok_or("missing RUN_DIR argument")?);
    if !path.is_dir() {
        return Err(format!("{} is not a run directory", path.display()));
    }
    let file = path.join(MODEL_QUALITY_FILE);
    if !file.is_file() {
        return Err(format!(
            "{} has no {MODEL_QUALITY_FILE} — the run was tuned without model capture \
             (capture is on by default; drop --no-capture-model and re-tune to record \
             the surrogate's predictions)",
            path.display()
        ));
    }
    let records = read_model_quality(&file)?;
    print!("{}", trace_analysis::render_explain(&trace_analysis::analyze(&records)));
    Ok(())
}

/// `aaltune serve` — run the tuning server until `POST /shutdown` (or a
/// signal; queued jobs resume on the next start from the same --root).
fn serve_cmd(cli: &Cli) -> Result<(), String> {
    let quiet = cli.flag_present("quiet");
    let cfg = serve::ServeConfig {
        root: PathBuf::from(cli.flag_str("root").unwrap_or("serve-root")),
        addr: cli.flag_str("addr").unwrap_or("127.0.0.1:7411").to_string(),
        http_workers: cli.flag("http-workers", 4)?,
        job_workers: cli.flag("job-workers", 2)?,
        devices: cli.flag("devices", 4)?,
        exec_workers: cli.flag("exec-workers", 2)?,
        device_hold: Duration::from_millis(cli.flag("device-ms", 0)?),
        backlog: cli.flag("backlog", 16)?,
        tenant_devices: cli.flag_str("tenant-devices").map(str::parse).transpose().map_err(
            |_| "invalid value for --tenant-devices (expected a device count)".to_string(),
        )?,
        db: cli.flag_str("db").map(PathBuf::from),
        snapshot_interval: Duration::from_millis(cli.flag("snapshot-interval-ms", 1000)?),
        quiet,
    };
    let root = cfg.root.clone();
    let server = serve::Server::start(cfg)?;
    if !quiet {
        eprintln!(
            "serving on {} (root {}; POST /shutdown to drain)",
            server.addr(),
            root.display()
        );
    }
    server.wait();
    Ok(())
}

/// Resolves the server address for `aaltune client`: explicit `--addr`,
/// else the address the server published into `<--root>/serve.addr`.
fn client_addr(cli: &Cli) -> Result<String, String> {
    if let Some(addr) = cli.flag_str("addr") {
        return Ok(addr.to_string());
    }
    let root = cli.flag_str("root").unwrap_or("serve-root");
    let path = Path::new(root).join("serve.addr");
    std::fs::read_to_string(&path).map(|s| s.trim().to_string()).map_err(|e| {
        format!("no --addr and cannot read {} ({e}); is the server running?", path.display())
    })
}

/// `aaltune client <submit|status|result|events|best|shutdown>`.
fn client_cmd(cli: &Cli) -> Result<u8, String> {
    let addr = client_addr(cli)?;
    let sub = cli
        .positional
        .get(1)
        .map(String::as_str)
        .ok_or("missing client subcommand (submit, status, result, events, best, shutdown)")?;
    let job_id = || -> Result<&str, String> {
        cli.positional.get(2).map(String::as_str).ok_or_else(|| "missing job id".to_string())
    };
    match sub {
        "submit" => {
            let mut body = serde_json::json!({
                "model": cli.flag_str("model").ok_or("submit requires --model")?,
                "tenant": cli.flag_str("tenant").unwrap_or("default"),
                "method": cli.flag_str("method").unwrap_or("bted+bao"),
                "device": cli.flag_str("device").unwrap_or("gtx1080ti"),
                "n_trial": cli.flag("n-trial", 64u64)?,
                "seed": cli.flag("seed", 0u64)?,
                "priority": cli.flag("priority", 0u64)?,
            });
            if let (serde_json::Value::Object(obj), Some(task)) = (&mut body, cli.flag_str("task"))
            {
                let task: u64 = task
                    .parse()
                    .map_err(|_| "invalid value for --task (expected an index)".to_string())?;
                obj.insert("task".into(), serde_json::Value::from(task));
            }
            let (code, resp) = serve::client::request(&addr, "POST", "/jobs", Some(&body))?;
            println!("{resp}");
            if code != 202 {
                return Ok(1);
            }
            if !cli.flag_present("wait") {
                return Ok(0);
            }
            let id = resp["id"].as_str().ok_or("server response has no job id")?.to_string();
            loop {
                let (_, status) =
                    serve::client::request(&addr, "GET", &format!("/jobs/{id}"), None)?;
                match status["state"].as_str() {
                    Some("done") => {
                        let (_, result) = serve::client::request(
                            &addr,
                            "GET",
                            &format!("/jobs/{id}/result"),
                            None,
                        )?;
                        println!("{result}");
                        return Ok(0);
                    }
                    Some("failed") => {
                        println!("{status}");
                        return Ok(1);
                    }
                    _ => std::thread::sleep(Duration::from_millis(200)),
                }
            }
        }
        "status" => {
            let (code, resp) =
                serve::client::request(&addr, "GET", &format!("/jobs/{}", job_id()?), None)?;
            println!("{resp}");
            Ok(u8::from(code != 200))
        }
        "result" => {
            let (code, resp) =
                serve::client::request(&addr, "GET", &format!("/jobs/{}/result", job_id()?), None)?;
            println!("{resp}");
            Ok(u8::from(code != 200))
        }
        "events" => {
            serve::client::stream_events(&addr, &format!("/jobs/{}/events", job_id()?), |v| {
                println!("{v}");
                true
            })?;
            Ok(0)
        }
        "best" => {
            let model = cli.flag_str("model").ok_or("best requires --model")?;
            let task: u64 = cli.flag("task", 0)?;
            let device = cli.flag_str("device").unwrap_or("gtx1080ti");
            let (code, resp) = serve::client::request(
                &addr,
                "GET",
                &format!("/best?model={model}&task={task}&device={device}"),
                None,
            )?;
            println!("{resp}");
            Ok(u8::from(code != 200))
        }
        "shutdown" => {
            let (code, resp) = serve::client::request(&addr, "POST", "/shutdown", None)?;
            println!("{resp}");
            Ok(u8::from(code != 202))
        }
        other => Err(format!(
            "unknown client subcommand `{other}` (submit, status, result, events, best, shutdown)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn unknown_command_errors() {
        assert!(dispatch(&sv(&["frobnicate"])).is_err());
        assert!(dispatch(&sv(&[])).is_err());
    }

    #[test]
    fn tasks_lists_mobilenet() {
        dispatch(&sv(&["tasks", "mobilenet_v1"])).unwrap();
    }

    #[test]
    fn dot_export_runs() {
        dispatch(&sv(&["dot", "alexnet"])).unwrap();
        dispatch(&sv(&["dot", "resnet18", "--fused", "true"])).unwrap();
    }

    #[test]
    fn devices_prints() {
        dispatch(&sv(&["devices"])).unwrap();
    }

    #[test]
    fn tune_single_task_smoke() {
        dispatch(&sv(&[
            "tune",
            "squeezenet",
            "--task",
            "0",
            "--n-trial",
            "40",
            "--method",
            "autotvm",
        ]))
        .unwrap();
    }

    #[test]
    fn tune_task_out_of_range_errors() {
        let e = dispatch(&sv(&["tune", "alexnet", "--task", "99"])).unwrap_err();
        assert!(e.contains("out of range"));
    }

    #[test]
    fn tune_writes_run_dir_and_trace_summarizes() {
        let base = std::env::temp_dir().join(format!("aaltune-cli-run-{}", std::process::id()));
        dispatch(&sv(&[
            "tune",
            "squeezenet",
            "--task",
            "0",
            "--n-trial",
            "40",
            "--method",
            "autotvm",
            "--quiet",
            "--out",
            base.to_str().unwrap(),
        ]))
        .unwrap();
        let run = base.join("squeezenet_v1.1-autotvm-seed0");
        assert!(run.join("manifest.json").is_file());
        assert!(run.join("trace.jsonl").is_file());
        assert!(base.join("index.jsonl").is_file(), "tune --out must register the run");
        let logs: Vec<_> = std::fs::read_dir(run.join("logs")).unwrap().collect();
        assert_eq!(logs.len(), 1);
        // The recorded trace must summarize via the `trace` subcommand.
        dispatch(&sv(&["trace", run.join("trace.jsonl").to_str().unwrap()])).unwrap();
        // The registry must list it.
        dispatch(&sv(&["runs", base.to_str().unwrap()])).unwrap();
        dispatch(&sv(&["runs", base.to_str().unwrap(), "--model", "squeezenet"])).unwrap();
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn truncated_chaos_run_resumes_to_the_identical_log() {
        let base = std::env::temp_dir().join(format!("aaltune-cli-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let args = |out: &Path| {
            sv(&[
                "tune",
                "squeezenet",
                "--task",
                "0",
                "--n-trial",
                "40",
                "--method",
                "autotvm",
                "--quiet",
                "--fault-rate",
                "0.15",
                "--fault-seed",
                "7",
                "--out",
                out.to_str().unwrap(),
            ])
        };
        dispatch(&args(&base.join("full"))).unwrap();
        dispatch(&args(&base.join("cut"))).unwrap();
        let run = "squeezenet_v1.1-autotvm-seed0";
        let log_of = |sub: &str| {
            std::fs::read_dir(base.join(sub).join(run).join("logs"))
                .unwrap()
                .map(|e| e.unwrap().path())
                .find(|p| p.extension().is_some_and(|e| e == "jsonl"))
                .expect("task log exists")
        };
        let full = std::fs::read(log_of("full")).unwrap();
        assert_eq!(full, std::fs::read(log_of("cut")).unwrap(), "same seed ⇒ same log");

        // Simulate a mid-task kill: keep the header plus 12 trials and a
        // half-written 13th line, and forget the end-of-task checkpoint.
        let cut_path = log_of("cut");
        let keep = full
            .split_inclusive(|&b| b == b'\n')
            .take(13)
            .flatten()
            .copied()
            .chain(*br#"{"trial":12,"config_ind"#)
            .collect::<Vec<u8>>();
        assert!(keep.len() < full.len(), "the cut must drop real trials");
        std::fs::write(&cut_path, keep).unwrap();
        let cut_run = base.join("cut").join(run);
        let _ = std::fs::remove_file(cut_run.join("checkpoint.json"));

        dispatch(&sv(&["tune", "--resume", cut_run.to_str().unwrap(), "--quiet"])).unwrap();
        assert_eq!(
            full,
            std::fs::read(log_of("cut")).unwrap(),
            "resumed log must be byte-identical to the uninterrupted run"
        );
        // The replay recomputes the model's opinions, so the capture file
        // also converges to the uninterrupted run's bytes.
        let mq = |sub: &str| {
            std::fs::read(base.join(sub).join(run).join(MODEL_QUALITY_FILE)).expect("capture file")
        };
        assert_eq!(mq("full"), mq("cut"), "resumed capture must match the uninterrupted run");
        let manifest = std::fs::read_to_string(cut_run.join("manifest.json")).unwrap();
        assert!(manifest.contains("\"resumed\""), "{manifest}");

        // The two run dirs must also read as statistically identical.
        let code = dispatch(&sv(&[
            "compare",
            base.join("full").join(run).to_str().unwrap(),
            cut_run.to_str().unwrap(),
            "--fail-on-regress",
            "--resamples",
            "200",
        ]))
        .unwrap();
        assert_eq!(code, 0);
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn tune_publishes_snapshots_and_top_reads_them() {
        let base = std::env::temp_dir().join(format!("aaltune-cli-top-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        dispatch(&sv(&[
            "tune",
            "squeezenet",
            "--task",
            "0",
            "--n-trial",
            "40",
            "--method",
            "autotvm",
            "--quiet",
            "--snapshot-interval-ms",
            "50",
            "--out",
            base.to_str().unwrap(),
        ]))
        .unwrap();
        let run = base.join("squeezenet_v1.1-autotvm-seed0");
        // The final snapshot reflects the completed run.
        let snap: telemetry::MetricsSnapshot = serde_json::from_str(
            &std::fs::read_to_string(run.join(telemetry::SNAPSHOT_FILE)).unwrap(),
        )
        .unwrap();
        assert_eq!(snap.counter(telemetry::stream::TRIALS_COUNTER), 40);
        assert_eq!(snap.counter(telemetry::stream::TASKS_DONE_COUNTER), 1);
        assert!(snap.counter("measure.attempts") >= 40);
        assert!(snap.gauges.keys().any(|k| k.ends_with(".best_gflops")), "{:?}", snap.gauges);
        let prom = std::fs::read_to_string(run.join(telemetry::PROM_FILE)).unwrap();
        assert!(!telemetry::parse_prometheus(&prom).unwrap().is_empty());
        // Both `top` probe modes accept the finished run.
        dispatch(&sv(&["top", run.to_str().unwrap(), "--once"])).unwrap();
        dispatch(&sv(&["top", run.to_str().unwrap(), "--check"])).unwrap();
        // The registry was appended at start and at completion; the load
        // dedupes to one (done) entry.
        let idx = Registry::at(&base).load().unwrap();
        assert_eq!(idx.entries.len(), 1);
        assert!(idx.entries[0].wall_time_s.is_some());
        assert!(idx.entries[0].last_heartbeat_unix_ms.is_some());
        // --check rejects a corrupted snapshot.
        std::fs::write(run.join(telemetry::SNAPSHOT_FILE), "not json").unwrap();
        let e = dispatch(&sv(&["top", run.to_str().unwrap(), "--check"])).unwrap_err();
        assert!(e.contains("malformed"), "{e}");
        assert!(dispatch(&sv(&["top", "/nonexistent/run"])).is_err());
        assert!(dispatch(&sv(&["top"])).is_err());
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn snapshots_never_change_trial_logs() {
        let base = std::env::temp_dir().join(format!("aaltune-cli-live-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let args = |out: &Path, interval: &str| {
            sv(&[
                "tune",
                "squeezenet",
                "--task",
                "0",
                "--n-trial",
                "30",
                "--method",
                "autotvm",
                "--quiet",
                "--workers",
                "2",
                "--snapshot-interval-ms",
                interval,
                "--out",
                out.to_str().unwrap(),
            ])
        };
        dispatch(&args(&base.join("on"), "25")).unwrap();
        dispatch(&args(&base.join("off"), "0")).unwrap();
        let run = "squeezenet_v1.1-autotvm-seed0";
        let log_of = |sub: &str| {
            std::fs::read_dir(base.join(sub).join(run).join("logs"))
                .unwrap()
                .map(|e| e.unwrap().path())
                .find(|p| p.extension().is_some_and(|e| e == "jsonl"))
                .expect("task log exists")
        };
        assert_eq!(
            std::fs::read(log_of("on")).unwrap(),
            std::fs::read(log_of("off")).unwrap(),
            "trial logs must be byte-identical with snapshots on or off"
        );
        // Interval 0 disables the live layer entirely: no side files.
        assert!(base.join("on").join(run).join(telemetry::SNAPSHOT_FILE).is_file());
        assert!(!base.join("off").join(run).join(telemetry::SNAPSHOT_FILE).exists());
        assert!(!base.join("off").join(run).join(telemetry::PROM_FILE).exists());
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn resume_on_a_directory_without_manifest_errors() {
        let base =
            std::env::temp_dir().join(format!("aaltune-cli-nomanifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let e = dispatch(&sv(&["tune", "--resume", base.to_str().unwrap()])).unwrap_err();
        assert!(e.contains("cannot resume"), "{e}");
        assert!(dispatch(&sv(&["tune", "--resume", "/nonexistent/run"])).is_err());
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn fault_flags_parse_and_gate() {
        let e =
            dispatch(&sv(&["tune", "alexnet", "--task", "0", "--fault-rate", "1.5"])).unwrap_err();
        assert!(e.contains("out of range"), "{e}");
        // A high fault rate with a tight cap aborts the task but exits 0
        // (the diagnostic is reported, not fatal).
        dispatch(&sv(&[
            "tune",
            "squeezenet",
            "--task",
            "0",
            "--n-trial",
            "80",
            "--method",
            "random",
            "--quiet",
            "--fault-rate",
            "0.9",
            "--max-retries",
            "0",
            "--max-fail-rate",
            "0.5",
        ]))
        .unwrap();
    }

    #[test]
    fn trace_on_missing_file_errors() {
        assert!(dispatch(&sv(&["trace", "/nonexistent/trace.jsonl"])).is_err());
    }

    #[test]
    fn compare_and_report_on_identical_seeds_pass_the_gate() {
        let base = std::env::temp_dir().join(format!("aaltune-cli-compare-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        for sub in ["a", "b"] {
            dispatch(&sv(&[
                "tune",
                "squeezenet",
                "--task",
                "0",
                "--n-trial",
                "30",
                "--method",
                "autotvm",
                "--quiet",
                "--out",
                base.join(sub).to_str().unwrap(),
            ]))
            .unwrap();
        }
        let run_a = base.join("a/squeezenet_v1.1-autotvm-seed0");
        let run_b = base.join("b/squeezenet_v1.1-autotvm-seed0");
        // Same seed + same config ⇒ identical trials ⇒ noise everywhere,
        // and the gate must not fire.
        let code = dispatch(&sv(&[
            "compare",
            run_a.to_str().unwrap(),
            run_b.to_str().unwrap(),
            "--fail-on-regress",
            "--resamples",
            "300",
        ]))
        .unwrap();
        assert_eq!(code, 0, "identical runs must not be flagged as regressions");
        // The report (with baseline) must land as one self-contained file.
        dispatch(&sv(&[
            "report",
            run_b.to_str().unwrap(),
            run_a.to_str().unwrap(),
            "--resamples",
            "300",
        ]))
        .unwrap();
        let html = std::fs::read_to_string(run_b.join("report.html")).unwrap();
        assert!(html.contains("<svg"));
        assert!(!html.contains("http://") && !html.contains("https://"));
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn compare_on_missing_dirs_errors() {
        assert!(dispatch(&sv(&["compare", "/nonexistent/a"])).is_err());
        assert!(dispatch(&sv(&["report"])).is_err());
    }

    #[test]
    fn tune_captures_model_quality_and_explain_renders() {
        let base = std::env::temp_dir().join(format!("aaltune-cli-explain-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let args = |out: &Path, extra: &[&str]| {
            let mut v = sv(&[
                "tune",
                "squeezenet",
                "--task",
                "0",
                "--n-trial",
                "80",
                "--method",
                "bted+bao",
                "--quiet",
                "--out",
                out.to_str().unwrap(),
            ]);
            v.extend(extra.iter().map(|s| (*s).to_string()));
            v
        };
        dispatch(&args(&base.join("cap"), &[])).unwrap();
        let run_name = "squeezenet_v1.1-bted+bao-seed0";
        let cap_run = base.join("cap").join(run_name);
        let records = read_model_quality(&cap_run.join(MODEL_QUALITY_FILE))
            .expect("capture is on by default and must leave a model_quality.jsonl");
        assert!(!records.is_empty());
        assert!(
            records.iter().any(|r| r.predicted_mean.is_some()),
            "the surrogate must have scored at least one proposal"
        );
        dispatch(&sv(&["explain", cap_run.to_str().unwrap()])).unwrap();

        // Opting out leaves no file, and `explain` says why.
        dispatch(&args(&base.join("blind"), &["--no-capture-model"])).unwrap();
        let blind_run = base.join("blind").join(run_name);
        assert!(!blind_run.join(MODEL_QUALITY_FILE).exists());
        let e = dispatch(&sv(&["explain", blind_run.to_str().unwrap()])).unwrap_err();
        assert!(e.contains(MODEL_QUALITY_FILE), "{e}");
        assert!(dispatch(&sv(&["explain", "/nonexistent/run"])).is_err());
        assert!(dispatch(&sv(&["explain"])).is_err());

        // Capture never perturbs the tuning loop: trial logs byte-identical.
        let log_of = |run: &Path| {
            std::fs::read_dir(run.join("logs"))
                .unwrap()
                .map(|e| e.unwrap().path())
                .find(|p| p.extension().is_some_and(|e| e == "jsonl"))
                .expect("task log exists")
        };
        assert_eq!(
            std::fs::read(log_of(&cap_run)).unwrap(),
            std::fs::read(log_of(&blind_run)).unwrap(),
            "trial logs must be byte-identical with capture on or off"
        );
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn model_rank_corr_regression_gates_with_exit_code_2() {
        let fixtures =
            Path::new(env!("CARGO_MANIFEST_DIR")).join("../trace-analysis/tests/fixtures");
        // Identical trial logs, inverted model capture: only the
        // rank-correlation gate can flag this pair.
        let gated = dispatch(&sv(&[
            "compare",
            fixtures.join("base").to_str().unwrap(),
            fixtures.join("model_regressed").to_str().unwrap(),
            "--fail-on-regress",
            "--resamples",
            "500",
        ]))
        .unwrap();
        assert_eq!(gated, EXIT_REGRESSED);
    }

    #[test]
    fn fail_on_regress_gates_with_exit_code_2() {
        // Pinned against the committed golden fixtures (regenerate with
        // `cargo run -p trace-analysis --example gen_fixtures`).
        let fixtures =
            Path::new(env!("CARGO_MANIFEST_DIR")).join("../trace-analysis/tests/fixtures");
        let base = fixtures.join("base");
        let regressed = fixtures.join("regressed");
        let gated = dispatch(&sv(&[
            "compare",
            base.to_str().unwrap(),
            regressed.to_str().unwrap(),
            "--fail-on-regress",
            "--resamples",
            "500",
        ]))
        .unwrap();
        assert_eq!(gated, EXIT_REGRESSED);
        // Without the gate the regression is still reported, but exits 0.
        let ungated = dispatch(&sv(&[
            "compare",
            base.to_str().unwrap(),
            regressed.to_str().unwrap(),
            "--resamples",
            "500",
        ]))
        .unwrap();
        assert_eq!(ungated, 0);
    }

    /// Reads back the single task log of a run directory.
    fn only_log(run: &Path) -> TuningLog {
        let mut entries: Vec<_> =
            std::fs::read_dir(run.join("logs")).unwrap().map(|e| e.unwrap().path()).collect();
        assert_eq!(entries.len(), 1);
        let f = std::fs::File::open(entries.remove(0)).unwrap();
        TuningLog::read_jsonl(std::io::BufReader::new(f)).unwrap()
    }

    fn tune_with_db(base: &Path, db: &Path, extra: &[&str]) {
        let mut args = sv(&[
            "tune",
            "squeezenet",
            "--task",
            "0",
            "--n-trial",
            "40",
            "--method",
            "autotvm",
            "--quiet",
            "--out",
            base.to_str().unwrap(),
            "--db",
            db.to_str().unwrap(),
        ]);
        args.extend(sv(extra));
        assert_eq!(dispatch(&args).unwrap(), 0);
    }

    #[test]
    fn db_warm_reruns_reach_the_cold_best_in_at_most_half_the_trials() {
        let root = std::env::temp_dir().join(format!("aaltune-cli-db-{}", std::process::id()));
        let db = root.join("db");
        let cold_base = root.join("cold");
        tune_with_db(&cold_base, &db, &[]);
        let cold = only_log(&cold_base.join("squeezenet_v1.1-autotvm-seed0"));
        let cold_best = cold.best_gflops();
        assert!(cold.records.len() >= 2 && cold_best > 0.0);

        // Serve policy (default): an exact hit is one verifying measurement
        // that reproduces the cold best exactly (the simulator is
        // deterministic per config).
        let serve_base = root.join("serve");
        tune_with_db(&serve_base, &db, &[]);
        let serve_run = serve_base.join("squeezenet_v1.1-autotvm-seed0");
        let served = only_log(&serve_run);
        assert_eq!(served.records.len(), 1, "serve = one verifying measurement");
        assert!((served.best_gflops() - cold_best).abs() < 1e-9);
        assert!(served.records.len() <= cold.records.len() / 2);
        // The hit and warm-start counters land in the run's trace.
        let trace = std::fs::read_to_string(serve_run.join("trace.jsonl")).unwrap();
        assert!(trace.contains("db.hit"), "db.hit counter must be flushed into the trace");
        assert!(trace.contains("db.warm_start"));

        // Warm policy: the cached best joins the initial set, so the rerun
        // reaches the cold best within far fewer trials than the cold run.
        let warm_base = root.join("warm");
        tune_with_db(&warm_base, &db, &["--db-policy", "warm"]);
        let warm = only_log(&warm_base.join("squeezenet_v1.1-autotvm-seed0"));
        let to_best = warm
            .records
            .iter()
            .position(|r| r.best_gflops >= cold_best - 1e-9)
            .expect("warm rerun must reach the cold best")
            + 1;
        assert!(
            to_best <= cold.records.len() / 2,
            "warm rerun took {to_best} trials to reach the cold best; cold took {}",
            cold.records.len()
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn db_subcommands_stats_fsck_export_and_repair_cycle() {
        let root = std::env::temp_dir().join(format!("aaltune-cli-dbcmd-{}", std::process::id()));
        let db = root.join("db");
        tune_with_db(&root.join("run"), &db, &[]);
        let db_s = db.to_str().unwrap();
        assert_eq!(dispatch(&sv(&["db", "stats", db_s])).unwrap(), 0);
        assert_eq!(dispatch(&sv(&["db", "export", db_s])).unwrap(), 0);
        assert_eq!(dispatch(&sv(&["db", "fsck", db_s])).unwrap(), 0);

        // A corrupt committed line makes fsck exit 1; --repair quarantines
        // it and rebuilds, after which the store checks healthy again.
        let seg = std::fs::read_dir(db.join("segments")).unwrap().next().unwrap().unwrap().path();
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes.extend_from_slice(b"deadbeef {\"not\":\"a record\"}\n");
        bytes.extend_from_slice(b"00000000 {\"torn\"");
        std::fs::write(&seg, &bytes).unwrap();
        assert_eq!(dispatch(&sv(&["db", "fsck", db_s])).unwrap(), 1);
        assert_eq!(dispatch(&sv(&["db", "fsck", db_s, "--repair"])).unwrap(), 0);
        assert_eq!(dispatch(&sv(&["db", "fsck", db_s])).unwrap(), 0);
        assert!(db.join("quarantine.jsonl").is_file());

        assert!(dispatch(&sv(&["db", "vacuum", db_s])).is_err());
        assert!(dispatch(&sv(&["db", "stats"])).is_err(), "missing path is a usage error");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn db_policy_without_db_is_a_usage_error() {
        let e = dispatch(&sv(&["tune", "squeezenet", "--db-policy", "warm"])).unwrap_err();
        assert!(e.contains("--db-policy requires --db"), "{e}");
        let bad = dispatch(&sv(&["tune", "squeezenet", "--db", "/tmp/x", "--db-policy", "nope"]))
            .unwrap_err();
        assert!(bad.contains("unknown --db-policy"), "{bad}");
    }
}

//! CLI subcommands.

use crate::opts::{device_by_name, method_by_name, model_by_name, Cli};
use active_learning::{tune_model, tune_task, RunDir, RunManifest, TuneOptions};
use dnn_graph::task::extract_tasks;
use gpu_sim::SimMeasurer;
use schedule::template::space_for_task;
use std::path::{Path, PathBuf};

/// Usage text printed on errors.
pub const USAGE: &str = "\
usage:
  aaltune tasks   <model>
  aaltune dot     <model> [--fused true]
  aaltune devices
  aaltune tune    <model> [--task N] [--method M] [--n-trial N] [--seed S]
                          [--device D] [--log FILE] [--out DIR]
                          [--trace FILE] [--quiet] [--json]
  aaltune deploy  <model> [--method M] [--n-trial N] [--runs R] [--seed S]
                          [--device D] [--trace FILE] [--quiet] [--json]
  aaltune trace   <trace.jsonl>
models:  alexnet resnet18 resnet34 vgg16 vgg19 mobilenet_v1 squeezenet_v1.1
methods: random autotvm bted bted+bao (default)
devices: gtx1080ti (default) v100 jetson
tracing: --trace writes a JSONL telemetry trace (`aaltune trace` summarizes
         it); --out creates a per-run results dir with manifest, logs, and
         trace; --quiet silences progress; --json emits progress as JSON";

/// Parses and runs one invocation.
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, names, or values.
pub fn dispatch(args: &[String]) -> Result<(), String> {
    let cli = Cli::parse(args)?;
    match cli.positional.first().map(String::as_str) {
        Some("tasks") => tasks(&cli),
        Some("dot") => dot(&cli),
        Some("devices") => {
            devices();
            Ok(())
        }
        Some("tune") => tune(&cli),
        Some("deploy") => deploy(&cli),
        Some("trace") => trace(&cli),
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("no command given".to_string()),
    }
}

/// Installs the global telemetry pipeline from `--trace`/`--quiet`/`--json`,
/// preferring an explicit `--trace` path over the run directory's default.
fn install_telemetry(cli: &Cli, run_dir: Option<&RunDir>) -> Result<telemetry::Telemetry, String> {
    let trace: Option<PathBuf> =
        cli.flag_str("trace").map(PathBuf::from).or_else(|| run_dir.map(RunDir::trace_path));
    telemetry::install_pipeline(
        trace.as_deref(),
        cli.flag_present("quiet"),
        cli.flag_present("json"),
    )
    .map_err(|e| format!("cannot create trace file: {e}"))
}

/// Flushes counters/histograms into the trace and uninstalls the pipeline.
fn finish_telemetry(tel: &telemetry::Telemetry) {
    tel.flush();
    telemetry::set_global(telemetry::Telemetry::disabled());
}

fn model_arg(cli: &Cli) -> Result<dnn_graph::Graph, String> {
    let name = cli.positional.get(1).ok_or("missing <model> argument")?;
    model_by_name(name)
}

fn options(cli: &Cli) -> Result<TuneOptions, String> {
    let n_trial: usize = cli.flag("n-trial", 512)?;
    Ok(TuneOptions {
        n_trial,
        early_stopping: 400.min(n_trial),
        seed: cli.flag("seed", 0)?,
        ..TuneOptions::default()
    })
}

fn measurer(cli: &Cli) -> Result<SimMeasurer, String> {
    let device = device_by_name(cli.flag_str("device").unwrap_or("gtx1080ti"))?;
    Ok(SimMeasurer::new(device))
}

fn tasks(cli: &Cli) -> Result<(), String> {
    let model = model_arg(cli)?;
    let tasks = extract_tasks(&model);
    println!("{}: {} tuning tasks", model.name, tasks.len());
    for t in &tasks {
        let space = space_for_task(t);
        println!("  {:<18} {:>14} configs   {}", t.name, space.len(), t.workload);
    }
    Ok(())
}

fn dot(cli: &Cli) -> Result<(), String> {
    let model = model_arg(cli)?;
    let fused: bool = cli.flag("fused", false)?;
    if fused {
        let groups = dnn_graph::fusion::fuse(&model);
        print!("{}", dnn_graph::dot::to_dot_fused(&model, &groups));
    } else {
        print!("{}", dnn_graph::dot::to_dot(&model));
    }
    Ok(())
}

fn devices() {
    for d in [
        gpu_sim::GpuDevice::gtx_1080_ti(),
        gpu_sim::GpuDevice::tesla_v100(),
        gpu_sim::GpuDevice::jetson_tx2(),
    ] {
        println!(
            "{:<14} {:>3} SMs  {:>6.1} GB/s  {:>5.1} TFLOPS",
            d.name,
            d.num_sms,
            d.dram_bw_gbps,
            d.peak_flops() / 1e12
        );
    }
}

fn tune(cli: &Cli) -> Result<(), String> {
    let model = model_arg(cli)?;
    let method = method_by_name(cli.flag_str("method").unwrap_or("bted+bao"))?;
    let opts = options(cli)?;
    let m = measurer(cli)?;

    // --out DIR: self-describing per-run results directory.
    let run_dir = cli
        .flag_str("out")
        .map(|base| {
            let name = format!("{}-{method}-seed{}", model.name, opts.seed);
            RunDir::create(Path::new(base).join(name))
                .map_err(|e| format!("cannot create run directory: {e}"))
        })
        .transpose()?;
    let tel = install_telemetry(cli, run_dir.as_ref())?;

    let tasks = extract_tasks(&model);
    let selected: Vec<usize> = match cli.flag_str("task") {
        Some(s) => {
            let i: usize = s.parse().map_err(|_| format!("invalid --task index `{s}`"))?;
            if i >= tasks.len() {
                finish_telemetry(&tel);
                return Err(format!("--task {i} out of range (model has {})", tasks.len()));
            }
            vec![i]
        }
        None => (0..tasks.len()).collect(),
    };
    let mut logs = Vec::new();
    for i in selected {
        let r = tune_task(&tasks[i], &m, method, &opts);
        tel.report(|| {
            format!(
                "{:<18} {:>9.1} GFLOPS in {:>4} measurements ({method})",
                r.task_name, r.best_gflops, r.num_measured
            )
        });
        logs.push(r.log);
    }

    if let Some(dir) = &run_dir {
        let manifest = RunManifest {
            model: model.name.clone(),
            method: method.to_string(),
            tasks: logs.iter().map(|l| l.task_name.clone()).collect(),
            seed: opts.seed,
            options: opts,
        };
        dir.write_manifest(&manifest).map_err(|e| format!("cannot write manifest: {e}"))?;
        for log in &logs {
            dir.write_log(log).map_err(|e| format!("cannot write log: {e}"))?;
        }
        tel.report(|| format!("wrote run artifacts to {}", dir.path().display()));
    }
    if let Some(path) = cli.flag_str("log") {
        let mut f =
            std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        for log in &logs {
            log.write_jsonl(&mut f).map_err(|e| format!("write failed: {e}"))?;
        }
        tel.report(|| format!("wrote {} logs to {path}", logs.len()));
    }
    finish_telemetry(&tel);
    Ok(())
}

fn deploy(cli: &Cli) -> Result<(), String> {
    let model = model_arg(cli)?;
    let method = method_by_name(cli.flag_str("method").unwrap_or("bted+bao"))?;
    let opts = options(cli)?;
    let runs: usize = cli.flag("runs", 600)?;
    let m = measurer(cli)?;
    let tel = install_telemetry(cli, None)?;
    let r = tune_model(&model, &m, method, &opts, runs);
    tel.report(|| {
        format!(
            "{} ({method}): latency {:.4} ms  variance {:.4}  min {:.4}  max {:.4}  \
             ({} measurements)",
            r.model_name,
            r.latency.mean_ms,
            r.latency.variance,
            r.latency.min_ms,
            r.latency.max_ms,
            r.total_measurements
        )
    });
    finish_telemetry(&tel);
    Ok(())
}

fn trace(cli: &Cli) -> Result<(), String> {
    let path = cli.positional.get(1).ok_or("missing <trace.jsonl> argument")?;
    let f = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let summary = telemetry::TraceSummary::from_reader(std::io::BufReader::new(f))
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    print!("{}", summary.render());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn unknown_command_errors() {
        assert!(dispatch(&sv(&["frobnicate"])).is_err());
        assert!(dispatch(&sv(&[])).is_err());
    }

    #[test]
    fn tasks_lists_mobilenet() {
        dispatch(&sv(&["tasks", "mobilenet_v1"])).unwrap();
    }

    #[test]
    fn dot_export_runs() {
        dispatch(&sv(&["dot", "alexnet"])).unwrap();
        dispatch(&sv(&["dot", "resnet18", "--fused", "true"])).unwrap();
    }

    #[test]
    fn devices_prints() {
        dispatch(&sv(&["devices"])).unwrap();
    }

    #[test]
    fn tune_single_task_smoke() {
        dispatch(&sv(&[
            "tune",
            "squeezenet",
            "--task",
            "0",
            "--n-trial",
            "40",
            "--method",
            "autotvm",
        ]))
        .unwrap();
    }

    #[test]
    fn tune_task_out_of_range_errors() {
        let e = dispatch(&sv(&["tune", "alexnet", "--task", "99"])).unwrap_err();
        assert!(e.contains("out of range"));
    }

    #[test]
    fn tune_writes_run_dir_and_trace_summarizes() {
        let base = std::env::temp_dir().join(format!("aaltune-cli-run-{}", std::process::id()));
        dispatch(&sv(&[
            "tune",
            "squeezenet",
            "--task",
            "0",
            "--n-trial",
            "40",
            "--method",
            "autotvm",
            "--quiet",
            "--out",
            base.to_str().unwrap(),
        ]))
        .unwrap();
        let run = base.join("squeezenet_v1.1-autotvm-seed0");
        assert!(run.join("manifest.json").is_file());
        assert!(run.join("trace.jsonl").is_file());
        let logs: Vec<_> = std::fs::read_dir(run.join("logs")).unwrap().collect();
        assert_eq!(logs.len(), 1);
        // The recorded trace must summarize via the `trace` subcommand.
        dispatch(&sv(&["trace", run.join("trace.jsonl").to_str().unwrap()])).unwrap();
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn trace_on_missing_file_errors() {
        assert!(dispatch(&sv(&["trace", "/nonexistent/trace.jsonl"])).is_err());
    }
}

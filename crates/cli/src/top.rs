//! `aaltune top` — a refreshing terminal dashboard over a run directory's
//! live metrics.
//!
//! The dashboard is read-only: it renders whatever the run's
//! [`SnapshotWriter`](telemetry::SnapshotWriter) last published to
//! `metrics.snapshot.json` (atomically, so a frame never sees a torn file)
//! plus the static facts in `manifest.json`. It never opens the trace or
//! the trial logs, so watching a run cannot perturb it.
//!
//! Modes:
//!
//! * default — clear-and-repaint every `--refresh-ms` until the manifest
//!   records a final wall time (the run finished);
//! * `--once` — print a single frame without ANSI escapes (scripts, CI);
//! * `--check` — validate the snapshot schema and the Prometheus export,
//!   exiting non-zero on malformed or empty files (the CI `live-smoke`
//!   job's probe).

use crate::opts::Cli;
use active_learning::RunManifest;
use std::fmt::Write as _;
use std::path::Path;
use telemetry::{MetricsSnapshot, SNAPSHOT_SCHEMA_VERSION};
use trace_analysis::STALE_AFTER_MS;

/// Default dashboard refresh period.
const DEFAULT_REFRESH_MS: u64 = 1000;
/// Floor on `--refresh-ms`, so a typo cannot busy-spin on the filesystem.
const MIN_REFRESH_MS: u64 = 50;

/// Entry point for `aaltune top RUN_DIR`.
///
/// # Errors
///
/// Returns a message when the directory is missing, or (under `--check`)
/// when the snapshot files are absent, malformed, or empty.
pub fn top(cli: &Cli) -> Result<(), String> {
    let dir = cli.positional.get(1).map(Path::new).ok_or("missing RUN_DIR argument")?;
    if !dir.is_dir() {
        return Err(format!("{} is not a run directory", dir.display()));
    }
    if cli.flag_present("check") {
        return check(dir);
    }
    let refresh = cli.flag::<u64>("refresh-ms", DEFAULT_REFRESH_MS)?.max(MIN_REFRESH_MS);
    let once = cli.flag_present("once");
    loop {
        let frame = frame(dir);
        if once {
            print!("{frame}");
            return Ok(());
        }
        // Full repaint: clear screen + cursor home, then the frame.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        if read_manifest(dir).is_some_and(|m| m.wall_time_s.is_some()) {
            // The run finished and the frame above reflects its final
            // snapshot (the writer publishes once more before the manifest
            // gains a wall time) — stop refreshing.
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(refresh));
    }
}

/// Validates the snapshot pair for CI: parseable, schema we understand,
/// and actually carrying metrics.
fn check(dir: &Path) -> Result<(), String> {
    let snap_path = dir.join(telemetry::SNAPSHOT_FILE);
    let text = std::fs::read_to_string(&snap_path)
        .map_err(|e| format!("cannot read {}: {e}", snap_path.display()))?;
    let snap: MetricsSnapshot = serde_json::from_str(&text)
        .map_err(|e| format!("malformed {}: {e}", snap_path.display()))?;
    if snap.schema_version > SNAPSHOT_SCHEMA_VERSION {
        return Err(format!(
            "{}: schema v{} is newer than supported v{SNAPSHOT_SCHEMA_VERSION}",
            snap_path.display(),
            snap.schema_version
        ));
    }
    if snap.is_empty() {
        return Err(format!("{}: snapshot carries no metrics", snap_path.display()));
    }
    let prom_path = dir.join(telemetry::PROM_FILE);
    let prom = std::fs::read_to_string(&prom_path)
        .map_err(|e| format!("cannot read {}: {e}", prom_path.display()))?;
    let samples = telemetry::parse_prometheus(&prom)
        .map_err(|e| format!("malformed {}: {e}", prom_path.display()))?;
    if samples.is_empty() {
        return Err(format!("{}: no samples", prom_path.display()));
    }
    println!(
        "{}: snapshot v{} ok ({} counters, {} gauges, {} histograms); \
         prometheus ok ({} samples)",
        dir.display(),
        snap.schema_version,
        snap.counters.len(),
        snap.gauges.len(),
        snap.histograms.len(),
        samples.len()
    );
    Ok(())
}

fn read_manifest(dir: &Path) -> Option<RunManifest> {
    let text = std::fs::read_to_string(dir.join("manifest.json")).ok()?;
    serde_json::from_str(&text).ok()
}

fn read_snapshot(dir: &Path) -> Option<MetricsSnapshot> {
    let text = std::fs::read_to_string(dir.join(telemetry::SNAPSHOT_FILE)).ok()?;
    serde_json::from_str(&text).ok()
}

/// One dashboard frame for `dir` as of now. Missing snapshot renders a
/// waiting banner instead of failing: `top` may be started before the run.
fn frame(dir: &Path) -> String {
    let run_id = dir
        .file_name()
        .map_or_else(|| dir.display().to_string(), |n| n.to_string_lossy().into_owned());
    match read_snapshot(dir) {
        None => format!(
            "{run_id}: waiting for {} (is the run using --snapshot-interval-ms > 0?)\n",
            telemetry::SNAPSHOT_FILE
        ),
        Some(snap) => {
            render(&run_id, &snap, read_manifest(dir).as_ref(), telemetry::registry::unix_ms_now())
        }
    }
}

/// Formats seconds compactly: `42s`, `3m10s`, `1h02m`.
fn fmt_secs(secs: f64) -> String {
    if !secs.is_finite() || secs < 0.0 {
        return "-".to_string();
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let s = secs.round() as u64;
    if s < 60 {
        format!("{s}s")
    } else if s < 3600 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    }
}

/// Renders a full dashboard frame from a snapshot (pure — testable with a
/// pinned `now_ms`).
#[allow(clippy::cast_precision_loss)]
fn render(
    run_id: &str,
    snap: &MetricsSnapshot,
    manifest: Option<&RunManifest>,
    now_ms: u64,
) -> String {
    let mut out = String::new();
    let uptime_s = snap.uptime_us as f64 / 1e6;

    // Header: identity + liveness.
    let status = match manifest {
        Some(m) if m.wall_time_s.is_some() => "done".to_string(),
        _ => {
            let age_ms = now_ms.saturating_sub(snap.unix_ms);
            if age_ms <= STALE_AFTER_MS {
                format!("live ({:.1}s ago)", age_ms as f64 / 1e3)
            } else {
                format!("STALE — no snapshot for {}", fmt_secs(age_ms as f64 / 1e3))
            }
        }
    };
    match manifest {
        Some(m) => {
            let _ =
                writeln!(out, "{run_id} — {} / {} seed {} — {status}", m.model, m.method, m.seed);
        }
        None => {
            let _ = writeln!(out, "{run_id} — {status}");
        }
    }

    // Progress: trials, rate, ETA against the manifest's budget.
    let trials = snap.counter(telemetry::stream::TRIALS_COUNTER);
    let tasks_done = snap.counter(telemetry::stream::TASKS_DONE_COUNTER);
    let rate = if uptime_s > 0.0 { trials as f64 / uptime_s } else { 0.0 };
    let _ = write!(out, "trials   {trials}");
    if let Some(m) = manifest {
        let planned = (m.tasks.len() * m.options.n_trial) as u64;
        let _ = write!(out, "/{planned}");
        let _ = write!(out, "   {rate:.1} trials/s");
        // Upper bound: early stopping can finish tasks under budget.
        let eta = if rate > 0.0 && m.wall_time_s.is_none() {
            format!("ETA <={}", fmt_secs(planned.saturating_sub(trials) as f64 / rate))
        } else {
            "ETA -".to_string()
        };
        let _ = write!(out, "   {eta}   tasks {tasks_done}/{} done", m.tasks.len());
    } else {
        let _ = write!(out, "   {rate:.1} trials/s   tasks {tasks_done} done");
    }
    let current = snap.labels.get(telemetry::stream::CURRENT_TASK_LABEL);
    if let Some(task) = current.filter(|t| !t.is_empty()) {
        let _ = write!(out, "   tuning {task}");
    }
    let _ = writeln!(out, "   up {}", fmt_secs(uptime_s));

    // Executor: queue depth, busy workers, device occupancy.
    let _ = writeln!(
        out,
        "executor queues build {:.0} run {:.0}   workers build {:.0} run {:.0} busy",
        snap.gauge("exec.queue.build.depth.now"),
        snap.gauge("exec.queue.run.depth.now"),
        snap.gauge("exec.workers.build.busy.now"),
        snap.gauge("exec.workers.run.busy.now"),
    );
    let devices = device_occupancy(snap);
    if !devices.is_empty() {
        let busy = snap.gauge("exec.devices.busy.now");
        let map: String = devices.iter().map(|&b| if b { '#' } else { '.' }).collect();
        let _ = writeln!(out, "devices  {busy:.0}/{} busy  [{map}]", devices.len());
    }

    // Measurement health: fault/retry/quarantine rates.
    let attempts = snap.counter("measure.attempts");
    let failed = snap.counter("measure.failed");
    let fail_pct = if attempts > 0 { 100.0 * failed as f64 / attempts as f64 } else { 0.0 };
    let _ = writeln!(
        out,
        "health   attempts {attempts}  ok {}  failed {failed} ({fail_pct:.1}%)  \
         retries {}  quarantined {}  faults {}",
        snap.counter("measure.ok"),
        snap.counter("measure.retry"),
        snap.counter("measure.quarantine"),
        snap.counter("measure.fault"),
    );

    // Per-task table from the `task.<name>.best_gflops` / `.trials` gauges.
    let tasks = per_task(snap);
    if !tasks.is_empty() {
        let _ = writeln!(out, "{:<28} {:>12} {:>8}", "task", "best GFLOPS", "trials");
        for (name, best, task_trials) in tasks {
            let marker = if current.is_some_and(|c| c == &name) { " <- tuning" } else { "" };
            let _ = writeln!(out, "{name:<28} {best:>12.1} {task_trials:>8.0}{marker}");
        }
    }
    out
}

/// Per-device busy flags, ordered by device id, from the
/// `exec.device.<id>.busy.now` gauges.
fn device_occupancy(snap: &MetricsSnapshot) -> Vec<bool> {
    let mut by_id: Vec<(usize, bool)> = snap
        .gauges
        .iter()
        .filter_map(|(name, &v)| {
            let id = name
                .strip_prefix("exec.device.")
                .and_then(|rest| rest.strip_suffix(".busy.now"))?;
            Some((id.parse().ok()?, v > 0.5))
        })
        .collect();
    by_id.sort_unstable();
    by_id.into_iter().map(|(_, b)| b).collect()
}

/// `(task name, best GFLOPS, trials)` rows from the per-task gauges.
fn per_task(snap: &MetricsSnapshot) -> Vec<(String, f64, f64)> {
    snap.gauges
        .iter()
        .filter_map(|(name, &best)| {
            let task = name.strip_prefix("task.")?.strip_suffix(".best_gflops")?;
            let trials = snap.gauge(&format!("task.{task}.trials"));
            Some((task.to_string(), best, trials))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::MetricsRegistry;

    fn snap_with_run() -> MetricsSnapshot {
        let reg = MetricsRegistry::new();
        reg.inc(telemetry::stream::TRIALS_COUNTER, 120);
        reg.inc(telemetry::stream::TASKS_DONE_COUNTER, 1);
        reg.inc("measure.attempts", 130);
        reg.inc("measure.ok", 120);
        reg.inc("measure.failed", 10);
        reg.inc("measure.retry", 6);
        reg.set_label(telemetry::stream::CURRENT_TASK_LABEL, "sq.T2");
        reg.gauge_set("exec.queue.build.depth.now", 3.0);
        reg.gauge_set("exec.queue.run.depth.now", 1.0);
        reg.gauge_set("exec.workers.build.busy.now", 2.0);
        reg.gauge_set("exec.workers.run.busy.now", 4.0);
        reg.gauge_set("exec.devices.busy.now", 2.0);
        reg.gauge_set("exec.device.0.busy.now", 1.0);
        reg.gauge_set("exec.device.1.busy.now", 0.0);
        reg.gauge_set("exec.device.2.busy.now", 1.0);
        reg.gauge_set("task.sq.T1.best_gflops", 88.5);
        reg.gauge_set("task.sq.T1.trials", 64.0);
        reg.gauge_set("task.sq.T2.best_gflops", 40.2);
        reg.gauge_set("task.sq.T2.trials", 56.0);
        let mut snap = reg.snapshot();
        snap.uptime_us = 12_000_000; // 12 s in → 10 trials/s
        snap
    }

    fn manifest() -> RunManifest {
        RunManifest {
            model: "squeezenet_v1.1".into(),
            method: "autotvm".into(),
            tasks: vec!["sq.T1".into(), "sq.T2".into()],
            seed: 0,
            options: active_learning::TuneOptions { n_trial: 100, ..Default::default() },
            schema_version: Some(active_learning::MANIFEST_SCHEMA_VERSION),
            git_describe: None,
            wall_time_s: None,
            device: None,
            fault: None,
            resumed: None,
            workers: Some(4),
            devices: Some(3),
            db: None,
        }
    }

    #[test]
    fn render_shows_progress_executor_health_and_tasks() {
        let snap = snap_with_run();
        let frame = render("sq-run", &snap, Some(&manifest()), snap.unix_ms + 400);
        assert!(frame.contains("sq-run — squeezenet_v1.1 / autotvm seed 0 — live"), "{frame}");
        assert!(frame.contains("trials   120/200"), "{frame}");
        assert!(frame.contains("10.0 trials/s"), "{frame}");
        assert!(frame.contains("ETA <=8s"), "{frame}");
        assert!(frame.contains("tasks 1/2 done"), "{frame}");
        assert!(frame.contains("tuning sq.T2"), "{frame}");
        assert!(frame.contains("queues build 3 run 1"), "{frame}");
        assert!(frame.contains("workers build 2 run 4 busy"), "{frame}");
        assert!(frame.contains("devices  2/3 busy  [#.#]"), "{frame}");
        assert!(frame.contains("failed 10 (7.7%)"), "{frame}");
        assert!(frame.contains("retries 6"), "{frame}");
        assert!(frame.contains("sq.T1"), "{frame}");
        assert!(frame.contains("88.5"), "{frame}");
        assert!(frame.contains("<- tuning"), "{frame}");
    }

    #[test]
    fn render_classifies_stale_and_done() {
        let snap = snap_with_run();
        let stale = render("r", &snap, Some(&manifest()), snap.unix_ms + STALE_AFTER_MS + 65_000);
        assert!(stale.contains("STALE"), "{stale}");
        let mut done = manifest();
        done.wall_time_s = Some(3.5);
        let frame = render("r", &snap, Some(&done), snap.unix_ms);
        assert!(frame.contains("— done"), "{frame}");
        assert!(frame.contains("ETA -"), "{frame}");
        // No manifest at all still renders.
        let bare = render("r", &snap, None, snap.unix_ms);
        assert!(bare.contains("trials   120   10.0 trials/s"), "{bare}");
    }

    #[test]
    fn fmt_secs_scales() {
        assert_eq!(fmt_secs(5.2), "5s");
        assert_eq!(fmt_secs(190.0), "3m10s");
        assert_eq!(fmt_secs(3725.0), "1h02m");
        assert_eq!(fmt_secs(f64::NAN), "-");
        assert_eq!(fmt_secs(-1.0), "-");
    }
}

//! `aaltune` — command-line auto-tuner.
//!
//! ```text
//! aaltune tasks   <model>
//! aaltune devices
//! aaltune tune    <model> [--task N] [--method autotvm|bted|bted+bao|random]
//!                         [--n-trial N] [--seed S] [--device NAME] [--log FILE]
//!                         [--out DIR] [--trace FILE] [--quiet] [--json]
//! aaltune deploy  <model> [--method M] [--n-trial N] [--runs R] [--seed S]
//!                         [--device NAME] [--trace FILE] [--quiet] [--json]
//! aaltune trace   <trace.jsonl>
//! ```
//!
//! Models: `alexnet`, `resnet18`, `vgg16`, `mobilenet_v1`, `squeezenet_v1.1`.
//!
//! `--trace` records a JSONL telemetry trace of the whole tuning loop;
//! `aaltune trace` prints its per-phase time breakdown, counters, and
//! histogram quantiles. `--out` collects manifest + logs + trace in a
//! per-run directory.

mod commands;
mod opts;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}

//! `aaltune` — command-line auto-tuner.
//!
//! ```text
//! aaltune tasks   <model>
//! aaltune devices
//! aaltune tune    <model> [--task N] [--method autotvm|bted|bted+bao|random]
//!                         [--n-trial N] [--seed S] [--device NAME] [--log FILE]
//!                         [--out DIR] [--trace FILE] [--quiet] [--json]
//! aaltune deploy  <model> [--method M] [--n-trial N] [--runs R] [--seed S]
//!                         [--device NAME] [--trace FILE] [--quiet] [--json]
//! aaltune explain RUN_DIR
//! aaltune trace   <trace.jsonl>
//! aaltune runs    [DIR] [--model M] [--method M] [--kind K]
//! aaltune compare <BASE_RUN> <CAND_RUN> [--fail-on-regress] [--alpha A]
//!                         [--resamples N] [--min-effect PCT] [--boot-seed S]
//! aaltune report  <RUN> [BASELINE] [--html FILE]
//! ```
//!
//! Models: `alexnet`, `resnet18`, `vgg16`, `mobilenet_v1`, `squeezenet_v1.1`.
//!
//! `--trace` records a JSONL telemetry trace of the whole tuning loop;
//! `aaltune trace` prints its per-phase time breakdown, counters, and
//! histogram quantiles. `--out` collects manifest + logs + trace in a
//! per-run directory and registers it in `DIR/index.jsonl`; `runs` lists
//! that registry, `compare` bootstraps per-task GFLOPS deltas between two
//! run directories (exit code 2 on a gated regression), and `report`
//! renders a self-contained HTML tuning report. `tune` also captures the
//! surrogate's per-proposal predictions into `model_quality.jsonl`
//! (`--no-capture-model` to opt out); `explain` scores them round by round.

mod commands;
mod opts;
mod top;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}

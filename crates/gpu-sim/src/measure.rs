//! The measurement interface between tuners and "hardware".
//!
//! Tuners never see the performance model directly — they submit a
//! configuration and get back a [`MeasureResult`], exactly like AutoTVM's
//! `LocalRunner` RPC round-trip. Invalid configurations (launch failures)
//! come back with `gflops == 0.0`, which is how AutoTVM records them too.

use crate::device::GpuDevice;
use crate::noise::seed_for;
use crate::perf::{predict, KernelPerf};
use dnn_graph::task::TuningTask;
use schedule::kernel::lower;
use schedule::{Config, ConfigSpace};
use serde::{Deserialize, Serialize};

/// What went wrong with a measurement, classified the way AutoTVM's
/// measure infrastructure classifies RPC round-trip failures.
///
/// The split that matters operationally is [`is_transient`]: transient
/// faults (timeouts, RPC flakes) may succeed on retry, persistent faults
/// (compile errors, launch crashes, lost devices) never will and the
/// configuration should be quarantined instead.
///
/// [`is_transient`]: MeasureErrorKind::is_transient
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MeasureErrorKind {
    /// Lowering/compilation rejected the configuration.
    CompileError,
    /// The kernel launched but crashed (or the launch itself was refused
    /// by the driver for resource limits).
    LaunchCrash,
    /// The trial exceeded its wall-clock budget.
    Timeout,
    /// A one-off infrastructure flake (RPC drop, board hiccup).
    TransientFlake,
    /// The device disappeared mid-measurement.
    DeviceLost,
}

impl MeasureErrorKind {
    /// True if retrying the same configuration can plausibly succeed.
    #[must_use]
    pub fn is_transient(self) -> bool {
        matches!(self, MeasureErrorKind::Timeout | MeasureErrorKind::TransientFlake)
    }

    /// Stable lowercase label (used in telemetry fields and reports).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MeasureErrorKind::CompileError => "compile_error",
            MeasureErrorKind::LaunchCrash => "launch_crash",
            MeasureErrorKind::Timeout => "timeout",
            MeasureErrorKind::TransientFlake => "transient_flake",
            MeasureErrorKind::DeviceLost => "device_lost",
        }
    }
}

impl std::fmt::Display for MeasureErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A typed measurement failure: a taxonomy kind plus human detail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasureError {
    /// Failure class.
    pub kind: MeasureErrorKind,
    /// Free-form diagnostic (the underlying error message).
    pub detail: String,
}

impl MeasureError {
    /// Builds an error of `kind` with a diagnostic message.
    pub fn new(kind: MeasureErrorKind, detail: impl Into<String>) -> Self {
        MeasureError { kind, detail: detail.into() }
    }

    /// True if retrying the same configuration can plausibly succeed.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        self.kind.is_transient()
    }
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

impl From<schedule::ScheduleError> for MeasureError {
    fn from(e: schedule::ScheduleError) -> Self {
        use schedule::ScheduleError as SE;
        // Resource-limit violations surface at launch time on real
        // hardware; everything else dies during lowering/compilation.
        let kind = match e {
            SE::InvalidThreadCount { .. }
            | SE::InvalidSharedMem { .. }
            | SE::InvalidRegisterCount { .. } => MeasureErrorKind::LaunchCrash,
            SE::IndexOutOfRange { .. } | SE::UnsupportedTask(_) => MeasureErrorKind::CompileError,
        };
        MeasureError::new(kind, e.to_string())
    }
}

/// Outcome of measuring one configuration on (simulated) hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasureResult {
    /// Mean achieved GFLOPS over the repeats (0.0 for failed launches).
    pub gflops: f64,
    /// Mean latency in seconds. Failed trials carry 0.0 and must be
    /// excluded from latency aggregation, never averaged in.
    pub latency_s: f64,
    /// Typed failure, if the measurement did not produce a timing.
    pub error: Option<MeasureError>,
}

impl MeasureResult {
    /// The zero-GFLOPS penalty result AutoTVM records for a failure.
    #[must_use]
    pub fn failed(error: MeasureError) -> Self {
        MeasureResult { gflops: 0.0, latency_s: 0.0, error: Some(error) }
    }

    /// True if the configuration launched successfully.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.error.is_none()
    }

    /// Failure class, if this result is a failure.
    #[must_use]
    pub fn error_kind(&self) -> Option<MeasureErrorKind> {
        self.error.as_ref().map(|e| e.kind)
    }
}

/// Anything that can evaluate a configuration of a task.
///
/// The paper's framework is explicitly agnostic to what sits behind this
/// interface (real silicon via RPC in the paper, [`SimMeasurer`] here).
pub trait Measurer {
    /// Deploys `config` for `task` and reports measured performance.
    fn measure(&self, task: &TuningTask, space: &ConfigSpace, config: &Config) -> MeasureResult;

    /// Measures a whole batch of configurations, returning results in
    /// submission order (`results[i]` belongs to `configs[i]`).
    ///
    /// The default walks the batch serially through [`Measurer::measure`],
    /// so every existing measurer works unchanged; a pooled executor
    /// overrides this to fan the batch out across workers while keeping
    /// the ordering contract. The tuning loop only ever talks to this
    /// method — per-config calls are an implementation detail of the
    /// serial default.
    fn measure_batch(
        &self,
        task: &TuningTask,
        space: &ConfigSpace,
        configs: &[Config],
    ) -> Vec<MeasureResult> {
        configs.iter().map(|c| self.measure(task, space, c)).collect()
    }

    /// Number of timed runs averaged per measurement.
    fn repeats(&self) -> usize {
        3
    }

    /// Configuration indices this measurer has quarantined for `task`
    /// (known to crash persistently). Tuners exclude these from future
    /// proposals. Plain measurers quarantine nothing.
    fn quarantined(&self, _task: &TuningTask) -> Vec<u64> {
        Vec::new()
    }
}

/// Simulated on-chip measurement: lowering + performance model + noise.
#[derive(Debug, Clone)]
pub struct SimMeasurer {
    device: GpuDevice,
    repeats: usize,
    /// Seed namespace separating measurement noise between experiment
    /// trials (the paper runs 10 trials per algorithm).
    trial_seed: u64,
}

impl SimMeasurer {
    /// Creates a measurer for `device` with AutoTVM's default of averaging
    /// 3 timed runs.
    #[must_use]
    pub fn new(device: GpuDevice) -> Self {
        SimMeasurer { device, repeats: 3, trial_seed: 0 }
    }

    /// Sets the number of timed runs averaged per measurement.
    #[must_use]
    pub fn with_repeats(mut self, repeats: usize) -> Self {
        assert!(repeats > 0, "need at least one timed run");
        self.repeats = repeats;
        self
    }

    /// Sets the trial seed (distinct trials observe different noise).
    #[must_use]
    pub fn with_trial_seed(mut self, seed: u64) -> Self {
        self.trial_seed = seed;
        self
    }

    /// The device being simulated.
    #[must_use]
    pub fn device(&self) -> &GpuDevice {
        &self.device
    }

    /// Noise-free performance of a configuration (used when assembling
    /// end-to-end deployments, where noise is re-sampled per run).
    ///
    /// # Errors
    ///
    /// Returns the lowering error for invalid configurations.
    pub fn true_perf(
        &self,
        task: &TuningTask,
        space: &ConfigSpace,
        config: &Config,
    ) -> Result<KernelPerf, schedule::ScheduleError> {
        let spec = lower(task, space, config)?;
        Ok(predict(&spec, &self.device, config.index))
    }
}

impl Measurer for SimMeasurer {
    fn measure(&self, task: &TuningTask, space: &ConfigSpace, config: &Config) -> MeasureResult {
        let tel = telemetry::global();
        let _span = tel.span("measure");
        // aal-lint: allow(wall-clock, reason = "host-side wall-time metric around the simulated kernel; observability only")
        let wall = std::time::Instant::now();
        let result = match self.true_perf(task, space, config) {
            Err(e) => MeasureResult::failed(MeasureError::from(e)),
            Ok(perf) => {
                let profile = perf.noise_profile();
                let seed = seed_for(&task.name, config.index ^ self.trial_seed.rotate_left(17));
                let mean_latency = (0..self.repeats as u64)
                    .map(|i| profile.sample(perf.latency_s, seed, i))
                    .sum::<f64>()
                    / self.repeats as f64;
                MeasureResult {
                    gflops: task.flops() as f64 / mean_latency / 1e9,
                    latency_s: mean_latency,
                    error: None,
                }
            }
        };
        tel.count("measure.total", 1);
        if result.is_valid() {
            tel.observe("measure.device_us", result.latency_s * 1e6);
        } else {
            tel.count("measure.invalid", 1);
        }
        tel.observe("measure.wall_us", wall.elapsed().as_secs_f64() * 1e6);
        result
    }

    fn repeats(&self) -> usize {
        self.repeats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::{models, task::extract_tasks};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use schedule::template::space_for_task;

    fn setup() -> (TuningTask, ConfigSpace, SimMeasurer) {
        let task = extract_tasks(&models::mobilenet_v1(1)).remove(0);
        let space = space_for_task(&task);
        (task, space, SimMeasurer::new(GpuDevice::gtx_1080_ti()))
    }

    #[test]
    fn measurement_is_deterministic_given_trial_seed() {
        let (task, space, m) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let cfg = space.sample(&mut rng);
        assert_eq!(m.measure(&task, &space, &cfg), m.measure(&task, &space, &cfg));
    }

    #[test]
    fn different_trials_see_different_noise() {
        let (task, space, m0) = setup();
        let m1 = m0.clone().with_trial_seed(99);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // Find a valid config so noise actually applies.
        let cfg = loop {
            let c = space.sample(&mut rng);
            if m0.measure(&task, &space, &c).is_valid() {
                break c;
            }
        };
        let a = m0.measure(&task, &space, &cfg);
        let b = m1.measure(&task, &space, &cfg);
        assert_ne!(a.gflops, b.gflops);
        // But they agree to within the noise scale.
        assert!((a.gflops - b.gflops).abs() / a.gflops < 0.5);
    }

    #[test]
    fn invalid_configs_report_zero_gflops() {
        let (task, space, m) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut saw_invalid = false;
        for _ in 0..500 {
            let cfg = space.sample(&mut rng);
            let r = m.measure(&task, &space, &cfg);
            if !r.is_valid() {
                assert_eq!(r.gflops, 0.0);
                // Failed trials must not poison latency aggregation.
                assert_eq!(r.latency_s, 0.0);
                let kind = r.error_kind().unwrap();
                assert!(!kind.is_transient(), "lowering failures are persistent");
                saw_invalid = true;
                break;
            }
        }
        assert!(saw_invalid, "expected some invalid configs in 500 samples");
    }

    #[test]
    fn more_repeats_reduce_measurement_scatter() {
        let (task, space, _) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let base = SimMeasurer::new(GpuDevice::gtx_1080_ti());
        let cfg = loop {
            let c = space.sample(&mut rng);
            if base.measure(&task, &space, &c).is_valid() {
                break c;
            }
        };
        // 200 trial seeds: enough that the averaging effect dominates the
        // sampling error of the scatter estimate itself (30 was borderline).
        let scatter = |reps: usize| {
            let xs: Vec<f64> = (0..200)
                .map(|t| {
                    SimMeasurer::new(GpuDevice::gtx_1080_ti())
                        .with_repeats(reps)
                        .with_trial_seed(t)
                        .measure(&task, &space, &cfg)
                        .gflops
                })
                .collect();
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
        };
        assert!(scatter(20) < scatter(1));
    }
}

//! Analytical GPU execution substrate.
//!
//! The paper measures every candidate configuration on an Nvidia GTX 1080 Ti
//! through TVM's RPC runner. This crate replaces that hardware loop with a
//! first-principles performance model of a CUDA GPU:
//!
//! * [`device`] — device descriptions (SM count, register file, shared
//!   memory, DRAM bandwidth, clocks) with a GTX 1080 Ti preset;
//! * [`occupancy`] — the CUDA occupancy calculation (blocks per SM limited
//!   by threads, registers, shared memory);
//! * [`perf`] — kernel latency from compute / DRAM / shared-memory
//!   bottlenecks, wave quantization, launch overhead, and a deterministic
//!   high-frequency ruggedness term;
//! * [`noise`] — config-dependent run-to-run measurement noise with a heavy
//!   tail for fragile (low-occupancy, imbalanced) configurations;
//! * [`measure`] — the [`measure::Measurer`] abstraction the tuners talk
//!   to, plus [`measure::SimMeasurer`] and the typed
//!   [`measure::MeasureError`] fault taxonomy;
//! * [`fault`] — deterministic seeded fault injection
//!   ([`fault::FaultInjectingMeasurer`]) for chaos testing;
//! * [`robust`] — the hardening policy layer
//!   ([`robust::RobustMeasurer`]): timeout budgets, bounded retry with
//!   backoff, and a crashing-config quarantine;
//! * [`model_exec`] — end-to-end model latency: composes tuned kernels and
//!   un-tuned auxiliary operators, sampling the 600-run latency
//!   distribution the paper reports in Table I.
//!
//! The substitution argument (see `DESIGN.md`): the tuning algorithms only
//! observe `(configuration → GFLOPS)` and latency distributions. The model
//! preserves the properties those algorithms exploit — local smoothness in
//! knob space, global ruggedness with rare sharp optima, hard validity
//! cliffs, and noise that shrinks as configurations improve.

pub mod analysis;
pub mod device;
pub mod fault;
pub mod measure;
pub mod model_exec;
pub mod noise;
pub mod occupancy;
pub mod perf;
pub mod robust;

pub use analysis::{analyze, KernelAnalysis};
pub use device::GpuDevice;
pub use fault::{FaultConfig, FaultInjectingMeasurer};
pub use measure::{MeasureError, MeasureErrorKind, MeasureResult, Measurer, SimMeasurer};
pub use model_exec::{measure_model, ModelDeployment, ModelLatency};
pub use perf::{Bottleneck, KernelPerf};
pub use robust::{Quarantine, RetryPolicy, RobustMeasurer};

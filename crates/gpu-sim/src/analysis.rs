//! Human-readable kernel analysis — the "why is this configuration slow"
//! breakdown an engineer consults when a tuned schedule underperforms.

use crate::device::GpuDevice;
use crate::occupancy::{occupancy, Limiter};
use crate::perf::{predict, Bottleneck, KernelPerf};
use schedule::KernelSpec;
use std::fmt::Write as _;

/// Full analysis of one kernel launch on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelAnalysis {
    /// Device name.
    pub device: String,
    /// Predicted performance.
    pub perf: KernelPerf,
    /// Resident blocks per SM.
    pub blocks_per_sm: usize,
    /// What limited occupancy.
    pub occupancy_limiter: Limiter,
    /// Arithmetic intensity (flops per DRAM byte).
    pub arithmetic_intensity: f64,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Grid blocks.
    pub grid_blocks: u64,
    /// Shared memory per block in bytes.
    pub smem_bytes: usize,
    /// Estimated registers per thread.
    pub regs_per_thread: usize,
}

/// Analyzes `spec` on `device` (same inputs as [`predict`]).
#[must_use]
pub fn analyze(spec: &KernelSpec, device: &GpuDevice, config_index: u64) -> KernelAnalysis {
    let occ = occupancy(spec, device);
    KernelAnalysis {
        device: device.name.clone(),
        perf: predict(spec, device, config_index),
        blocks_per_sm: occ.blocks_per_sm,
        occupancy_limiter: occ.limiter,
        arithmetic_intensity: spec.arithmetic_intensity(),
        threads_per_block: spec.threads_per_block,
        grid_blocks: spec.grid_blocks,
        smem_bytes: spec.smem_bytes_per_block,
        regs_per_thread: spec.regs_per_thread,
    }
}

impl KernelAnalysis {
    /// Renders the analysis as an indented report.
    #[must_use]
    pub fn report(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "kernel analysis on {}:", self.device);
        let _ = writeln!(
            s,
            "  latency {:>10.3} us   {:>8.1} GFLOPS   bound by {:?}",
            self.perf.latency_s * 1e6,
            self.perf.gflops,
            self.perf.bottleneck
        );
        let _ = writeln!(
            s,
            "  occupancy {:>6.1}% ({} blocks/SM, limited by {:?})",
            self.perf.occupancy * 100.0,
            self.blocks_per_sm,
            self.occupancy_limiter
        );
        let _ = writeln!(
            s,
            "  launch: {} blocks x {} threads   smem {} B   ~{} regs/thread",
            self.grid_blocks, self.threads_per_block, self.smem_bytes, self.regs_per_thread
        );
        let _ = writeln!(
            s,
            "  arithmetic intensity {:.2} flop/B   tail {:.1}%",
            self.arithmetic_intensity,
            self.perf.tail_fraction * 100.0
        );
        s
    }

    /// One-line tuning hint derived from the binding resource.
    #[must_use]
    pub fn hint(&self) -> &'static str {
        match self.perf.bottleneck {
            Bottleneck::Compute => {
                "compute-bound: raise ILP (unrolling) or occupancy to saturate the FP32 pipes"
            }
            Bottleneck::Memory => {
                "memory-bound: enlarge output tiles for reuse, improve coalescing of the inner axis"
            }
            Bottleneck::SharedMem => {
                "shared-memory-bound: pick odd inner-tile strides to break bank conflicts"
            }
            Bottleneck::Launch => {
                "launch-bound: the kernel is too small — merge work or batch more outputs per launch"
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::{models, task::extract_tasks};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use schedule::{kernel::lower, template::space_for_task};

    fn any_valid_analysis() -> KernelAnalysis {
        let task = extract_tasks(&models::vgg16(1)).remove(2);
        let space = space_for_task(&task);
        let device = GpuDevice::gtx_1080_ti();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        loop {
            let cfg = space.sample(&mut rng);
            if let Ok(spec) = lower(&task, &space, &cfg) {
                return analyze(&spec, &device, cfg.index);
            }
        }
    }

    #[test]
    fn report_mentions_key_quantities() {
        let a = any_valid_analysis();
        let r = a.report();
        assert!(r.contains("GFLOPS"));
        assert!(r.contains("occupancy"));
        assert!(r.contains("blocks"));
    }

    #[test]
    fn hint_matches_bottleneck() {
        let a = any_valid_analysis();
        let hint = a.hint();
        match a.perf.bottleneck {
            Bottleneck::Compute => assert!(hint.contains("compute")),
            Bottleneck::Memory => assert!(hint.starts_with("memory")),
            Bottleneck::SharedMem => assert!(hint.contains("bank")),
            Bottleneck::Launch => assert!(hint.contains("launch")),
        }
    }

    #[test]
    fn analysis_agrees_with_predict() {
        let task = extract_tasks(&models::alexnet(1)).remove(0);
        let space = space_for_task(&task);
        let device = GpuDevice::gtx_1080_ti();
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        for _ in 0..20 {
            let cfg = space.sample(&mut rng);
            if let Ok(spec) = lower(&task, &space, &cfg) {
                let a = analyze(&spec, &device, cfg.index);
                assert_eq!(a.perf, predict(&spec, &device, cfg.index));
            }
        }
    }
}

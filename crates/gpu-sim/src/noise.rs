//! Deterministic ruggedness and run-to-run measurement noise.
//!
//! Two distinct stochastic layers, mirroring real on-chip tuning:
//!
//! 1. **Ruggedness** — a deterministic, per-(task, configuration) multiplier
//!    on the *true* latency. Real schedules have high-frequency performance
//!    structure (instruction scheduling, cache-set collisions) that no
//!    smooth analytical model captures; this term makes the landscape
//!    realistically hard for the evaluation function to fit.
//! 2. **Measurement noise** — run-to-run jitter when timing a kernel:
//!    a multiplicative log-normal-ish body whose scale grows for fragile
//!    configurations, plus a heavy tail of contention spikes. This is what
//!    makes Table I's *variance* column respond to configuration quality.

/// SplitMix64: a tiny, high-quality 64-bit mixer.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a string and a 64-bit index into one seed.
#[must_use]
pub fn seed_for(name: &str, index: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64(h ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Uniform `[0, 1)` from a seed.
#[must_use]
pub fn unit(seed: u64) -> f64 {
    (splitmix64(seed) >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic ruggedness multiplier on the true latency, in
/// `[1.0, 1.0 + amplitude]`.
///
/// The square skews mass toward small penalties: most configurations sit
/// near the analytical prediction, a few are noticeably worse — matching
/// the asymmetry of real schedule pathologies.
#[must_use]
pub fn ruggedness(task_name: &str, config_index: u64, amplitude: f64) -> f64 {
    let u = unit(seed_for(task_name, config_index));
    1.0 + amplitude * u * u
}

/// Run-to-run noise parameters of one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseProfile {
    /// Relative standard deviation of the multiplicative body.
    pub sigma: f64,
    /// Probability that a run hits a contention spike.
    pub spike_prob: f64,
    /// Latency multiplier of a spike run.
    pub spike_scale: f64,
}

impl NoiseProfile {
    /// Builds the profile from configuration quality signals.
    ///
    /// `occupancy` in `[0, 1]`; `tail_fraction` in `[0, 1]` is the share of
    /// the last, partially-filled wave. Fragile configurations — low
    /// occupancy, big tails — jitter more and spike more often, which is the
    /// mechanism behind the paper's variance reductions.
    #[must_use]
    pub fn from_quality(occupancy: f64, tail_fraction: f64) -> Self {
        let fragility =
            (1.0 - occupancy).clamp(0.0, 1.0) * 0.7 + tail_fraction.clamp(0.0, 1.0) * 0.3;
        NoiseProfile {
            sigma: 0.012 + 0.22 * fragility * fragility,
            spike_prob: 0.004 + 0.12 * fragility * fragility,
            spike_scale: 2.0 + 8.0 * fragility,
        }
    }

    /// One latency sample: `base_latency` scaled by the noise draw for run
    /// `run_index` under `seed`.
    #[must_use]
    pub fn sample(&self, base_latency: f64, seed: u64, run_index: u64) -> f64 {
        let s = splitmix64(seed ^ run_index.wrapping_mul(0xA076_1D64_78BD_642F));
        let u1 = unit(s);
        let u2 = unit(splitmix64(s));
        // Box-Muller body.
        let z =
            (-2.0 * (1.0 - u1).max(1e-12).ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let mut lat = base_latency * (1.0 + self.sigma * z).max(0.2);
        let u3 = unit(splitmix64(s ^ 0xDEAD_BEEF));
        if u3 < self.spike_prob {
            lat *= self.spike_scale;
        }
        lat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ruggedness_is_deterministic_and_bounded() {
        let a = ruggedness("task", 42, 0.16);
        let b = ruggedness("task", 42, 0.16);
        assert_eq!(a, b);
        for i in 0..1000 {
            let r = ruggedness("task", i, 0.16);
            assert!((1.0..=1.16).contains(&r));
        }
        for i in 0..1000 {
            let r = ruggedness("task", i, crate::perf::RUGGEDNESS_AMPLITUDE);
            assert!((1.0..=1.0 + crate::perf::RUGGEDNESS_AMPLITUDE).contains(&r));
        }
    }

    #[test]
    fn ruggedness_varies_across_configs() {
        let vals: Vec<f64> = (0..100).map(|i| ruggedness("task", i, 0.16)).collect();
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 0.05);
    }

    #[test]
    fn good_configs_are_quieter() {
        let good = NoiseProfile::from_quality(0.9, 0.05);
        let bad = NoiseProfile::from_quality(0.1, 0.8);
        assert!(good.sigma < bad.sigma);
        assert!(good.spike_prob < bad.spike_prob);
        assert!(good.spike_scale < bad.spike_scale);
    }

    #[test]
    fn samples_are_positive_and_mean_is_close() {
        let p = NoiseProfile::from_quality(0.7, 0.1);
        let n = 5000;
        let mean: f64 = (0..n).map(|i| p.sample(1.0, 12345, i)).sum::<f64>() / n as f64;
        assert!(mean > 0.95 && mean < 1.1, "mean {mean}");
        for i in 0..n {
            assert!(p.sample(1.0, 12345, i) > 0.0);
        }
    }

    #[test]
    fn variance_shrinks_with_quality() {
        let var = |p: NoiseProfile| {
            let n = 4000;
            let xs: Vec<f64> = (0..n).map(|i| p.sample(1.0, 7, i)).collect();
            let m = xs.iter().sum::<f64>() / n as f64;
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64
        };
        let v_good = var(NoiseProfile::from_quality(0.95, 0.0));
        let v_bad = var(NoiseProfile::from_quality(0.15, 0.9));
        assert!(v_bad > 10.0 * v_good, "good {v_good} bad {v_bad}");
    }

    #[test]
    fn unit_is_in_range() {
        for i in 0..1000 {
            let u = unit(i);
            assert!((0.0..1.0).contains(&u));
        }
    }
}

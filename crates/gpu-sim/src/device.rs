//! GPU device descriptions.

use serde::{Deserialize, Serialize};

/// Static description of a CUDA-class GPU.
///
/// The numbers drive the occupancy and roofline calculations in
/// [`crate::perf`]. Presets are provided for the paper's test device and two
/// extension targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuDevice {
    /// Marketing name, e.g. `"GTX 1080 Ti"`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// FP32 lanes (CUDA cores) per SM.
    pub fp32_lanes_per_sm: usize,
    /// Sustained clock in GHz.
    pub clock_ghz: f64,
    /// DRAM bandwidth in GB/s.
    pub dram_bw_gbps: f64,
    /// Shared memory per SM in bytes.
    pub smem_per_sm: usize,
    /// Register file per SM (32-bit registers).
    pub regs_per_sm: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Warp size (32 on every CUDA GPU to date).
    pub warp_size: usize,
    /// Kernel launch overhead in seconds (driver + runtime).
    pub launch_overhead_s: f64,
}

impl GpuDevice {
    /// Peak FP32 throughput in FLOP/s (2 ops per FMA lane per cycle).
    #[must_use]
    pub fn peak_flops(&self) -> f64 {
        self.num_sms as f64 * self.fp32_lanes_per_sm as f64 * 2.0 * self.clock_ghz * 1e9
    }

    /// Maximum resident warps per SM.
    #[must_use]
    pub fn max_warps_per_sm(&self) -> usize {
        self.max_threads_per_sm / self.warp_size
    }

    /// The paper's test device: Nvidia GeForce GTX 1080 Ti (Pascal GP102).
    #[must_use]
    pub fn gtx_1080_ti() -> Self {
        GpuDevice {
            name: "GTX 1080 Ti".to_string(),
            num_sms: 28,
            fp32_lanes_per_sm: 128,
            clock_ghz: 1.58,
            dram_bw_gbps: 484.0,
            smem_per_sm: 96 * 1024,
            regs_per_sm: 65_536,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            warp_size: 32,
            launch_overhead_s: 2.5e-6,
        }
    }

    /// Extension target: Tesla V100 (Volta GV100, 80 SMs, HBM2).
    #[must_use]
    pub fn tesla_v100() -> Self {
        GpuDevice {
            name: "Tesla V100".to_string(),
            num_sms: 80,
            fp32_lanes_per_sm: 64,
            clock_ghz: 1.53,
            dram_bw_gbps: 900.0,
            smem_per_sm: 96 * 1024,
            regs_per_sm: 65_536,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            warp_size: 32,
            launch_overhead_s: 2.5e-6,
        }
    }

    /// Extension target: an embedded Jetson-class device (small SM count,
    /// low bandwidth) to exercise crossover behaviour.
    #[must_use]
    pub fn jetson_tx2() -> Self {
        GpuDevice {
            name: "Jetson TX2".to_string(),
            num_sms: 2,
            fp32_lanes_per_sm: 128,
            clock_ghz: 1.3,
            dram_bw_gbps: 59.7,
            smem_per_sm: 64 * 1024,
            regs_per_sm: 65_536,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            warp_size: 32,
            launch_overhead_s: 6.0e-6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtx_1080_ti_peak_is_11_tflops() {
        let d = GpuDevice::gtx_1080_ti();
        let peak = d.peak_flops();
        assert!((peak - 11.3e12).abs() < 0.2e12, "peak {peak}");
    }

    #[test]
    fn warp_capacity() {
        let d = GpuDevice::gtx_1080_ti();
        assert_eq!(d.max_warps_per_sm(), 64);
    }

    #[test]
    fn presets_differ() {
        assert_ne!(GpuDevice::gtx_1080_ti(), GpuDevice::tesla_v100());
        assert!(GpuDevice::jetson_tx2().peak_flops() < GpuDevice::gtx_1080_ti().peak_flops());
    }
}

//! End-to-end model execution.
//!
//! Table I of the paper reports, per model, the mean and variance of
//! inference latency over 600 runs of the *deployed* model — every fused
//! kernel using its tuned configuration, plus the un-tuned auxiliary
//! operators (pooling, softmax, …). This module assembles such a deployment
//! and samples its latency distribution.

use crate::device::GpuDevice;
use crate::noise::{seed_for, NoiseProfile};
use crate::perf::KernelPerf;
use dnn_graph::fusion::fuse;
use dnn_graph::ops::Op;
use dnn_graph::task::{TuningTask, Workload};
use dnn_graph::Graph;
use serde::{Deserialize, Serialize};

/// One kernel in a deployed model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeployedKernel {
    /// Name (task name for tuned kernels, operator name otherwise).
    pub name: String,
    /// Noise-free latency in seconds.
    pub latency_s: f64,
    /// Run-to-run noise behaviour.
    pub noise: NoiseProfile,
}

/// A fully-configured model: every graph kernel with its latency and noise.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelDeployment {
    /// Model name.
    pub model_name: String,
    /// All kernels in execution order.
    pub kernels: Vec<DeployedKernel>,
}

/// Latency statistics over repeated end-to-end runs (Table I's columns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelLatency {
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// Variance of the per-run latencies (ms²).
    pub variance: f64,
    /// Fastest run in milliseconds.
    pub min_ms: f64,
    /// Slowest run in milliseconds.
    pub max_ms: f64,
}

/// Latency of an un-tuned auxiliary operator: element-wise / copy traffic
/// at DRAM bandwidth plus launch overhead. `None` if the op emits no kernel.
fn aux_latency(graph: &Graph, node: &dnn_graph::Node, device: &GpuDevice) -> Option<f64> {
    let out_bytes = node.output.num_elements() as f64 * 4.0;
    let in_bytes: f64 =
        node.inputs.iter().map(|&i| graph.node(i).output.num_elements() as f64 * 4.0).sum();
    let traffic = match node.op {
        // No kernel: layout-only or inference-time identity.
        Op::Input(_) | Op::Flatten | Op::Dropout => return None,
        // Reads the window per output; approximate with in+out traffic.
        Op::Pool2d(_) | Op::GlobalAvgPool | Op::Lrn => in_bytes + out_bytes,
        // Element-wise and copies.
        Op::Relu | Op::BatchNorm | Op::Add | Op::Concat | Op::Softmax => in_bytes + out_bytes,
        // Anchors are handled by the tuned path.
        Op::Conv2d(_) | Op::Dense(_) => return None,
    };
    Some(traffic / (device.dram_bw_gbps * 1e9) + device.launch_overhead_s)
}

impl ModelDeployment {
    /// Assembles a deployment of `graph` from tuned kernels.
    ///
    /// `tuned` maps each unique workload to its chosen configuration's
    /// noise-free performance — the output of tuning every task of the
    /// model. Anchored fused groups look up their workload; anchors without
    /// a tuned entry (e.g. dense layers, which AutoTVM's GPU flow leaves to
    /// the vendor library) get a fixed library-schedule estimate; every
    /// auxiliary group contributes a bandwidth-model kernel.
    #[must_use]
    pub fn assemble(graph: &Graph, tuned: &[(TuningTask, KernelPerf)], device: &GpuDevice) -> Self {
        let fused = fuse(graph);
        let mut kernels = Vec::new();
        for group in &fused.groups {
            match group.anchor {
                Some(anchor_id) => {
                    let node = graph.node(anchor_id);
                    let workload = anchor_workload(graph, anchor_id);
                    match tuned.iter().find(|(t, _)| t.workload == workload) {
                        Some((task, perf)) => kernels.push(DeployedKernel {
                            name: task.name.clone(),
                            latency_s: perf.latency_s,
                            noise: perf.noise_profile(),
                        }),
                        None => kernels.push(library_kernel(&workload, node, device)),
                    }
                }
                None => {
                    let node = graph.node(group.members[0]);
                    if let Some(lat) = aux_latency(graph, node, device) {
                        kernels.push(DeployedKernel {
                            name: node.op.name().to_string(),
                            latency_s: lat,
                            // Bandwidth-bound helpers are well-behaved.
                            noise: NoiseProfile::from_quality(0.9, 0.05),
                        });
                    }
                }
            }
        }
        ModelDeployment { model_name: graph.name.clone(), kernels }
    }

    /// Noise-free end-to-end latency in milliseconds.
    #[must_use]
    pub fn base_latency_ms(&self) -> f64 {
        self.kernels.iter().map(|k| k.latency_s).sum::<f64>() * 1e3
    }
}

/// Vendor-library estimate for an un-tuned anchor: a well-optimized but not
/// workload-specialized kernel (~35% of peak compute, full bandwidth).
fn library_kernel(
    workload: &Workload,
    node: &dnn_graph::Node,
    device: &GpuDevice,
) -> DeployedKernel {
    let flops = workload.flops() as f64;
    let bytes = node.output.num_elements() as f64 * 4.0 * 3.0;
    let latency = (flops / (device.peak_flops() * 0.35)).max(bytes / (device.dram_bw_gbps * 1e9))
        + device.launch_overhead_s;
    DeployedKernel {
        name: format!("lib.{}", node.op.name()),
        latency_s: latency,
        noise: NoiseProfile::from_quality(0.8, 0.1),
    }
}

fn anchor_workload(graph: &Graph, node_id: usize) -> Workload {
    let node = graph.node(node_id);
    let input = &graph.node(node.inputs[0]).output;
    match &node.op {
        Op::Conv2d(a) => Workload::Conv2d {
            batch: input.dim(0),
            in_channels: a.in_channels,
            out_channels: a.out_channels,
            height: input.dim(2),
            width: input.dim(3),
            kernel: a.kernel,
            stride: a.stride,
            padding: (a.padding.h, a.padding.w),
            groups: a.groups,
        },
        Op::Dense(a) => Workload::Dense {
            batch: input.dim(0),
            in_features: a.in_features,
            out_features: a.out_features,
        },
        other => unreachable!("anchors are conv or dense, got {other}"),
    }
}

/// Runs the deployed model `runs` times (the paper uses 600) and returns
/// latency statistics. `seed` separates experiment trials.
#[must_use]
pub fn measure_model(deployment: &ModelDeployment, runs: usize, seed: u64) -> ModelLatency {
    assert!(runs > 0, "need at least one run");
    let mut samples = Vec::with_capacity(runs);
    for run in 0..runs as u64 {
        let mut total = 0.0;
        for (ki, k) in deployment.kernels.iter().enumerate() {
            let kseed = seed_for(&k.name, seed ^ (ki as u64).rotate_left(32));
            total += k.noise.sample(k.latency_s, kseed, run);
        }
        samples.push(total * 1e3);
    }
    let mean = samples.iter().sum::<f64>() / runs as f64;
    let variance = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / runs as f64;
    ModelLatency {
        mean_ms: mean,
        variance,
        min_ms: samples.iter().cloned().fold(f64::INFINITY, f64::min),
        max_ms: samples.iter().cloned().fold(0.0, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::SimMeasurer;
    use dnn_graph::{models, task::extract_tasks};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use schedule::template::space_for_task;

    /// Tunes each task with `n` random samples, keeping the best valid.
    fn random_tune(graph: &Graph, n: usize, seed: u64) -> Vec<(TuningTask, KernelPerf)> {
        let m = SimMeasurer::new(GpuDevice::gtx_1080_ti());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        extract_tasks(graph)
            .into_iter()
            .map(|task| {
                let space = space_for_task(&task);
                // Collect n *valid* configs (invalid rates vary per task).
                let mut perfs = Vec::new();
                let mut attempts = 0;
                while perfs.len() < n && attempts < 200 * n {
                    attempts += 1;
                    let cfg = space.sample(&mut rng);
                    if let Ok(p) = m.true_perf(&task, &space, &cfg) {
                        perfs.push(p);
                    }
                }
                let best = perfs
                    .into_iter()
                    .min_by(|a, b| a.latency_s.total_cmp(&b.latency_s))
                    .expect("some valid config among samples");
                (task, best)
            })
            .collect()
    }

    #[test]
    fn mobilenet_deploys_and_measures() {
        let g = models::mobilenet_v1(1);
        let tuned = random_tune(&g, 60, 1);
        let dep = ModelDeployment::assemble(&g, &tuned, &GpuDevice::gtx_1080_ti());
        // 27 tuned convs + dense fallback? dense is not tuned...
        assert!(dep.kernels.len() > 27);
        let lat = measure_model(&dep, 600, 0);
        assert!(lat.mean_ms > 0.05 && lat.mean_ms < 100.0, "mean {}", lat.mean_ms);
        assert!(lat.variance >= 0.0);
        assert!(lat.min_ms <= lat.mean_ms && lat.mean_ms <= lat.max_ms);
    }

    #[test]
    fn better_configs_give_lower_latency_and_variance() {
        let g = models::mobilenet_v1(1);
        let poor = random_tune(&g, 10, 2);
        let good = random_tune(&g, 150, 2);
        let d = GpuDevice::gtx_1080_ti();
        let dep_poor = ModelDeployment::assemble(&g, &poor, &d);
        let dep_good = ModelDeployment::assemble(&g, &good, &d);
        let l_poor = measure_model(&dep_poor, 600, 0);
        let l_good = measure_model(&dep_good, 600, 0);
        assert!(l_good.mean_ms < l_poor.mean_ms);
        assert!(l_good.variance < l_poor.variance);
    }

    #[test]
    fn measurement_statistics_are_deterministic_per_seed() {
        let g = models::squeezenet_v1_1(1);
        let tuned = random_tune(&g, 30, 3);
        let dep = ModelDeployment::assemble(&g, &tuned, &GpuDevice::gtx_1080_ti());
        assert_eq!(measure_model(&dep, 100, 5), measure_model(&dep, 100, 5));
        assert_ne!(measure_model(&dep, 100, 5), measure_model(&dep, 100, 6));
    }

    #[test]
    fn untuned_anchors_fall_back_to_library_kernels() {
        let g = models::alexnet(1);
        let tuned = random_tune(&g, 10, 4);
        let partial = &tuned[..2];
        let dep = ModelDeployment::assemble(&g, partial, &GpuDevice::gtx_1080_ti());
        let libs = dep.kernels.iter().filter(|k| k.name.starts_with("lib.")).count();
        // 3 untuned convs + 3 dense layers use the library path.
        assert_eq!(libs, 6);
        assert!(measure_model(&dep, 50, 0).mean_ms > 0.0);
    }
}

//! Measurement hardening: timeout budgets, bounded retry, quarantine.
//!
//! [`RobustMeasurer`] wraps any [`Measurer`] with the policy layer a real
//! tuning fleet needs around flaky hardware:
//!
//! * **timeout budget** — a valid trial slower than the per-trial budget
//!   is converted into a [`MeasureErrorKind::Timeout`] failure, exactly
//!   like AutoTVM's runner killing an overlong kernel;
//! * **bounded retry** — transient faults are retried up to
//!   `max_retries` times with exponential backoff (the backoff is
//!   *recorded* in telemetry, not slept — the simulator has no wall-clock
//!   to wait out);
//! * **quarantine** — configurations that fail persistently are added to
//!   a per-task quarantine set, surfaced through
//!   [`Measurer::quarantined`] so tuners (the SA proposer's exclusion
//!   set, BAO's scope filter) never re-propose a known-crashing config;
//! * **graceful degradation** — failures still come back as zero-GFLOPS
//!   penalty results (AutoTVM semantics), so cost models learn the
//!   validity cliff instead of the loop falling over.
//!
//! Everything here is deterministic: retry outcomes depend only on the
//! wrapped measurer's (seeded) behavior, never on timing.

use crate::measure::{MeasureError, MeasureErrorKind, MeasureResult, Measurer};
use dnn_graph::task::TuningTask;
use schedule::{Config, ConfigSpace};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use telemetry::sync::lock_or_recover;

/// Retry/timeout policy for [`RobustMeasurer`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt of a transient fault.
    pub max_retries: u32,
    /// Per-trial device-time budget in milliseconds; `0` disables the
    /// timeout.
    pub trial_timeout_ms: f64,
    /// Base of the exponential backoff recorded per retry, milliseconds.
    pub backoff_base_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 2, trial_timeout_ms: 0.0, backoff_base_ms: 50 }
    }
}

impl RetryPolicy {
    /// Backoff recorded before retry number `attempt` (1-based), ms.
    #[must_use]
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        self.backoff_base_ms.saturating_mul(1u64 << attempt.min(16))
    }
}

/// Per-task sets of configuration indices known to crash persistently.
///
/// Keys are task names; the snapshot/restore pair round-trips through the
/// crash-safe checkpoint so a resumed run starts with the same
/// quarantine it died with.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quarantine {
    sets: BTreeMap<String, BTreeSet<u64>>,
}

impl Quarantine {
    /// An empty quarantine.
    #[must_use]
    pub fn new() -> Self {
        Quarantine::default()
    }

    /// Marks `index` of `task` as known-crashing. Returns true if it was
    /// newly added.
    pub fn insert(&mut self, task: &str, index: u64) -> bool {
        self.sets.entry(task.to_string()).or_default().insert(index)
    }

    /// True if `index` of `task` is quarantined.
    #[must_use]
    pub fn contains(&self, task: &str, index: u64) -> bool {
        self.sets.get(task).is_some_and(|s| s.contains(&index))
    }

    /// Quarantined indices for `task`, sorted.
    #[must_use]
    pub fn indices_for(&self, task: &str) -> Vec<u64> {
        self.sets.get(task).map(|s| s.iter().copied().collect()).unwrap_or_default()
    }

    /// Total quarantined configurations across all tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.values().map(BTreeSet::len).sum()
    }

    /// True if nothing is quarantined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sets.values().all(BTreeSet::is_empty)
    }

    /// Drops every quarantined index of `task` not in `allowed`.
    ///
    /// Used when checkpointing a batched run: a pooled executor can have
    /// quarantined configurations whose trial records are not yet durable,
    /// and persisting those entries would make a resumed run exclude
    /// configurations its replayed proposal stream still expects to see.
    /// Restricting the in-flight task's set to the durably-logged indices
    /// keeps checkpoints consistent with the log.
    pub fn restrict(&mut self, task: &str, allowed: &BTreeSet<u64>) {
        if let Some(set) = self.sets.get_mut(task) {
            set.retain(|i| allowed.contains(i));
        }
    }
}

/// A [`Measurer`] wrapper applying [`RetryPolicy`] and [`Quarantine`].
///
/// The quarantine lives behind an `Arc<Mutex<_>>`, so one set can be
/// shared across worker threads (one `RobustMeasurer` driven by a pooled
/// executor) *and* across independently constructed instances via
/// [`RobustMeasurer::with_shared_quarantine`]: a configuration that
/// crashed on worker 1 is never retried on worker 2.
#[derive(Debug)]
pub struct RobustMeasurer<M> {
    inner: M,
    policy: RetryPolicy,
    quarantine: Arc<Mutex<Quarantine>>,
}

impl<M: Measurer> RobustMeasurer<M> {
    /// Wraps `inner` with `policy` and an empty quarantine.
    pub fn new(inner: M, policy: RetryPolicy) -> Self {
        Self::with_shared_quarantine(inner, policy, Arc::new(Mutex::new(Quarantine::new())))
    }

    /// Wraps `inner` with `policy`, sharing an existing quarantine set —
    /// several measurer instances (e.g. one per worker pool) then see and
    /// extend the same per-task crash lists.
    pub fn with_shared_quarantine(
        inner: M,
        policy: RetryPolicy,
        quarantine: Arc<Mutex<Quarantine>>,
    ) -> Self {
        RobustMeasurer { inner, policy, quarantine }
    }

    /// Handle to the shared quarantine set, for wiring further instances
    /// through [`RobustMeasurer::with_shared_quarantine`].
    #[must_use]
    pub fn shared_quarantine(&self) -> Arc<Mutex<Quarantine>> {
        Arc::clone(&self.quarantine)
    }

    /// Seeds the quarantine (crash-safe resume restores the set the
    /// crashed run had accumulated).
    pub fn restore_quarantine(&self, quarantine: Quarantine) {
        *lock_or_recover(&self.quarantine) = quarantine;
    }

    /// Snapshot of the current quarantine, for checkpointing.
    #[must_use]
    pub fn quarantine_snapshot(&self) -> Quarantine {
        lock_or_recover(&self.quarantine).clone()
    }

    /// The wrapped measurer.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Applies the timeout budget: a valid result slower than the budget
    /// becomes a transient `Timeout` failure.
    fn apply_timeout(&self, result: MeasureResult) -> MeasureResult {
        if self.policy.trial_timeout_ms <= 0.0 || !result.is_valid() {
            return result;
        }
        let latency_ms = result.latency_s * 1e3;
        if latency_ms <= self.policy.trial_timeout_ms {
            return result;
        }
        MeasureResult::failed(MeasureError::new(
            MeasureErrorKind::Timeout,
            format!(
                "trial exceeded budget: {latency_ms:.3} ms > {:.3} ms",
                self.policy.trial_timeout_ms
            ),
        ))
    }
}

impl<M: Measurer> Measurer for RobustMeasurer<M> {
    fn measure(&self, task: &TuningTask, space: &ConfigSpace, config: &Config) -> MeasureResult {
        let tel = telemetry::global();
        if lock_or_recover(&self.quarantine).contains(&task.name, config.index) {
            // Should not normally be proposed (tuners consult the set),
            // but short-circuit rather than crash again if it is.
            tel.count("measure.quarantine_hit", 1);
            return MeasureResult::failed(MeasureError::new(
                MeasureErrorKind::LaunchCrash,
                "configuration is quarantined",
            ));
        }
        let mut attempt: u32 = 0;
        loop {
            tel.count("measure.attempts", 1);
            let result = self.apply_timeout(self.inner.measure(task, space, config));
            let Some(error) = &result.error else {
                // Health counters: fault rate = failed/attempts, retry rate
                // = retry/attempts — the live dashboard's measurement row.
                tel.count("measure.ok", 1);
                return result;
            };
            if error.is_transient() && attempt < self.policy.max_retries {
                attempt += 1;
                let backoff_ms = self.policy.backoff_ms(attempt);
                tel.count("measure.retry", 1);
                tel.observe("measure.retry.backoff_ms", backoff_ms as f64);
                let kind = error.kind;
                tel.event(telemetry::events::MEASURE_RETRY_EVENT, || {
                    serde_json::json!({
                        "task": task.name,
                        "config_index": config.index,
                        "attempt": attempt,
                        "kind": kind.label(),
                        "backoff_ms": backoff_ms,
                    })
                });
                continue;
            }
            if !error.is_transient() {
                // Persistent failure: quarantine so it is never
                // re-proposed, but still return the zero-GFLOPS penalty
                // so cost models learn the cliff.
                let newly = lock_or_recover(&self.quarantine).insert(&task.name, config.index);
                if newly {
                    tel.count("measure.quarantine", 1);
                    let kind = error.kind;
                    tel.event(telemetry::events::MEASURE_QUARANTINE_EVENT, || {
                        serde_json::json!({
                            "task": task.name,
                            "config_index": config.index,
                            "kind": kind.label(),
                        })
                    });
                }
            }
            tel.count("measure.failed", 1);
            return result;
        }
    }

    fn repeats(&self) -> usize {
        self.inner.repeats()
    }

    fn quarantined(&self, task: &TuningTask) -> Vec<u64> {
        let mut indices = lock_or_recover(&self.quarantine).indices_for(&task.name);
        indices.extend(self.inner.quarantined(task));
        indices.sort_unstable();
        indices.dedup();
        indices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::GpuDevice;
    use crate::fault::{FaultConfig, FaultInjectingMeasurer};
    use crate::measure::SimMeasurer;
    use dnn_graph::{models, task::extract_tasks};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use schedule::template::space_for_task;

    fn setup() -> (TuningTask, ConfigSpace) {
        let task = extract_tasks(&models::mobilenet_v1(1)).remove(0);
        let space = space_for_task(&task);
        (task, space)
    }

    fn faulty(rate: f64) -> FaultInjectingMeasurer<SimMeasurer> {
        FaultInjectingMeasurer::new(
            SimMeasurer::new(GpuDevice::gtx_1080_ti()),
            FaultConfig { rate, seed: 21 },
        )
    }

    #[test]
    fn retries_recover_transient_faults() {
        let (task, space) = setup();
        let plain = faulty(0.3);
        let robust = RobustMeasurer::new(faulty(0.3), RetryPolicy::default());
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut recovered = false;
        for _ in 0..300 {
            let cfg = space.sample(&mut rng);
            let bare = plain.measure(&task, &space, &cfg);
            let hard = robust.measure(&task, &space, &cfg);
            if bare.error_kind().is_some_and(MeasureErrorKind::is_transient) && hard.is_valid() {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "expected a retry to clear at least one transient fault");
    }

    #[test]
    fn persistent_failures_are_quarantined_and_short_circuited() {
        let (task, space) = setup();
        let robust = RobustMeasurer::new(faulty(0.5), RetryPolicy::default());
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let mut quarantined_cfg = None;
        for _ in 0..200 {
            let cfg = space.sample(&mut rng);
            let r = robust.measure(&task, &space, &cfg);
            if r.error_kind().is_some_and(|k| !k.is_transient()) {
                quarantined_cfg = Some(cfg);
                break;
            }
        }
        let cfg = quarantined_cfg.expect("expected a persistent failure at 50% fault rate");
        assert!(robust.quarantined(&task).contains(&cfg.index));
        let again = robust.measure(&task, &space, &cfg);
        assert_eq!(again.error_kind(), Some(MeasureErrorKind::LaunchCrash));
        assert_eq!(again.gflops, 0.0);
    }

    #[test]
    fn timeout_budget_converts_slow_trials() {
        let (task, space) = setup();
        let sim = SimMeasurer::new(GpuDevice::gtx_1080_ti());
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let (cfg, base) = loop {
            let c = space.sample(&mut rng);
            let r = sim.measure(&task, &space, &c);
            if r.is_valid() {
                break (c, r);
            }
        };
        // A budget below the observed latency must convert the trial.
        let tight = RetryPolicy {
            trial_timeout_ms: base.latency_s * 1e3 / 2.0,
            max_retries: 0,
            ..RetryPolicy::default()
        };
        let robust = RobustMeasurer::new(SimMeasurer::new(GpuDevice::gtx_1080_ti()), tight);
        let r = robust.measure(&task, &space, &cfg);
        assert_eq!(r.error_kind(), Some(MeasureErrorKind::Timeout));
        assert!(r.error.unwrap().is_transient());
        // Timeouts are transient: they must NOT be quarantined.
        assert!(robust.quarantined(&task).is_empty());
        // A generous budget leaves the result untouched.
        let loose = RetryPolicy { trial_timeout_ms: 1e9, ..RetryPolicy::default() };
        let robust = RobustMeasurer::new(SimMeasurer::new(GpuDevice::gtx_1080_ti()), loose);
        assert_eq!(robust.measure(&task, &space, &cfg), base);
    }

    #[test]
    fn shared_quarantine_is_visible_across_instances() {
        let (task, space) = setup();
        let a = RobustMeasurer::new(faulty(0.5), RetryPolicy::default());
        let b = RobustMeasurer::with_shared_quarantine(
            faulty(0.5),
            RetryPolicy::default(),
            a.shared_quarantine(),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let cfg = loop {
            let c = space.sample(&mut rng);
            let r = a.measure(&task, &space, &c);
            if r.error_kind().is_some_and(|k| !k.is_transient()) {
                break c;
            }
        };
        // The crash was observed through `a`; `b` must refuse to retry it.
        assert!(b.quarantined(&task).contains(&cfg.index));
        assert_eq!(
            b.measure(&task, &space, &cfg).error_kind(),
            Some(MeasureErrorKind::LaunchCrash)
        );
    }

    #[test]
    fn restrict_drops_entries_outside_the_allowed_set() {
        let mut q = Quarantine::new();
        q.insert("t1", 3);
        q.insert("t1", 7);
        q.insert("t2", 9);
        let allowed: std::collections::BTreeSet<u64> = [3].into_iter().collect();
        q.restrict("t1", &allowed);
        assert_eq!(q.indices_for("t1"), vec![3]);
        assert_eq!(q.indices_for("t2"), vec![9], "other tasks untouched");
        q.restrict("t3", &allowed); // absent task is a no-op
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn quarantine_snapshot_round_trips() {
        let mut q = Quarantine::new();
        assert!(q.is_empty());
        assert!(q.insert("t1", 5));
        assert!(!q.insert("t1", 5), "second insert is a no-op");
        q.insert("t2", 9);
        assert_eq!(q.len(), 2);
        assert!(q.contains("t1", 5));
        assert!(!q.contains("t1", 6));
        let json = serde_json::to_string(&q).unwrap();
        let back: Quarantine = serde_json::from_str(&json).unwrap();
        assert_eq!(back, q);
        assert_eq!(back.indices_for("t1"), vec![5]);
    }
}

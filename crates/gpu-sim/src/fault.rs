//! Deterministic fault injection for the measurement boundary.
//!
//! Real AutoTVM measurement is the flakiest part of the stack: compile
//! failures, kernel crashes, RPC timeouts, boards dropping off the rack.
//! [`FaultInjectingMeasurer`] wraps any [`Measurer`] and injects that
//! hostility deterministically, so chaos runs are exactly reproducible:
//! every fault draw is keyed off [`seed_for`] over the task name, the
//! configuration index, and a user-chosen fault seed, never off wall
//! clock or global RNG state.
//!
//! Faults split into two populations:
//!
//! * **persistent** — the draw depends only on `(task, config, seed)`, so
//!   the same configuration fails the same way on every attempt. These
//!   model compile errors and genuinely crashing kernels; retry never
//!   helps and the robust layer quarantines them.
//! * **transient** — the draw additionally mixes in the per-configuration
//!   attempt number, so a bounded retry can clear them. These model
//!   timeouts and one-off RPC flakes.

use crate::measure::{MeasureError, MeasureErrorKind, MeasureResult, Measurer};
use crate::noise::{seed_for, splitmix64, unit};
use dnn_graph::task::TuningTask;
use schedule::{Config, ConfigSpace};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;
use telemetry::sync::lock_or_recover;

/// Share of the overall fault rate drawn as persistent faults.
const PERSISTENT_SHARE: f64 = 0.4;
/// Share of the overall fault rate drawn as transient faults.
const TRANSIENT_SHARE: f64 = 0.6;

/// Serializable fault-injection settings.
///
/// Recorded in the run manifest so a resumed run reproduces the exact
/// fault stream of the run it continues.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Overall fault probability per first attempt, in `[0, 1]`.
    pub rate: f64,
    /// Seed namespace for the fault stream.
    pub seed: u64,
}

impl FaultConfig {
    /// Fault injection disabled (rate 0). The wrapper becomes a
    /// transparent pass-through with identical results to the inner
    /// measurer.
    #[must_use]
    pub fn off() -> Self {
        FaultConfig { rate: 0.0, seed: 0 }
    }

    /// True if this configuration injects nothing.
    #[must_use]
    pub fn is_off(&self) -> bool {
        self.rate <= 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::off()
    }
}

/// A [`Measurer`] wrapper that injects deterministic, seeded faults.
#[derive(Debug)]
pub struct FaultInjectingMeasurer<M> {
    inner: M,
    config: FaultConfig,
    /// Attempts seen per `(task, config)` key; drives the transient draw
    /// so retries of the same configuration see fresh coin flips. Behind a
    /// mutex so pooled executors can share one fault stream across worker
    /// threads — the counter stays per-`(task, config)`, so as long as all
    /// attempts of one configuration run on one worker (the retry loop
    /// does), the draw sequence is identical to the serial path.
    attempts: Mutex<BTreeMap<u64, u64>>,
}

impl<M: Measurer> FaultInjectingMeasurer<M> {
    /// Wraps `inner`, injecting faults per `config`.
    pub fn new(inner: M, config: FaultConfig) -> Self {
        FaultInjectingMeasurer { inner, config, attempts: Mutex::new(BTreeMap::new()) }
    }

    /// The wrapped measurer.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Draws the fault (if any) for this attempt of `(task, config)`.
    fn draw(&self, task: &TuningTask, config: &Config, attempt: u64) -> Option<MeasureErrorKind> {
        if self.config.is_off() {
            return None;
        }
        let key = seed_for(&task.name, config.index);
        // Persistent draw: attempt-independent, so the same config fails
        // identically forever.
        let p = unit(splitmix64(key ^ self.config.seed ^ 0xFA01_7AB1E));
        if p < self.config.rate * PERSISTENT_SHARE {
            let pick = unit(splitmix64(key ^ self.config.seed.rotate_left(7) ^ 0xDEAD));
            return Some(if pick < 0.5 {
                MeasureErrorKind::LaunchCrash
            } else if pick < 0.85 {
                MeasureErrorKind::CompileError
            } else {
                MeasureErrorKind::DeviceLost
            });
        }
        // Transient draw: mixes in the attempt counter, so a retry gets a
        // fresh coin flip and bounded retries can clear the fault.
        let t = unit(splitmix64(
            key ^ self.config.seed.rotate_left(31) ^ (attempt + 1).wrapping_mul(0x9E37_79B9),
        ));
        if t < self.config.rate * TRANSIENT_SHARE {
            let pick = unit(splitmix64(key ^ self.config.seed ^ attempt ^ 0xF1A6));
            return Some(if pick < 0.6 {
                MeasureErrorKind::Timeout
            } else {
                MeasureErrorKind::TransientFlake
            });
        }
        None
    }
}

impl<M: Measurer> Measurer for FaultInjectingMeasurer<M> {
    fn measure(&self, task: &TuningTask, space: &ConfigSpace, config: &Config) -> MeasureResult {
        let attempt = {
            let mut attempts = lock_or_recover(&self.attempts);
            let slot = attempts.entry(seed_for(&task.name, config.index)).or_insert(0);
            let current = *slot;
            *slot += 1;
            current
        };
        if let Some(kind) = self.draw(task, config, attempt) {
            let tel = telemetry::global();
            tel.count("measure.fault", 1);
            tel.event(telemetry::events::MEASURE_FAULT_EVENT, || {
                serde_json::json!({
                    "task": task.name,
                    "config_index": config.index,
                    "kind": kind.label(),
                    "transient": kind.is_transient(),
                    "attempt": attempt,
                })
            });
            return MeasureResult::failed(MeasureError::new(
                kind,
                format!("injected fault (attempt {attempt})"),
            ));
        }
        self.inner.measure(task, space, config)
    }

    fn repeats(&self) -> usize {
        self.inner.repeats()
    }

    fn quarantined(&self, task: &TuningTask) -> Vec<u64> {
        self.inner.quarantined(task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::GpuDevice;
    use crate::measure::SimMeasurer;
    use dnn_graph::{models, task::extract_tasks};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use schedule::template::space_for_task;

    fn setup() -> (TuningTask, ConfigSpace) {
        let task = extract_tasks(&models::mobilenet_v1(1)).remove(0);
        let space = space_for_task(&task);
        (task, space)
    }

    #[test]
    fn zero_rate_is_a_transparent_passthrough() {
        let (task, space) = setup();
        let sim = SimMeasurer::new(GpuDevice::gtx_1080_ti());
        let wrapped = FaultInjectingMeasurer::new(
            SimMeasurer::new(GpuDevice::gtx_1080_ti()),
            FaultConfig::off(),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..20 {
            let cfg = space.sample(&mut rng);
            assert_eq!(sim.measure(&task, &space, &cfg), wrapped.measure(&task, &space, &cfg));
        }
    }

    #[test]
    fn fault_stream_is_deterministic_in_the_seed() {
        let (task, space) = setup();
        let make = |seed| {
            FaultInjectingMeasurer::new(
                SimMeasurer::new(GpuDevice::gtx_1080_ti()),
                FaultConfig { rate: 0.5, seed },
            )
        };
        let (a, b, c) = (make(7), make(7), make(8));
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut diverged = false;
        for _ in 0..64 {
            let cfg = space.sample(&mut rng);
            let ra = a.measure(&task, &space, &cfg);
            assert_eq!(ra, b.measure(&task, &space, &cfg), "same seed, same stream");
            if ra != c.measure(&task, &space, &cfg) {
                diverged = true;
            }
        }
        assert!(diverged, "different fault seeds should disagree somewhere");
    }

    #[test]
    fn persistent_faults_repeat_but_transients_can_clear() {
        let (task, space) = setup();
        let m = FaultInjectingMeasurer::new(
            SimMeasurer::new(GpuDevice::gtx_1080_ti()),
            FaultConfig { rate: 0.6, seed: 11 },
        );
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut saw_persistent_repeat = false;
        let mut saw_transient_clear = false;
        for _ in 0..200 {
            let cfg = space.sample(&mut rng);
            let first = m.measure(&task, &space, &cfg);
            let Some(error) = first.error.clone() else { continue };
            // Only injected faults are under test here; a naturally
            // invalid config's lowering error is the inner measurer's.
            if !error.detail.starts_with("injected") {
                continue;
            }
            // Retry the same config several times.
            let retries: Vec<_> = (0..6).map(|_| m.measure(&task, &space, &cfg)).collect();
            if !error.is_transient() {
                assert!(
                    retries.iter().all(|r| r.error_kind() == Some(error.kind)),
                    "persistent faults must survive retries"
                );
                saw_persistent_repeat = true;
            } else if retries.iter().any(MeasureResult::is_valid) {
                saw_transient_clear = true;
            }
            if saw_persistent_repeat && saw_transient_clear {
                break;
            }
        }
        assert!(saw_persistent_repeat, "expected a repeating persistent fault");
        assert!(saw_transient_clear, "expected a transient fault to clear on retry");
    }
}

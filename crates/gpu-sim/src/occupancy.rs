//! The CUDA occupancy calculation.

use crate::device::GpuDevice;
use schedule::KernelSpec;

/// Occupancy of a kernel on a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Resident blocks per SM (0 if the kernel cannot launch).
    pub blocks_per_sm: usize,
    /// Resident warps per SM.
    pub warps_per_sm: usize,
    /// Fraction of the SM's warp slots occupied, in `[0, 1]`.
    pub fraction: f64,
    /// What limited residency.
    pub limiter: Limiter,
    /// Register-spill slowdown (`>= 1`): when a block's register demand
    /// exceeds the file even at one block per SM, the compiler spills to
    /// local memory and every access gets slower.
    pub spill_factor: f64,
}

/// The resource that limited occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    /// Thread slots per SM.
    Threads,
    /// Register file capacity.
    Registers,
    /// Shared memory capacity.
    SharedMem,
    /// The architectural max-blocks-per-SM cap.
    BlockSlots,
}

/// Computes occupancy for `spec` on `device`.
///
/// Warp-granular: threads per block are rounded up to whole warps, exactly
/// like the hardware scheduler allocates them.
#[must_use]
pub fn occupancy(spec: &KernelSpec, device: &GpuDevice) -> Occupancy {
    let warps_per_block = spec.threads_per_block.div_ceil(device.warp_size).max(1);
    let alloc_threads = warps_per_block * device.warp_size;

    let by_threads = device.max_threads_per_sm / alloc_threads;
    let by_regs =
        device.regs_per_sm.checked_div(spec.regs_per_thread * alloc_threads).unwrap_or(usize::MAX);
    let by_smem = device.smem_per_sm.checked_div(spec.smem_bytes_per_block).unwrap_or(usize::MAX);
    let by_slots = device.max_blocks_per_sm;

    let (blocks, limiter) = [
        (by_threads, Limiter::Threads),
        (by_regs, Limiter::Registers),
        (by_smem, Limiter::SharedMem),
        (by_slots, Limiter::BlockSlots),
    ]
    .into_iter()
    .min_by_key(|&(b, _)| b)
    // aal-lint: allow(unwrap, reason = "the iterator literally has four candidates")
    .expect("four candidates");

    // Register over-subscription at one resident block does not prevent a
    // launch: the compiler caps registers and spills the remainder to local
    // memory. Model that as blocks = 1 with a spill slowdown.
    let (blocks, limiter, spill) = if blocks == 0 && limiter == Limiter::Registers && by_threads > 0
    {
        let demand = spec.regs_per_thread * alloc_threads;
        (1, Limiter::Registers, 1.0 + (demand as f64 / device.regs_per_sm as f64 - 1.0).max(0.0))
    } else {
        (blocks, limiter, 1.0)
    };

    let warps = blocks * warps_per_block;
    Occupancy {
        blocks_per_sm: blocks,
        warps_per_sm: warps,
        fraction: warps as f64 / device.max_warps_per_sm() as f64,
        limiter,
        spill_factor: spill,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(threads: usize, regs: usize, smem: usize) -> KernelSpec {
        KernelSpec {
            task_name: "t".to_string(),
            grid_blocks: 100,
            threads_per_block: threads,
            vthreads: 1,
            regs_per_thread: regs,
            smem_bytes_per_block: smem,
            flops: 1_000_000,
            gmem_read_bytes: 1_000,
            gmem_write_bytes: 1_000,
            read_coalesce_eff: 1.0,
            write_coalesce_eff: 1.0,
            bank_conflict_factor: 1.0,
            unroll_ilp: 1.0,
            outputs_per_thread: 4,
            inner_loop_size: 16,
        }
    }

    #[test]
    fn small_kernel_hits_block_slot_cap() {
        let d = GpuDevice::gtx_1080_ti();
        let o = occupancy(&spec(32, 16, 0), &d);
        assert_eq!(o.limiter, Limiter::BlockSlots);
        assert_eq!(o.blocks_per_sm, 32);
    }

    #[test]
    fn register_pressure_limits() {
        let d = GpuDevice::gtx_1080_ti();
        // 256 threads x 128 regs = 32768 regs/block -> 2 blocks/SM.
        let o = occupancy(&spec(256, 128, 0), &d);
        assert_eq!(o.limiter, Limiter::Registers);
        assert_eq!(o.blocks_per_sm, 2);
        assert!((o.fraction - 16.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn smem_limits() {
        let d = GpuDevice::gtx_1080_ti();
        let o = occupancy(&spec(64, 16, 40 * 1024), &d);
        assert_eq!(o.limiter, Limiter::SharedMem);
        assert_eq!(o.blocks_per_sm, 2);
    }

    #[test]
    fn full_occupancy_possible() {
        let d = GpuDevice::gtx_1080_ti();
        // 1024 threads, 32 regs: 2 blocks = 2048 threads, 64 warps.
        let o = occupancy(&spec(1024, 32, 0), &d);
        assert!((o.fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_warps_round_up() {
        let d = GpuDevice::gtx_1080_ti();
        // 33 threads = 2 warps allocated.
        let o = occupancy(&spec(33, 16, 0), &d);
        assert_eq!(o.warps_per_sm, 2 * o.blocks_per_sm);
    }
}

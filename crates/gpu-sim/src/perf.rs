//! Kernel latency prediction.
//!
//! A roofline-style model with the second-order effects that make schedule
//! tuning interesting: occupancy-limited latency hiding, wave quantization,
//! coalescing and bank-conflict penalties, unrolling ILP, warp-granularity
//! slack, and a fixed launch overhead that punishes over-decomposition.

use crate::device::GpuDevice;
use crate::noise::{ruggedness, NoiseProfile};
use crate::occupancy::{occupancy, Occupancy};
use schedule::KernelSpec;
use serde::{Deserialize, Serialize};

/// Which roofline bound the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// FP32 throughput.
    Compute,
    /// DRAM bandwidth.
    Memory,
    /// Shared-memory throughput (bank conflicts).
    SharedMem,
    /// Fixed launch overhead dominates.
    Launch,
}

/// Predicted performance of one kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelPerf {
    /// Expected (noise-free) latency in seconds.
    pub latency_s: f64,
    /// Achieved GFLOPS at that latency.
    pub gflops: f64,
    /// Occupancy fraction in `[0, 1]`.
    pub occupancy: f64,
    /// Fraction of work in the final, partially-filled wave.
    pub tail_fraction: f64,
    /// The binding resource.
    pub bottleneck: Bottleneck,
}

impl KernelPerf {
    /// Run-to-run noise profile implied by this kernel's quality.
    #[must_use]
    pub fn noise_profile(&self) -> NoiseProfile {
        NoiseProfile::from_quality(self.occupancy, self.tail_fraction)
    }
}

/// Amplitude of the deterministic ruggedness term (fractional latency).
///
/// Calibrated high: real schedule landscapes carry large high-frequency
/// structure that knob-level features cannot explain, which is what makes
/// the paper's search problem hard (and its variances large).
pub const RUGGEDNESS_AMPLITUDE: f64 = 0.6;

/// Warps per SM needed to reach ~95% of peak issue rate (Pascal-era FP32
/// pipes need roughly half the warp slots filled to hide ALU latency).
const WARPS_FOR_PEAK: f64 = 24.0;

/// Predicts the latency of `spec` on `device`.
///
/// Deterministic: the same `(task, config)` always yields the same number.
/// The per-configuration ruggedness term is included; run-to-run noise is
/// *not* (see [`KernelPerf::noise_profile`]).
///
/// # Example
///
/// ```
/// use dnn_graph::{models, task::extract_tasks};
/// use gpu_sim::{perf::predict, GpuDevice};
/// use schedule::{kernel::lower, template::space_for_task};
///
/// let task = extract_tasks(&models::vgg16(1)).remove(2);
/// let space = space_for_task(&task);
/// let device = GpuDevice::gtx_1080_ti();
/// let cfg = space.config(space.len() / 3)?;
/// if let Ok(spec) = lower(&task, &space, &cfg) {
///     let perf = predict(&spec, &device, cfg.index);
///     assert!(perf.gflops > 0.0);
///     assert!(perf.occupancy <= 1.0);
/// }
/// # Ok::<(), schedule::ScheduleError>(())
/// ```
#[must_use]
pub fn predict(spec: &KernelSpec, device: &GpuDevice, config_index: u64) -> KernelPerf {
    let occ: Occupancy = occupancy(spec, device);
    if occ.blocks_per_sm == 0 || spec.grid_blocks == 0 {
        // Cannot launch: report an hour-long latency so tuners rank it last
        // (AutoTVM uses the same "huge latency on error" convention).
        return KernelPerf {
            latency_s: 3600.0,
            gflops: 0.0,
            occupancy: 0.0,
            tail_fraction: 1.0,
            bottleneck: Bottleneck::Launch,
        };
    }

    // --- Compute roofline --------------------------------------------------
    // Issue-rate utilization rises with resident warps; unrolling ILP lets
    // fewer warps saturate the pipes.
    let eff_warps = occ.warps_per_sm as f64 * spec.unroll_ilp;
    let latency_hiding = (eff_warps / WARPS_FOR_PEAK).min(1.0);
    // Warp-granularity slack: threads that don't fill whole warps burn lanes.
    let warp_slack = {
        let t = spec.threads_per_block as f64;
        let alloc = (spec.threads_per_block.div_ceil(device.warp_size) * device.warp_size) as f64;
        t / alloc
    };
    let compute_rate = device.peak_flops() * latency_hiding * warp_slack;
    let compute_time = spec.flops as f64 / compute_rate;

    // --- DRAM roofline -----------------------------------------------------
    let read_bytes = spec.gmem_read_bytes as f64 / spec.read_coalesce_eff.max(0.05);
    let write_bytes = spec.gmem_write_bytes as f64 / spec.write_coalesce_eff.max(0.05);
    // Low occupancy cannot keep the memory pipes full either.
    let mem_utilization = (occ.warps_per_sm as f64 / 16.0).min(1.0);
    let mem_time = (read_bytes + write_bytes) / (device.dram_bw_gbps * 1e9 * mem_utilization);

    // --- Shared-memory roofline --------------------------------------------
    // Each MAC streams ~2 operands from shared memory (4 B each); conflicts
    // serialize accesses.
    let smem_bytes = spec.flops as f64 / 2.0 * 2.0 * 4.0;
    let smem_peak =
        device.num_sms as f64 * 128.0 * device.clock_ghz * 1e9 / spec.bank_conflict_factor;
    let smem_time = smem_bytes / smem_peak;

    // --- Combine ------------------------------------------------------------
    let (mut body, bottleneck) = {
        let c = (compute_time, Bottleneck::Compute);
        let m = (mem_time, Bottleneck::Memory);
        let s = (smem_time, Bottleneck::SharedMem);
        let max =
            // aal-lint: allow(unwrap, reason = "the iterator literally has three candidates")
            [c, m, s].into_iter().max_by(|a, b| a.0.total_cmp(&b.0)).expect("three candidates");
        // Imperfect overlap between the pipes.
        let sum = compute_time + mem_time + smem_time;
        (max.0 + 0.15 * (sum - max.0), max.1)
    };

    // Register spills turn register traffic into local-memory traffic and
    // slow the whole body down.
    body *= occ.spill_factor;

    // Wave quantization: the grid executes in ceil(waves) full rounds.
    let concurrent = (occ.blocks_per_sm * device.num_sms) as f64;
    let exact_waves = spec.grid_blocks as f64 / concurrent;
    let waves = exact_waves.ceil().max(1.0);
    let quantization = waves / exact_waves.max(1e-9);
    // Only the steady-state portion quantizes; clamp the penalty.
    body *= quantization.clamp(1.0, 8.0);
    let tail_fraction = ((waves - exact_waves) / waves).clamp(0.0, 1.0);

    body *= ruggedness(&spec.task_name, config_index, RUGGEDNESS_AMPLITUDE);

    let latency = body + device.launch_overhead_s;
    let bottleneck = if device.launch_overhead_s > body { Bottleneck::Launch } else { bottleneck };

    KernelPerf {
        latency_s: latency,
        gflops: spec.flops as f64 / latency / 1e9,
        occupancy: occ.fraction,
        tail_fraction,
        bottleneck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::{models, task::extract_tasks};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use schedule::{kernel::lower, template::space_for_task};

    fn sample_perfs(model: &dnn_graph::Graph, task_idx: usize, n: usize) -> Vec<KernelPerf> {
        let task = extract_tasks(model).remove(task_idx);
        let space = space_for_task(&task);
        let device = GpuDevice::gtx_1080_ti();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut out = Vec::new();
        while out.len() < n {
            let cfg = space.sample(&mut rng);
            if let Ok(spec) = lower(&task, &space, &cfg) {
                out.push(predict(&spec, &device, cfg.index));
            }
        }
        out
    }

    #[test]
    fn gflops_are_positive_and_below_peak() {
        let device = GpuDevice::gtx_1080_ti();
        for p in sample_perfs(&models::vgg16(1), 2, 200) {
            assert!(p.gflops > 0.0);
            assert!(p.gflops * 1e9 < device.peak_flops());
        }
    }

    #[test]
    fn landscape_has_wide_dynamic_range() {
        // Tuning is only meaningful if configs differ by orders of magnitude.
        let perfs = sample_perfs(&models::vgg16(1), 2, 400);
        let best = perfs.iter().map(|p| p.gflops).fold(0.0, f64::max);
        let worst = perfs.iter().map(|p| p.gflops).fold(f64::INFINITY, f64::min);
        assert!(best / worst > 10.0, "best {best}, worst {worst}");
    }

    #[test]
    fn good_configs_reach_a_decent_fraction_of_peak() {
        let perfs = sample_perfs(&models::vgg16(1), 2, 2000);
        let best = perfs.iter().map(|p| p.gflops).fold(0.0, f64::max);
        // Random sampling over a big conv should already find > 400 GFLOPS.
        assert!(best > 400.0, "best {best}");
    }

    #[test]
    fn determinism() {
        let a = sample_perfs(&models::mobilenet_v1(1), 0, 10);
        let b = sample_perfs(&models::mobilenet_v1(1), 0, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn launch_overhead_binds_tiny_kernels() {
        let spec = KernelSpec {
            task_name: "tiny".to_string(),
            grid_blocks: 1,
            threads_per_block: 32,
            vthreads: 1,
            regs_per_thread: 32,
            smem_bytes_per_block: 1024,
            flops: 1000,
            gmem_read_bytes: 100,
            gmem_write_bytes: 100,
            read_coalesce_eff: 1.0,
            write_coalesce_eff: 1.0,
            bank_conflict_factor: 1.0,
            unroll_ilp: 1.0,
            outputs_per_thread: 1,
            inner_loop_size: 4,
        };
        let p = predict(&spec, &GpuDevice::gtx_1080_ti(), 0);
        assert_eq!(p.bottleneck, Bottleneck::Launch);
    }

    #[test]
    fn bank_conflicts_slow_kernels_down() {
        let mut spec = KernelSpec {
            task_name: "bc".to_string(),
            grid_blocks: 2000,
            threads_per_block: 256,
            vthreads: 1,
            regs_per_thread: 48,
            smem_bytes_per_block: 8 * 1024,
            flops: 500_000_000,
            gmem_read_bytes: 2_000_000,
            gmem_write_bytes: 2_000_000,
            read_coalesce_eff: 1.0,
            write_coalesce_eff: 1.0,
            bank_conflict_factor: 1.0,
            unroll_ilp: 1.2,
            outputs_per_thread: 8,
            inner_loop_size: 64,
        };
        let d = GpuDevice::gtx_1080_ti();
        let fast = predict(&spec, &d, 0);
        spec.bank_conflict_factor = 8.0;
        let slow = predict(&spec, &d, 0);
        assert!(slow.latency_s > fast.latency_s);
    }
}

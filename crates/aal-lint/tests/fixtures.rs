//! Fixture-corpus self-tests: every rule has a fire/clean pair, the fire
//! file produces *exactly* the findings its `// expect: <rule>` markers
//! claim, the clean file produces none, and the CLI exit codes agree.

use aal_lint::config::Config;
use aal_lint::lint_source;
use aal_lint::rules::RULES;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// Fixture directories: one per rule, plus the waiver-hygiene corpus.
fn corpus_dirs() -> Vec<String> {
    let mut dirs: Vec<String> = RULES.iter().map(|r| r.name.to_string()).collect();
    dirs.push("waiver-hygiene".to_string());
    dirs
}

/// Parses `// expect: <rule>` markers into `(line, rule)` pairs.
fn expected_markers(src: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if let Some(rest) = line.split("// expect: ").nth(1) {
            out.push((i + 1, rest.trim().to_string()));
        }
    }
    out
}

fn lint_fixture(dir: &str, name: &str) -> (Vec<(usize, String)>, String) {
    let path = fixtures_root().join(dir).join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} missing: {e}", path.display()));
    let rel = format!("crates/aal-lint/fixtures/{dir}/{name}");
    let (findings, _) = lint_source(&rel, &src, &Config::default());
    (findings.into_iter().map(|f| (f.line as usize, f.rule)).collect(), src)
}

#[test]
fn every_rule_has_a_fixture_pair() {
    for dir in corpus_dirs() {
        for name in ["fire.rs", "clean.rs"] {
            let p = fixtures_root().join(&dir).join(name);
            assert!(p.is_file(), "missing fixture {}", p.display());
        }
    }
}

#[test]
fn fire_fixtures_match_their_markers_exactly() {
    for dir in corpus_dirs() {
        if dir == "waiver-hygiene" {
            continue; // hardcoded expectations; see below
        }
        let (mut actual, src) = lint_fixture(&dir, "fire.rs");
        let mut expected = expected_markers(&src);
        actual.sort();
        expected.sort();
        assert!(!expected.is_empty(), "{dir}/fire.rs has no expect markers");
        assert_eq!(actual, expected, "{dir}/fire.rs findings diverge from markers");
        // A fire corpus must exercise only its own rule.
        for (_, rule) in &actual {
            assert_eq!(rule, &dir, "{dir}/fire.rs fired foreign rule {rule}");
        }
    }
}

#[test]
fn waiver_hygiene_fire_matches_hardcoded_expectations() {
    let (mut actual, _) = lint_fixture("waiver-hygiene", "fire.rs");
    actual.sort();
    let expected = vec![
        (11, "unused-waiver".to_string()),
        (16, "waiver-syntax".to_string()),
        (17, "unwrap".to_string()),
        (21, "waiver-syntax".to_string()),
    ];
    assert_eq!(actual, expected);
}

#[test]
fn clean_fixtures_are_silent() {
    for dir in corpus_dirs() {
        let (actual, _) = lint_fixture(&dir, "clean.rs");
        assert_eq!(actual, Vec::new(), "{dir}/clean.rs should produce no findings");
    }
}

#[test]
fn cli_exit_codes_agree_with_the_corpus() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for dir in corpus_dirs() {
        let fire = root.join("fixtures").join(&dir).join("fire.rs");
        let status = Command::new(env!("CARGO_BIN_EXE_aal-lint"))
            .args(["check", "--no-config", "--root"])
            .arg(root)
            .arg(&fire)
            .output()
            .expect("run aal-lint");
        assert_eq!(
            status.status.code(),
            Some(1),
            "fire fixture {dir} must exit 1:\n{}",
            String::from_utf8_lossy(&status.stdout)
        );

        let clean = root.join("fixtures").join(&dir).join("clean.rs");
        let status = Command::new(env!("CARGO_BIN_EXE_aal-lint"))
            .args(["check", "--no-config", "--root"])
            .arg(root)
            .arg(&clean)
            .output()
            .expect("run aal-lint");
        assert_eq!(
            status.status.code(),
            Some(0),
            "clean fixture {dir} must exit 0:\n{}",
            String::from_utf8_lossy(&status.stdout)
        );
    }
}

#[test]
fn cli_json_report_is_well_formed() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let fire = root.join("fixtures").join("unwrap").join("fire.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_aal-lint"))
        .args(["check", "--no-config", "--json", "--root"])
        .arg(root)
        .arg(&fire)
        .output()
        .expect("run aal-lint");
    let text = String::from_utf8_lossy(&out.stdout);
    let v: serde_json::Value = serde_json::from_str(text.trim()).expect("valid JSON report");
    assert_eq!(v["version"], serde_json::json!(1));
    assert_eq!(v["summary"]["findings"], serde_json::json!(3));
    assert_eq!(v["findings"][0]["rule"], serde_json::json!("unwrap"));
}

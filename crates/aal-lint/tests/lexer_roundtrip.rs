//! Property tests for the lexer: tokenization must cover every input
//! byte exactly once (`concat(tokens) == input`) for *arbitrary* text,
//! including pathological string/comment/raw-string nesting and
//! unterminated fragments — the linter's never-miss-never-invent
//! guarantee rests on this.

use aal_lint::lexer::lex;
use aal_lint::source::SourceFile;
use proptest::prelude::*;

/// Fragments that exercise every tricky lexer state.
fn arb_fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("fn f() { let x = 1; }".to_string()),
        Just("\"plain string\"".to_string()),
        Just("\"escaped \\\" quote \\\\\"".to_string()),
        Just("\"unterminated".to_string()),
        Just("// line comment ending in quote \"\n".to_string()),
        Just("/* block */".to_string()),
        Just("/* outer /* nested */ still open */".to_string()),
        Just("/* unterminated".to_string()),
        Just("'a'".to_string()),
        Just("'\\n'".to_string()),
        Just("'static".to_string()),
        Just("&'a str".to_string()),
        Just("b\"bytes \\\" esc\"".to_string()),
        Just("b'x'".to_string()),
        Just("br#\"raw bytes \" inside\"#".to_string()),
        Just("r#match".to_string()),
        Just("1.5e-3 0xff 1..4".to_string()),
        Just("\n\n".to_string()),
        // Raw strings at arbitrary hash depth; for depth >= 2 the body
        // smuggles a `"#` that must not close the literal.
        (0usize..5).prop_map(|n| {
            let h = "#".repeat(n);
            if n >= 2 {
                format!("r{h}\"body \"# not closed yet\"{h}")
            } else {
                format!("r{h}\"body\"{h}")
            }
        }),
        // Unterminated raw string: opener only.
        (1usize..4).prop_map(|n| format!("r{}\"left open ", "#".repeat(n))),
        // Arbitrary printable-ASCII soup (quotes, hashes, backslashes
        // included via the full 0x20..0x7f range).
        proptest::collection::vec(32u8..127, 0..16)
            .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii")),
    ]
}

fn arb_source() -> impl Strategy<Value = String> {
    proptest::collection::vec(arb_fragment(), 0..12).prop_map(|frags| frags.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// concat(lex(s)) == s, every token non-empty.
    #[test]
    fn lex_round_trips_arbitrary_nesting(src in arb_source()) {
        let toks = lex(&src);
        let rebuilt: String = toks.iter().map(|t| t.text).collect();
        prop_assert_eq!(rebuilt, src.clone());
        prop_assert!(toks.iter().all(|t| !t.text.is_empty()));
    }

    /// Line numbers are monotone and match the newline count.
    #[test]
    fn lex_line_numbers_are_monotone(src in arb_source()) {
        let toks = lex(&src);
        let mut last = 1usize;
        for t in &toks {
            prop_assert!(t.line as usize >= last);
            last = t.line as usize;
        }
        let newlines = src.matches('\n').count();
        prop_assert!(last <= newlines + 1);
    }

    /// The full file-analysis front end (test spans, waiver parsing)
    /// never panics on arbitrary input.
    #[test]
    fn source_parse_is_total(src in arb_source()) {
        let f = SourceFile::parse("crates/x/src/lib.rs", &src);
        prop_assert!(f.waivers.len() + f.waiver_errors.len() <= src.lines().count() + 1);
    }
}

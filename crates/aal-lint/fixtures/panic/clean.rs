//! Clean corpus for `panic`: invariant checks and typed errors — the
//! blessed alternatives the rule's `instead` text points at.

pub fn typed_error(kind: u8) -> Result<u64, String> {
    match kind {
        0 => Ok(10),
        1 => Ok(20),
        other => Err(format!("unsupported kind {other}")),
    }
}

pub fn invariant_checks(xs: &[u64]) -> u64 {
    // assert!/debug_assert! are deliberate invariant checks, not flagged.
    assert!(!xs.is_empty(), "caller guarantees a non-empty slice");
    debug_assert!(xs.len() < 1 << 20);
    xs[0]
}

pub fn text_mention() -> &'static str {
    "panic! and todo! in a string are just words"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "boom")]
    fn tests_may_panic() {
        if true {
            panic!("boom");
        }
    }

    #[test]
    fn typed_error_path() {
        assert!(typed_error(9).is_err());
    }
}

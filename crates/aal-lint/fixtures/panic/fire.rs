//! Fire corpus for `panic`: unconditional panics in library code.

pub fn explicit(kind: u8) -> u64 {
    match kind {
        0 => 10,
        1 => 20,
        _ => panic!("unsupported kind {kind}"), // expect: panic
    }
}

pub fn unfinished() -> u64 {
    todo!("implement the fast path") // expect: panic
}

pub fn unreachable_variant() -> u64 {
    unimplemented!() // expect: panic
}

//! Clean corpus for `lock-unwrap`: the blessed poisoning policy, plus
//! lookalikes the token patterns must not catch.

use std::sync::{Mutex, PoisonError, RwLock};

pub fn policy_helper(m: &Mutex<u64>) -> u64 {
    // The one documented policy: observe and recover.
    *m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub fn rwlock_policy(l: &RwLock<u64>) -> u64 {
    *l.read().unwrap_or_else(PoisonError::into_inner)
}

pub fn reader_with_args(bytes: &mut impl std::io::Read, buf: &mut [u8]) -> usize {
    // `.read(buf)` has arguments — not a lock acquisition; the trailing
    // unwrap_or is not `.unwrap()`.
    bytes.read(buf).unwrap_or(0)
}

pub fn text_mention() -> &'static str {
    "grep for .lock().unwrap() finds this string, the linter must not"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_unwrap_locks_freely() {
        let m = Mutex::new(3u64);
        assert_eq!(*m.lock().unwrap(), 3);
    }
}

//! Fire corpus for `lock-unwrap`: unwrapping poisoned-lock results at
//! the call site instead of using the shared poisoning policy.
//!
//! Note: these sites report *only* `lock-unwrap`, never a second
//! `unwrap` finding — overlap suppression keeps one waiver per site.

use std::sync::{Mutex, RwLock};

pub fn mutex_unwrap(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap() // expect: lock-unwrap
}

pub fn mutex_expect(m: &Mutex<u64>) -> u64 {
    *m.lock().expect("poisoned") // expect: lock-unwrap
}

pub fn rwlock_read(l: &RwLock<u64>) -> u64 {
    *l.read().unwrap() // expect: lock-unwrap
}

pub fn rwlock_write(l: &RwLock<u64>, v: u64) {
    *l.write().expect("poisoned") = v; // expect: lock-unwrap
}

//! Fire corpus for waiver hygiene: waivers are themselves linted.
//!
//! Expected findings (hardcoded in tests/fixtures.rs because waiver
//! directives cannot carry trailing marker comments):
//!   line 11 unused-waiver  (suppresses nothing)
//!   line 16 waiver-syntax  (missing reason)
//!   line 17 unwrap         (the malformed waiver does not suppress)
//!   line 21 waiver-syntax  (unknown rule name)

pub fn dead_waiver(s: &str) -> u64 {
    // aal-lint: allow(unwrap, reason = "suppresses nothing on the next line")
    s.len() as u64
}

pub fn missing_reason(s: &str) -> u64 {
    // aal-lint: allow(unwrap)
    s.parse().unwrap()
}

pub fn unknown_rule() -> u64 {
    // aal-lint: allow(no-such-rule, reason = "typo in the rule name")
    7
}

//! Clean corpus for waiver hygiene: well-formed, live waivers in both
//! positions (leading and trailing), each suppressing a real finding.

pub fn leading(s: &str) -> u64 {
    // aal-lint: allow(unwrap, reason = "fixture: caller passes digits")
    s.parse().unwrap()
}

pub fn trailing(s: &str) -> u64 {
    s.parse().expect("digits") // aal-lint: allow(unwrap, reason = "fixture: trailing form")
}

//! Fire corpus for `ambient-rng`: entropy drawn outside the seeded path.

use rand::rngs::OsRng; // expect: ambient-rng
use rand::{Rng, SeedableRng};

pub fn ambient_draw() -> u64 {
    let mut rng = rand::thread_rng(); // expect: ambient-rng
    rng.next_u64()
}

pub fn os_entropy() -> u64 {
    OsRng.next_u64() // expect: ambient-rng
}

pub fn reseeded<R: SeedableRng>() -> R {
    R::from_entropy() // expect: ambient-rng
}

pub fn convenience() -> f64 {
    rand::random() // expect: ambient-rng
}

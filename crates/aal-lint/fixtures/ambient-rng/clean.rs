//! Clean corpus for `ambient-rng`: seeded RNG use and textual mentions.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

pub fn seeded(seed: u64) -> ChaCha8Rng {
    // The blessed path: all randomness flows from the run seed.
    ChaCha8Rng::seed_from_u64(seed)
}

pub fn documentation() -> &'static str {
    // thread_rng() mentioned in a comment is not a draw.
    "never call thread_rng() or read OsRng in tuning code"
}

pub fn random_looking_names(thread_rng_calls: usize) -> usize {
    // Identifiers that merely contain the pattern text must not match:
    // `thread_rng_calls` is an Ident token distinct from `thread_rng`.
    thread_rng_calls + 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_ambient_entropy() {
        let x: f64 = rand::random();
        assert!((0.0..=1.0).contains(&x));
    }
}

//! Fire corpus for `wall-clock`: ambient time reads in library code.

use std::time::{Instant, SystemTime};

pub fn elapsed_us() -> u128 {
    let t0 = Instant::now(); // expect: wall-clock
    t0.elapsed().as_micros()
}

pub fn unix_seconds() -> u64 {
    let now = SystemTime::now(); // expect: wall-clock
    match now.duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}

pub fn fully_qualified() -> std::time::Instant {
    std::time::Instant::now() // expect: wall-clock
}

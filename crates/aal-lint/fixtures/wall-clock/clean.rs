//! Clean corpus for `wall-clock`: every near-miss the rule must ignore.
//!
//! A doc mention of Instant::now() is not a violation, and neither is
//! the block-comment one below: /* SystemTime::now() */

pub fn in_a_string() -> &'static str {
    "calling Instant::now() here would be a violation, but this is text"
}

pub fn in_a_raw_string() -> &'static str {
    r#"SystemTime::now() inside r"" is still just text"#
}

pub fn waived() -> std::time::Instant {
    // aal-lint: allow(wall-clock, reason = "fixture exercises a leading waiver")
    std::time::Instant::now()
}

pub fn similar_names(instant_now: u64) -> u64 {
    // An identifier merely *containing* the words must not match.
    let now = instant_now;
    now
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_secs() < 1000);
    }
}

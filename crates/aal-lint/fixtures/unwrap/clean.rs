//! Clean corpus for `unwrap`: fallible-access patterns that never panic,
//! waived infallible sites, and test code.

pub fn defaulted(s: &str) -> u64 {
    s.parse().unwrap_or(0)
}

pub fn lazily_defaulted(s: &str) -> u64 {
    s.parse().unwrap_or_else(|_| s.len() as u64)
}

pub fn propagated(s: &str) -> Result<u64, std::num::ParseIntError> {
    let n: u64 = s.parse()?;
    Ok(n * 2)
}

pub fn waived_infallible() -> u64 {
    // aal-lint: allow(unwrap, reason = "a literal always parses as u64")
    "42".parse().unwrap()
}

pub fn text_mention() -> &'static str {
    ".unwrap() in a string or // .expect(msg) comment is not a call"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_unwrap_freely() {
        assert_eq!("7".parse::<u64>().unwrap(), 7);
        assert_eq!(propagated("3").expect("parses"), 6);
    }
}

//! Fire corpus for `unwrap`: panicking result/option access in library
//! code.

pub fn bare_unwrap(xs: &[u64]) -> u64 {
    *xs.first().unwrap() // expect: unwrap
}

pub fn with_message(s: &str) -> u64 {
    s.parse().expect("caller passes digits") // expect: unwrap
}

pub fn chained(path: &str) -> String {
    std::fs::read_to_string(path).unwrap().trim().to_string() // expect: unwrap
}

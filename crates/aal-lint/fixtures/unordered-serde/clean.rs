//! Clean corpus for `unordered-serde`: ordered collections in derived
//! items, and hash collections that never touch serde.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSummary {
    pub name: String,
    pub counters: BTreeMap<String, u64>,
    pub seen: BTreeSet<u64>,
}

// No Serialize in the derive list: in-memory key order never leaks.
#[derive(Debug, Clone, Default)]
pub struct ScratchIndex {
    pub by_name: HashMap<String, usize>,
}

pub fn lookup_only(index: &HashMap<String, usize>, name: &str) -> Option<usize> {
    // A HashMap used purely for keyed lookup outside any derived item.
    index.get(name).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Test-only serialization helpers may use hash collections.
    #[derive(Serialize)]
    struct Probe {
        order_free: std::collections::HashMap<String, u64>,
    }

    #[test]
    fn lookup_finds_inserted_keys() {
        let mut m = HashMap::new();
        m.insert("a".to_string(), 1usize);
        assert_eq!(lookup_only(&m, "a"), Some(1));
    }
}

//! Fire corpus for `unordered-serde`: hash collections inside items that
//! derive `Serialize`, where iteration order leaks into artifacts.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSummary {
    pub name: String,
    pub counters: HashMap<String, u64>, // expect: unordered-serde
    pub seen: HashSet<u64>,             // expect: unordered-serde
}

#[derive(Serialize)]
pub enum Artifact {
    Flat(Vec<u64>),
    Keyed { by_name: HashMap<String, f64> }, // expect: unordered-serde
}

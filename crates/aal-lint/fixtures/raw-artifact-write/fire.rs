//! Fire corpus for `raw-artifact-write`: artifact writes that bypass the
//! append-before-apply / temp+fsync+rename discipline.

use std::fs::File;
use std::io::Write;
use std::path::Path;

pub fn clobber_checkpoint(path: &Path, body: &str) -> std::io::Result<()> {
    let mut f = File::create(path)?; // expect: raw-artifact-write
    f.write_all(body.as_bytes())
}

pub fn one_shot(path: &Path, body: &str) -> std::io::Result<()> {
    std::fs::write(path, body) // expect: raw-artifact-write
}

pub fn qualified(path: &Path) -> std::io::Result<std::fs::File> {
    std::fs::File::create(path) // expect: raw-artifact-write
}

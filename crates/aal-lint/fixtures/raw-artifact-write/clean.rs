//! Clean corpus for `raw-artifact-write`: the blessed write paths.

use std::io::Write;
use std::path::Path;

pub fn temp_fsync_rename(dir: &Path, name: &str, body: &str) -> std::io::Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    {
        // aal-lint: allow(raw-artifact-write, reason = "temp side of temp+fsync+rename")
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(body.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, dir.join(name))
}

pub fn append_only(path: &Path, line: &str) -> std::io::Result<()> {
    // OpenOptions-append is the crash-safe discipline; only create/write
    // (whole-file clobbers) are flagged.
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(f, "{line}")
}

pub fn mentioned_in_text() -> &'static str {
    "File::create and fs::write are the APIs this rule rejects"
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_write_scratch_files() {
        let dir = std::env::temp_dir();
        std::fs::write(dir.join("aal-lint-fixture-scratch"), "x").unwrap();
    }
}

//! Clean corpus for `thread-spawn`: work routed through the executor,
//! textual mentions, and test-only threads.

pub fn through_the_executor() -> &'static str {
    // Real code submits jobs to executor::Pool; `thread::spawn` stays a
    // string here, not a call.
    "use executor::Pool instead of thread::spawn"
}

pub fn waived_shutdown_helper(work: impl FnOnce() + Send + 'static) {
    // aal-lint: allow(thread-spawn, reason = "fixture exercises a waived spawn")
    std::thread::spawn(work);
}

pub fn spawn_like_names(thread_spawn_count: usize) -> usize {
    thread_spawn_count + 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_spawn_directly() {
        let h = std::thread::spawn(|| 7);
        assert_eq!(h.join().unwrap(), 7);
    }
}

//! Fire corpus for `thread-spawn`: ad-hoc threads outside the executor.

pub fn fire_and_forget(work: impl FnOnce() + Send + 'static) {
    std::thread::spawn(work); // expect: thread-spawn
}

pub fn named_worker() -> std::io::Result<std::thread::JoinHandle<()>> {
    std::thread::Builder::new() // expect: thread-spawn
        .name("stray-worker".into())
        .spawn(|| {})
}

pub fn imported(work: impl FnOnce() + Send + 'static) {
    use std::thread;
    thread::spawn(work); // expect: thread-spawn
}

//! The invariant rule catalog and the token-pattern matcher.
//!
//! Each rule is a set of significant-token patterns (identifier / single-
//! character punctuation sequences). Matching on tokens rather than text
//! means strings, raw strings, and comments can never fire a rule, and
//! `unwrap_or_else` can never be mistaken for `unwrap`.
//!
//! The catalog (see DESIGN.md §14 for the full rationale):
//!
//! | rule                | category     | fires on                                   |
//! |---------------------|--------------|--------------------------------------------|
//! | `wall-clock`        | determinism  | `SystemTime::now(` / `Instant::now(`       |
//! | `ambient-rng`       | determinism  | `thread_rng` / `from_entropy` / `OsRng` /  |
//! |                     |              | `from_os_rng` / `rand::random(`            |
//! | `unordered-serde`   | determinism  | `HashMap`/`HashSet` inside an item that    |
//! |                     |              | derives `Serialize`                        |
//! | `raw-artifact-write`| crash-safety | `File::create(` / `fs::write(` in crates   |
//! |                     |              | holding durable artifacts                  |
//! | `thread-spawn`      | concurrency  | `thread::spawn(` / `thread::Builder::new`  |
//! | `lock-unwrap`       | concurrency  | `.lock()/.read()/.write()` chained into    |
//! |                     |              | `.unwrap()`/`.expect(`                     |
//! | `panic`             | panic-policy | `panic!` / `todo!` / `unimplemented!`      |
//! | `unwrap`            | panic-policy | `.unwrap()` / `.expect(`                   |
//!
//! Deliberate scope limits: `assert!`/`debug_assert!` are *not* flagged
//! (asserting an invariant is the policy-blessed way to panic), and
//! `unreachable!` is allowed (it documents provably dead branches).

use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;

/// A single element of a token pattern.
#[derive(Debug, Clone, Copy)]
pub enum M {
    /// An identifier with exactly this text.
    Id(&'static str),
    /// A punctuation token with exactly this text.
    P(&'static str),
}

/// One lint rule: stable name, category, patterns, and catalog prose.
pub struct Rule {
    pub name: &'static str,
    pub category: &'static str,
    /// One-line description for `aal-lint rules` and reports.
    pub desc: &'static str,
    /// What to do instead — rendered in the finding message.
    pub instead: &'static str,
    patterns: &'static [&'static [M]],
}

/// The full catalog, in reporting order.
pub static RULES: &[Rule] = &[
    Rule {
        name: "wall-clock",
        category: "determinism",
        desc: "reads the wall clock (SystemTime::now / Instant::now)",
        instead: "route timing through telemetry spans, or waive explicitly \
                  timed code",
        patterns: &[
            &[M::Id("SystemTime"), M::P(":"), M::P(":"), M::Id("now"), M::P("(")],
            &[M::Id("Instant"), M::P(":"), M::P(":"), M::Id("now"), M::P("(")],
        ],
    },
    Rule {
        name: "ambient-rng",
        category: "determinism",
        desc: "draws entropy from an ambient RNG (thread_rng / OsRng / \
               from_entropy / rand::random)",
        instead: "thread a seeded rand_chacha RNG from the run seed",
        patterns: &[
            &[M::Id("thread_rng"), M::P("(")],
            &[M::Id("from_entropy"), M::P("(")],
            &[M::Id("from_os_rng"), M::P("(")],
            &[M::Id("OsRng")],
            &[M::Id("rand"), M::P(":"), M::P(":"), M::Id("random"), M::P("(")],
        ],
    },
    Rule {
        name: "unordered-serde",
        category: "determinism",
        desc: "HashMap/HashSet inside a #[derive(Serialize)] item makes \
               serialized key order nondeterministic",
        instead: "use BTreeMap/BTreeSet so artifacts are byte-stable",
        patterns: &[], // special-cased: needs derive-span analysis
    },
    Rule {
        name: "raw-artifact-write",
        category: "crash-safety",
        desc: "writes an artifact with raw File::create / fs::write, \
               bypassing the append-before-apply discipline",
        instead: "go through the checksummed appender or a \
                  temp+fsync+rename helper",
        patterns: &[
            &[M::Id("File"), M::P(":"), M::P(":"), M::Id("create"), M::P("(")],
            &[M::Id("fs"), M::P(":"), M::P(":"), M::Id("write"), M::P("(")],
        ],
    },
    Rule {
        name: "thread-spawn",
        category: "concurrency",
        desc: "spawns a thread outside the executor crate",
        instead: "run work through executor's pipeline/scheduler so \
                  ordering and shutdown stay centralized",
        patterns: &[
            &[M::Id("thread"), M::P(":"), M::P(":"), M::Id("spawn"), M::P("(")],
            &[
                M::Id("thread"),
                M::P(":"),
                M::P(":"),
                M::Id("Builder"),
                M::P(":"),
                M::P(":"),
                M::Id("new"),
            ],
        ],
    },
    Rule {
        name: "lock-unwrap",
        category: "concurrency",
        desc: "unwraps a poisoned-lock result at the call site",
        instead: "use telemetry::sync::{lock_or_recover, read_or_recover, \
                  write_or_recover} — the single documented poisoning policy",
        patterns: &[
            &[
                M::P("."),
                M::Id("lock"),
                M::P("("),
                M::P(")"),
                M::P("."),
                M::Id("unwrap"),
                M::P("("),
                M::P(")"),
            ],
            &[
                M::P("."),
                M::Id("lock"),
                M::P("("),
                M::P(")"),
                M::P("."),
                M::Id("expect"),
                M::P("("),
            ],
            &[
                M::P("."),
                M::Id("read"),
                M::P("("),
                M::P(")"),
                M::P("."),
                M::Id("unwrap"),
                M::P("("),
                M::P(")"),
            ],
            &[
                M::P("."),
                M::Id("read"),
                M::P("("),
                M::P(")"),
                M::P("."),
                M::Id("expect"),
                M::P("("),
            ],
            &[
                M::P("."),
                M::Id("write"),
                M::P("("),
                M::P(")"),
                M::P("."),
                M::Id("unwrap"),
                M::P("("),
                M::P(")"),
            ],
            &[
                M::P("."),
                M::Id("write"),
                M::P("("),
                M::P(")"),
                M::P("."),
                M::Id("expect"),
                M::P("("),
            ],
        ],
    },
    Rule {
        name: "panic",
        category: "panic-policy",
        desc: "panics unconditionally (panic! / todo! / unimplemented!)",
        instead: "return a typed error; assert!/debug_assert! remain the \
                  blessed way to check invariants",
        patterns: &[
            &[M::Id("panic"), M::P("!")],
            &[M::Id("todo"), M::P("!")],
            &[M::Id("unimplemented"), M::P("!")],
        ],
    },
    Rule {
        name: "unwrap",
        category: "panic-policy",
        desc: ".unwrap()/.expect() in non-test library code",
        instead: "propagate a typed error with context, or waive with the \
                  reason the value is statically infallible",
        patterns: &[
            &[M::P("."), M::Id("unwrap"), M::P("("), M::P(")")],
            &[M::P("."), M::Id("expect"), M::P("(")],
        ],
    },
];

/// Looks up a rule by name.
#[must_use]
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// A raw pattern match: rule plus the significant-token span it covers.
pub struct RawMatch {
    pub rule: &'static Rule,
    pub start: usize,
    pub end: usize,
    pub line: u32,
    /// The token text that anchors the message (e.g. `unwrap`).
    pub what: String,
}

fn tok_matches(t: &Tok<'_>, m: M) -> bool {
    match m {
        M::Id(s) => t.kind == TokKind::Ident && t.text == s,
        M::P(s) => t.kind == TokKind::Punct && t.text == s,
    }
}

/// Runs every pattern of `rule` over the significant tokens of `file`,
/// skipping test regions.
pub fn pattern_matches(file: &SourceFile<'_>, rule: &'static Rule) -> Vec<RawMatch> {
    let sig = &file.sig;
    let mut out = Vec::new();
    for i in 0..sig.len() {
        for pat in rule.patterns {
            if i + pat.len() > sig.len() {
                continue;
            }
            if !pat.iter().enumerate().all(|(j, &m)| tok_matches(&sig[i + j], m)) {
                continue;
            }
            if file.is_test(i) {
                continue;
            }
            let what = pat
                .iter()
                .zip(&sig[i..])
                .filter(|(m, _)| matches!(m, M::Id(_)))
                .map(|(_, t)| t.text)
                .collect::<Vec<_>>()
                .join("::");
            out.push(RawMatch { rule, start: i, end: i + pat.len() - 1, line: sig[i].line, what });
            break; // one match per rule per start index
        }
    }
    out
}

/// `unordered-serde`: find `#[derive(.. Serialize ..)]` attributes, then
/// flag `HashMap`/`HashSet` tokens inside the derived item's span.
pub fn unordered_serde_matches(file: &SourceFile<'_>, rule: &'static Rule) -> Vec<RawMatch> {
    let sig = &file.sig;
    let mut out = Vec::new();
    let mut i = 0;
    while i < sig.len() {
        let Some((attr_end, derives_serialize)) = derive_serialize_at(sig, i) else {
            i += 1;
            continue;
        };
        if !derives_serialize {
            i = attr_end + 1;
            continue;
        }
        // Skip trailing attributes, then span the item.
        let mut j = attr_end + 1;
        while sig.get(j).map(|t| t.text) == Some("#") {
            j = skip_attr(sig, j);
        }
        let item_end = crate::source::item_end(sig, j);
        let last = item_end.min(sig.len().saturating_sub(1));
        for (k, t) in sig.iter().enumerate().take(last + 1).skip(j) {
            if t.kind == TokKind::Ident
                && (t.text == "HashMap" || t.text == "HashSet")
                && !file.is_test(k)
            {
                out.push(RawMatch {
                    rule,
                    start: k,
                    end: k,
                    line: t.line,
                    what: t.text.to_string(),
                });
            }
        }
        i = item_end + 1;
    }
    out
}

/// If `i` starts an attribute, returns `(index of closing ], attribute is a
/// derive containing Serialize)`.
fn derive_serialize_at(sig: &[Tok<'_>], i: usize) -> Option<(usize, bool)> {
    if sig[i].text != "#" || sig.get(i + 1).map(|t| t.text) != Some("[") {
        return None;
    }
    let mut depth = 0usize;
    let mut k = i + 1;
    let mut is_derive = false;
    let mut has_serialize = false;
    while k < sig.len() {
        match sig[k].text {
            "[" | "(" => depth += 1,
            "]" | ")" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
            }
            "derive" if k == i + 2 => is_derive = true,
            "Serialize" => has_serialize = true,
            _ => {}
        }
        k += 1;
    }
    Some((k.min(sig.len().saturating_sub(1)), is_derive && has_serialize))
}

/// Steps over an attribute starting at `i` (`#` token), returning the index
/// after its closing `]`.
fn skip_attr(sig: &[Tok<'_>], i: usize) -> usize {
    let mut depth = 0usize;
    let mut k = i + 1;
    while k < sig.len() {
        match sig[k].text {
            "[" | "(" => depth += 1,
            "]" | ")" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
        k += 1;
    }
    sig.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matches(src: &str, rule: &str) -> Vec<u32> {
        let file = SourceFile::parse("crates/x/src/lib.rs", src);
        let r = rule_by_name(rule).unwrap();
        let ms = if rule == "unordered-serde" {
            unordered_serde_matches(&file, r)
        } else {
            pattern_matches(&file, r)
        };
        ms.into_iter().map(|m| m.line).collect()
    }

    #[test]
    fn wall_clock_fires_on_calls_not_strings() {
        assert_eq!(matches("fn f() { let t = Instant::now(); }", "wall-clock"), vec![1]);
        assert!(matches("fn f() { let t = \"Instant::now()\"; }", "wall-clock").is_empty());
        assert!(matches("// Instant::now()\nfn f() {}", "wall-clock").is_empty());
    }

    #[test]
    fn unwrap_ignores_unwrap_or_else() {
        assert!(
            matches("fn f(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 0) }", "unwrap").is_empty()
        );
        assert_eq!(matches("fn f(x: Option<u8>) -> u8 { x.unwrap() }", "unwrap"), vec![1]);
        assert_eq!(matches("fn f(x: Option<u8>) -> u8 { x.expect(\"set\") }", "unwrap"), vec![1]);
    }

    #[test]
    fn lock_unwrap_spans_lines() {
        assert_eq!(
            matches(
                "fn f(m: &std::sync::Mutex<u8>) { *m.lock()\n    .unwrap() += 1; }",
                "lock-unwrap"
            ),
            vec![1]
        );
        // io::Write::write takes an argument: never matched.
        assert!(matches("fn f() { w.write(buf).unwrap(); }", "lock-unwrap").is_empty());
    }

    #[test]
    fn unordered_serde_scopes_to_derived_items() {
        let src = "#[derive(Clone, Serialize)]\nstruct A { m: HashMap<String, u8> }\nstruct B { m: HashMap<String, u8> }\n";
        assert_eq!(matches(src, "unordered-serde"), vec![2]);
        let tuple = "#[derive(Serialize)]\npub struct T(pub HashSet<u8>);\n";
        assert_eq!(matches(tuple, "unordered-serde"), vec![2]);
        let derive_only_de = "#[derive(Deserialize)]\nstruct C { m: HashMap<String, u8> }\n";
        assert!(matches(derive_only_de, "unordered-serde").is_empty());
    }

    #[test]
    fn thread_spawn_catches_builder_form() {
        assert_eq!(
            matches("fn f() { std::thread::Builder::new().name(\"x\".into()); }", "thread-spawn"),
            vec![1]
        );
        assert_eq!(matches("fn f() { thread::spawn(|| {}); }", "thread-spawn"), vec![1]);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); panic!(); }\n}\n";
        assert!(matches(src, "unwrap").is_empty());
        assert!(matches(src, "panic").is_empty());
    }
}

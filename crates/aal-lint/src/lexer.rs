//! A minimal, self-contained Rust lexer.
//!
//! The linter matches invariant violations on *token* streams, never on raw
//! text, so occurrences of e.g. `Instant::now()` inside strings, raw strings,
//! or comments can never fire a rule. The lexer therefore has to get exactly
//! one thing right: the boundaries of comments, string/char literals (plain,
//! raw, byte), lifetimes, identifiers, numbers, and punctuation. It does not
//! validate the source — malformed input still lexes (greedily, to EOF where
//! a terminator is missing) and always round-trips byte-for-byte:
//! concatenating `Tok::text` in order reproduces the input exactly.

/// Token classes, only as fine-grained as rule matching needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Horizontal/vertical whitespace run.
    Whitespace,
    /// `// ...` up to (not including) the newline. Includes `///` and `//!`.
    LineComment,
    /// `/* ... */`, nesting-aware; unterminated comments run to EOF.
    BlockComment,
    /// `"..."` or `b"..."`, escape-aware.
    Str,
    /// `r"..."`, `r#"..."#`, `br##"..."##`, any hash depth.
    RawStr,
    /// `'x'`, `'\n'`, `'\u{1F600}'`, `b'x'`.
    Char,
    /// `'ident` that is not a char literal (e.g. `'static`, `'a`).
    Lifetime,
    /// Numeric literal (integers, floats, suffixed forms) — lexed loosely.
    Num,
    /// Identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// Any single remaining character.
    Punct,
}

impl TokKind {
    /// True for tokens rules can match on (not whitespace or comments).
    #[must_use]
    pub fn is_significant(self) -> bool {
        !matches!(self, TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment)
    }
}

/// One lexed token: class, exact source slice, and 1-based start line.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    pub kind: TokKind,
    pub text: &'a str,
    pub line: u32,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Cursor over `char_indices` with byte-offset bookkeeping.
struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.peek().is_some_and(&pred) {
            self.bump();
        }
    }
}

/// Lexes `src` into a complete token cover: every byte of the input belongs
/// to exactly one token, in order.
#[must_use]
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let mut cur = Cursor { src, pos: 0, line: 1 };
    let mut toks = Vec::new();
    while let Some(c) = cur.peek() {
        let start = cur.pos;
        let line = cur.line;
        let kind = lex_one(&mut cur, c);
        debug_assert!(cur.pos > start, "lexer must always make progress");
        toks.push(Tok { kind, text: &src[start..cur.pos], line });
    }
    toks
}

fn lex_one(cur: &mut Cursor<'_>, c: char) -> TokKind {
    match c {
        _ if c.is_whitespace() => {
            cur.eat_while(char::is_whitespace);
            TokKind::Whitespace
        }
        '/' if cur.peek2() == Some('/') => {
            cur.eat_while(|c| c != '\n');
            TokKind::LineComment
        }
        '/' if cur.peek2() == Some('*') => {
            lex_block_comment(cur);
            TokKind::BlockComment
        }
        '"' => {
            cur.bump();
            lex_str_body(cur);
            TokKind::Str
        }
        'r' => lex_r(cur),
        'b' => lex_b(cur),
        '\'' => lex_quote(cur),
        '0'..='9' => {
            lex_num(cur);
            TokKind::Num
        }
        _ if is_ident_start(c) => {
            cur.eat_while(is_ident_continue);
            TokKind::Ident
        }
        _ => {
            cur.bump();
            TokKind::Punct
        }
    }
}

fn lex_block_comment(cur: &mut Cursor<'_>) {
    cur.bump(); // '/'
    cur.bump(); // '*'
    let mut depth = 1u32;
    while depth > 0 {
        match (cur.peek(), cur.peek2()) {
            (Some('/'), Some('*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some('*'), Some('/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break, // unterminated: runs to EOF
        }
    }
}

/// Body of a `"`-delimited string, opening quote already consumed.
fn lex_str_body(cur: &mut Cursor<'_>) {
    loop {
        match cur.bump() {
            Some('\\') => {
                cur.bump(); // skip the escaped char, incl. \" and \\
            }
            Some('"') | None => break,
            Some(_) => {}
        }
    }
}

/// `r` — raw string `r"`/`r#"`, raw identifier `r#ident`, or plain ident.
fn lex_r(cur: &mut Cursor<'_>) -> TokKind {
    let rest = &cur.src[cur.pos + 1..];
    let hashes = rest.chars().take_while(|&c| c == '#').count();
    let after = rest[hashes..].chars().next();
    if after == Some('"') {
        cur.bump(); // 'r'
        lex_raw_str_body(cur, hashes);
        return TokKind::RawStr;
    }
    if hashes == 1 && after.is_some_and(is_ident_start) {
        cur.bump(); // 'r'
        cur.bump(); // '#'
        cur.eat_while(is_ident_continue);
        return TokKind::Ident;
    }
    cur.eat_while(is_ident_continue);
    TokKind::Ident
}

/// `b` — byte string `b"`, byte char `b'`, raw byte string `br#"`, or ident.
fn lex_b(cur: &mut Cursor<'_>) -> TokKind {
    match cur.peek2() {
        Some('"') => {
            cur.bump(); // 'b'
            cur.bump(); // '"'
            lex_str_body(cur);
            TokKind::Str
        }
        Some('\'') => {
            cur.bump(); // 'b'
            lex_quote(cur)
        }
        Some('r') => {
            let rest = &cur.src[cur.pos + 2..];
            let hashes = rest.chars().take_while(|&c| c == '#').count();
            if rest[hashes..].starts_with('"') {
                cur.bump(); // 'b'
                cur.bump(); // 'r'
                lex_raw_str_body(cur, hashes);
                TokKind::RawStr
            } else {
                cur.eat_while(is_ident_continue);
                TokKind::Ident
            }
        }
        _ => {
            cur.eat_while(is_ident_continue);
            TokKind::Ident
        }
    }
}

/// Raw string after the `r`/`br` prefix: `#* " ... " #*` with `hashes` hashes.
fn lex_raw_str_body(cur: &mut Cursor<'_>, hashes: usize) {
    for _ in 0..hashes {
        cur.bump();
    }
    cur.bump(); // opening '"'
    loop {
        match cur.bump() {
            Some('"') => {
                let rest = &cur.src[cur.pos..];
                if rest.chars().take(hashes).filter(|&c| c == '#').count() == hashes {
                    for _ in 0..hashes {
                        cur.bump();
                    }
                    return;
                }
            }
            None => return, // unterminated: runs to EOF
            Some(_) => {}
        }
    }
}

/// `'` — char literal or lifetime. The decisive lookahead: `'x'` (closing
/// quote after one char or an escape sequence) is a char, `'ident` without a
/// closing quote is a lifetime.
fn lex_quote(cur: &mut Cursor<'_>) -> TokKind {
    cur.bump(); // opening '\''
    match cur.peek() {
        Some('\\') => {
            cur.bump();
            cur.bump(); // escaped char
                        // Consume to the closing quote; covers \u{...} and malformed
                        // tails without ever crossing a newline.
            cur.eat_while(|c| c != '\'' && c != '\n');
            cur.bump();
            TokKind::Char
        }
        Some(c) if is_ident_continue(c) => {
            cur.eat_while(is_ident_continue);
            if cur.peek() == Some('\'') {
                cur.bump();
                TokKind::Char
            } else {
                TokKind::Lifetime
            }
        }
        Some('\'') | None => {
            // `''` (malformed) or a trailing quote at EOF.
            cur.bump();
            TokKind::Char
        }
        Some(_) => {
            // `'('` etc: a single non-ident char — char literal if closed.
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            TokKind::Char
        }
    }
}

/// Numeric literal, lexed loosely: digits/alnum/underscore runs, a fraction
/// part when `.` is followed by a digit (so `1..4` stays three tokens), and
/// exponent signs (`1e-3`). Precision here only has to be good enough to
/// never swallow adjacent punctuation that rules might match on.
fn lex_num(cur: &mut Cursor<'_>) {
    loop {
        cur.eat_while(|c| c.is_alphanumeric() || c == '_');
        let prev_is_exp =
            cur.src[..cur.pos].chars().next_back().is_some_and(|c| c == 'e' || c == 'E');
        match (cur.peek(), cur.peek2()) {
            (Some('.'), Some(d)) if d.is_ascii_digit() => {
                cur.bump();
            }
            (Some('+' | '-'), Some(d)) if prev_is_exp && d.is_ascii_digit() => {
                cur.bump();
            }
            _ => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn roundtrip(src: &str) {
        let joined: String = lex(src).iter().map(|t| t.text).collect();
        assert_eq!(joined, src);
    }

    #[test]
    fn covers_and_roundtrips_basics() {
        for src in [
            "fn main() { let x = 1; }",
            "let s = \"Instant::now() \\\" inside\";",
            "let r = r#\"raw \" with // comment\"#;",
            "let r = br##\"deep \"# edge\"##;",
            "/* outer /* nested */ still */ let x = 'a';",
            "// line Instant::now()\nlet t = 1.5e-3;",
            "let l: &'static str = \"x\"; let c = '\\u{1F600}';",
            "for i in 0..10 { v[i] = b'\\n'; }",
            "let r#match = r#\"x\"#;",
            "let b = b\"bytes \\\" ok\";",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let toks = kinds("\"a::b()\" /* c::d() */ // e::f()\n");
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[2].0, TokKind::BlockComment);
        assert_eq!(toks[4].0, TokKind::LineComment);
    }

    #[test]
    fn lifetime_vs_char() {
        let toks: Vec<_> = kinds("<'a> 'x' 'static '\\'' ")
            .into_iter()
            .filter(|(k, _)| k.is_significant())
            .collect();
        assert_eq!(
            toks,
            vec![
                (TokKind::Punct, "<"),
                (TokKind::Lifetime, "'a"),
                (TokKind::Punct, ">"),
                (TokKind::Char, "'x'"),
                (TokKind::Lifetime, "'static"),
                (TokKind::Char, "'\\''"),
            ]
        );
    }

    #[test]
    fn raw_ident_vs_raw_str() {
        assert_eq!(kinds("r#fn")[0], (TokKind::Ident, "r#fn"));
        assert_eq!(kinds("r#\"s\"#")[0], (TokKind::RawStr, "r#\"s\"#"));
        assert_eq!(kinds("r\"s\"")[0], (TokKind::RawStr, "r\"s\""));
    }

    #[test]
    fn unterminated_inputs_still_cover() {
        for src in ["\"open", "/* open /* deeper", "r##\"open\"#", "'\\"] {
            roundtrip(src);
        }
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<_> =
            toks.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}

//! CLI entry point: `aal-lint check` / `aal-lint rules`.

use aal_lint::config::Config;
use aal_lint::rules::RULES;
use aal_lint::{collect_files, lint_files, Report};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  aal-lint check [--json] [--root DIR] [--config FILE] [--no-config] [PATHS...]
  aal-lint rules [--json]

check scans the workspace (or just PATHS) for invariant violations and
exits 0 when clean, 1 on findings, 2 on usage or I/O errors. The config
is read from <root>/aal-lint.toml unless --config overrides it or
--no-config selects built-in defaults (all rules, everywhere — what the
fixture corpus runs under). Waive a finding at its use site with:
  // aal-lint: allow(<rule>, reason = \"why this exception is sound\")
rules lists the invariant catalog.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("aal-lint: {e}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => rules(&args[1..]),
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("missing command".into()),
    }
}

fn check(args: &[String]) -> Result<ExitCode, String> {
    let mut json = false;
    let mut no_config = false;
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--no-config" => no_config = true,
            "--root" => {
                root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--config" => {
                config_path = Some(PathBuf::from(it.next().ok_or("--config needs a file")?));
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`"));
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    let root = match root {
        Some(r) => r,
        None => find_root()?,
    };
    let cfg =
        if no_config { Config::default() } else { load_config(&root, config_path.as_deref())? };

    let files = if paths.is_empty() {
        collect_files(&root, &cfg)?
    } else {
        let mut out = Vec::new();
        for p in &paths {
            let abs = if p.is_absolute() { p.clone() } else { root.join(p) };
            if !abs.exists() {
                return Err(format!("no such path: {}", p.display()));
            }
            if abs.is_file() {
                out.push(abs);
                continue;
            }
            let sub = Config { roots: vec![".".into()], ..cfg.clone() };
            out.extend(collect_files(&abs, &sub)?);
        }
        out.sort();
        out.dedup();
        out
    };

    let report = lint_files(&root, &files, &cfg)?;
    if json {
        println!("{}", serde_json::to_string(&report).map_err(|e| format!("render json: {e}"))?);
    } else {
        print_human(&report);
    }
    Ok(if report.findings.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn print_human(report: &Report) {
    for f in &report.findings {
        println!("{}:{}: [{}/{}] {}", f.path, f.line, f.category, f.rule, f.message);
        if !f.snippet.is_empty() {
            println!("    > {}", f.snippet);
        }
    }
    let s = &report.summary;
    if !s.by_rule.is_empty() {
        let per: Vec<String> = s.by_rule.iter().map(|(r, n)| format!("{r}: {n}")).collect();
        println!("---\n{}", per.join(", "));
    }
    println!(
        "aal-lint: {} finding(s), {} waiver(s) honored, {} file(s) scanned",
        s.findings, s.waivers_used, s.files_scanned
    );
}

fn rules(args: &[String]) -> Result<ExitCode, String> {
    let json = args.iter().any(|a| a == "--json");
    if json {
        let list: Vec<serde_json::Value> = RULES
            .iter()
            .map(|r| {
                serde_json::json!({
                    "name": r.name,
                    "category": r.category,
                    "desc": r.desc,
                    "instead": r.instead,
                })
            })
            .collect();
        println!(
            "{}",
            serde_json::to_string(&serde_json::Value::Array(list))
                .map_err(|e| format!("render json: {e}"))?
        );
    } else {
        for r in RULES {
            println!("{:<20} {:<13} {}", r.name, r.category, r.desc);
            println!("{:<20} {:<13} fix: {}", "", "", r.instead);
        }
        println!("\nwaive at the use site with: // aal-lint: allow(<rule>, reason = \"...\")");
    }
    Ok(ExitCode::SUCCESS)
}

/// Walks up from the current directory to the first `aal-lint.toml` (or,
/// failing that, a workspace-root `Cargo.toml`).
fn find_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    let mut dir: &Path = &cwd;
    loop {
        if dir.join("aal-lint.toml").exists() {
            return Ok(dir.to_path_buf());
        }
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("read {}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir.to_path_buf());
            }
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return Ok(cwd),
        }
    }
}

fn load_config(root: &Path, explicit: Option<&Path>) -> Result<Config, String> {
    let path = match explicit {
        Some(p) => p.to_path_buf(),
        None => {
            let default = root.join("aal-lint.toml");
            if !default.exists() {
                return Ok(Config::default());
            }
            default
        }
    };
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    Config::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

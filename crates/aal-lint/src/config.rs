//! `aal-lint.toml` — scan roots and per-rule path scoping.
//!
//! The build environment vendors no TOML crate, so this module hand-parses
//! the small, line-oriented subset the config actually needs: `[section]`
//! headers, `key = "string"`, `key = true|false`, and string arrays (single-
//! or multi-line). Anything outside that subset is a hard error — config
//! typos must fail the lint run, not silently disable a rule.
//!
//! ```toml
//! [scan]
//! roots = ["crates", "src"]
//! exclude = ["crates/aal-lint/fixtures"]
//!
//! [rules.wall-clock]
//! # Rule disabled under these path prefixes:
//! allow = ["crates/telemetry"]
//!
//! [rules.raw-artifact-write]
//! # Rule enforced *only* under these path prefixes:
//! only = ["crates/tuning-db"]
//! ```

use std::collections::BTreeMap;

/// Scoping for one rule.
#[derive(Debug, Default, Clone)]
pub struct RuleScope {
    /// `false` turns the rule off everywhere.
    pub enabled: Option<bool>,
    /// Path prefixes where the rule does not apply.
    pub allow: Vec<String>,
    /// When non-empty, the rule applies *only* under these prefixes.
    pub only: Vec<String>,
}

/// Parsed configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories (relative to the workspace root) to scan for `.rs` files.
    pub roots: Vec<String>,
    /// Path prefixes excluded from the scan entirely.
    pub exclude: Vec<String>,
    /// Per-rule scoping, keyed by rule name.
    pub rules: BTreeMap<String, RuleScope>,
}

impl Default for Config {
    /// The no-config default: scan everything passed in, all rules active
    /// everywhere. This is what fixtures and `--no-config` runs use.
    fn default() -> Config {
        Config { roots: vec![".".into()], exclude: Vec::new(), rules: BTreeMap::new() }
    }
}

impl Config {
    /// Parses the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config { roots: Vec::new(), ..Config::default() };
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((n, raw)) = lines.next() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                let known = section == "scan" || section.starts_with("rules.");
                if !known {
                    return Err(format!("line {}: unknown section [{section}]", n + 1));
                }
                continue;
            }
            let Some((key, val)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", n + 1));
            };
            let (key, mut val) = (key.trim(), val.trim().to_string());
            // Multi-line array: accumulate until the closing bracket.
            if val.starts_with('[') && !val.ends_with(']') {
                for (_, cont) in lines.by_ref() {
                    val.push(' ');
                    val.push_str(strip_comment(cont).trim());
                    if val.ends_with(']') {
                        break;
                    }
                }
            }
            apply_key(&mut cfg, &section, key, &val).map_err(|e| format!("line {}: {e}", n + 1))?;
        }
        if cfg.roots.is_empty() {
            cfg.roots.push(".".into());
        }
        Ok(cfg)
    }

    /// True when `rel_path` is excluded from scanning.
    #[must_use]
    pub fn is_excluded(&self, rel_path: &str) -> bool {
        self.exclude.iter().any(|p| path_has_prefix(rel_path, p))
    }

    /// True when `rule` applies to `rel_path` under this config.
    #[must_use]
    pub fn rule_applies(&self, rule: &str, rel_path: &str) -> bool {
        let Some(scope) = self.rules.get(rule) else {
            return true;
        };
        if scope.enabled == Some(false) {
            return false;
        }
        if !scope.only.is_empty() && !scope.only.iter().any(|p| path_has_prefix(rel_path, p)) {
            return false;
        }
        !scope.allow.iter().any(|p| path_has_prefix(rel_path, p))
    }
}

fn apply_key(cfg: &mut Config, section: &str, key: &str, val: &str) -> Result<(), String> {
    if section == "scan" {
        return match key {
            "roots" => {
                cfg.roots = parse_array(val)?;
                Ok(())
            }
            "exclude" => {
                cfg.exclude = parse_array(val)?;
                Ok(())
            }
            _ => Err(format!("unknown [scan] key `{key}`")),
        };
    }
    if let Some(rule) = section.strip_prefix("rules.") {
        let scope = cfg.rules.entry(rule.to_string()).or_default();
        return match key {
            "allow" => {
                scope.allow = parse_array(val)?;
                Ok(())
            }
            "only" => {
                scope.only = parse_array(val)?;
                Ok(())
            }
            "enabled" => {
                scope.enabled = Some(parse_bool(val)?);
                Ok(())
            }
            _ => Err(format!("unknown [rules.{rule}] key `{key}`")),
        };
    }
    Err(format!("key `{key}` outside any section"))
}

fn strip_comment(line: &str) -> &str {
    // A `#` inside a quoted string does not start a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_bool(val: &str) -> Result<bool, String> {
    match val {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(format!("expected true/false, got `{val}`")),
    }
}

fn parse_array(val: &str) -> Result<Vec<String>, String> {
    let Some(inner) = val.strip_prefix('[').and_then(|v| v.strip_suffix(']')) else {
        return Err(format!("expected a [\"...\"] array, got `{val}`"));
    };
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        let Some(s) = item.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
            return Err(format!("array items must be quoted strings, got `{item}`"));
        };
        out.push(s.trim_end_matches('/').to_string());
    }
    Ok(out)
}

/// Prefix match on whole path segments: `crates/cli` covers
/// `crates/cli/src/main.rs` but not `crates/cli-extras/x.rs`.
fn path_has_prefix(path: &str, prefix: &str) -> bool {
    path == prefix || path.strip_prefix(prefix).is_some_and(|rest| rest.starts_with('/'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_arrays() {
        let cfg = Config::parse(
            "# top comment\n[scan]\nroots = [\"crates\", \"src\"]\nexclude = [\n  \"vendor\", # stubs\n  \"target\",\n]\n\n[rules.wall-clock]\nallow = [\"crates/telemetry/\"]\n[rules.raw-artifact-write]\nonly = [\"crates/tuning-db\"]\nenabled = true\n",
        )
        .unwrap();
        assert_eq!(cfg.roots, vec!["crates", "src"]);
        assert_eq!(cfg.exclude, vec!["vendor", "target"]);
        assert!(cfg.rule_applies("wall-clock", "crates/cli/src/main.rs"));
        assert!(!cfg.rule_applies("wall-clock", "crates/telemetry/src/lib.rs"));
        assert!(cfg.rule_applies("raw-artifact-write", "crates/tuning-db/src/db.rs"));
        assert!(!cfg.rule_applies("raw-artifact-write", "crates/cli/src/main.rs"));
    }

    #[test]
    fn segment_prefix_matching() {
        assert!(path_has_prefix("crates/cli/src/main.rs", "crates/cli"));
        assert!(!path_has_prefix("crates/cli-extras/a.rs", "crates/cli"));
        assert!(path_has_prefix("crates/cli", "crates/cli"));
    }

    #[test]
    fn rejects_unknown_keys_and_sections() {
        assert!(Config::parse("[scan]\nbogus = true\n").is_err());
        assert!(Config::parse("[surprise]\n").is_err());
        assert!(Config::parse("orphan = 1\n").is_err());
        assert!(Config::parse("[rules.x]\nallow = \"not-an-array\"\n").is_err());
    }

    #[test]
    fn disabled_rule_never_applies() {
        let cfg = Config::parse("[rules.unwrap]\nenabled = false\n").unwrap();
        assert!(!cfg.rule_applies("unwrap", "crates/cli/src/main.rs"));
    }
}

//! Per-file source model: significant tokens, test-code regions, and
//! inline waivers.
//!
//! Rules never see raw text. They see the significant-token stream of a
//! [`SourceFile`], with two layers of context computed up front:
//!
//! - **Test regions** — spans covered by `#[cfg(test)]` / `#[test]` items
//!   (plus whole files under a `tests/` or `benches/` directory). Invariants
//!   are about shipped library code; test code is exempt from every rule.
//! - **Waivers** — `// aal-lint: allow(<rule>, reason = "...")` comments.
//!   A trailing waiver covers its own line; a waiver alone on a line covers
//!   the next line holding code. Waivers must name a known rule and carry a
//!   non-empty reason, and unused waivers are themselves findings, so the
//!   waiver inventory in the tree is always live and documented.

use crate::lexer::{lex, Tok, TokKind};

/// A parsed waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Line of the waiver comment itself.
    pub line: u32,
    /// Rule name the waiver targets.
    pub rule: String,
    /// Documented reason (always non-empty once validated).
    pub reason: String,
    /// Line whose findings this waiver suppresses.
    pub target_line: u32,
    /// Set when a finding was suppressed by this waiver.
    pub used: bool,
}

/// A malformed waiver comment, reported as a finding by the engine.
#[derive(Debug, Clone)]
pub struct WaiverError {
    pub line: u32,
    pub message: String,
}

/// Lexed file plus the context rules match against.
pub struct SourceFile<'a> {
    /// Significant tokens only (no whitespace, no comments).
    pub sig: Vec<Tok<'a>>,
    /// Sorted, disjoint spans over `sig` indices that are test code.
    test_spans: Vec<(usize, usize)>,
    /// Whether the whole file is test code (path under tests/ or benches/).
    all_test: bool,
    pub waivers: Vec<Waiver>,
    pub waiver_errors: Vec<WaiverError>,
}

impl<'a> SourceFile<'a> {
    /// Lexes and annotates one file. `rel_path` uses `/` separators.
    #[must_use]
    pub fn parse(rel_path: &str, src: &'a str) -> SourceFile<'a> {
        let toks = lex(src);
        let all_test = rel_path.split('/').any(|seg| seg == "tests" || seg == "benches");
        let sig: Vec<Tok<'a>> = toks.iter().copied().filter(|t| t.kind.is_significant()).collect();
        let test_spans = if all_test { Vec::new() } else { test_spans(&sig) };
        let mut file = SourceFile {
            sig,
            test_spans,
            all_test,
            waivers: Vec::new(),
            waiver_errors: Vec::new(),
        };
        if !all_test {
            file.collect_waivers(&toks);
        }
        file
    }

    /// True when the significant token at `idx` lies in test code.
    #[must_use]
    pub fn is_test(&self, idx: usize) -> bool {
        self.all_test || self.test_spans.iter().any(|&(a, b)| idx >= a && idx <= b)
    }

    /// Marks a matching waiver used and reports whether one covered
    /// `(rule, line)`.
    pub fn try_waive(&mut self, rule: &str, line: u32) -> bool {
        for w in &mut self.waivers {
            if w.rule == rule && w.target_line == line {
                w.used = true;
                return true;
            }
        }
        false
    }

    /// Parses waiver comments from the full token stream (`toks` includes
    /// comments; `self.sig` does not).
    fn collect_waivers(&mut self, toks: &[Tok<'a>]) {
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::LineComment {
                continue;
            }
            let body = t.text.trim_start_matches('/').trim();
            let Some(directive) = body.strip_prefix("aal-lint:") else {
                continue;
            };
            // Waivers inside test code would never suppress anything
            // (all rules are test-exempt); treat them as dead weight.
            let sig_after = self.sig.partition_point(|s| {
                (s.line, s.text.as_ptr() as usize) < (t.line, t.text.as_ptr() as usize)
            });
            if sig_after > 0 && self.is_test(sig_after.saturating_sub(1)) {
                continue;
            }
            match parse_directive(directive.trim()) {
                Ok((rule, reason)) => {
                    let trailing =
                        toks[..i].iter().any(|p| p.line == t.line && p.kind.is_significant());
                    let target_line = if trailing {
                        t.line
                    } else {
                        // First code line after the comment.
                        self.sig.get(sig_after).map_or(u32::MAX, |s| s.line)
                    };
                    self.waivers.push(Waiver {
                        line: t.line,
                        rule,
                        reason,
                        target_line,
                        used: false,
                    });
                }
                Err(message) => {
                    self.waiver_errors.push(WaiverError { line: t.line, message });
                }
            }
        }
    }
}

/// Parses `allow(<rule>, reason = "...")`, returning `(rule, reason)`.
fn parse_directive(s: &str) -> Result<(String, String), String> {
    let Some(inner) = s.strip_prefix("allow(").and_then(|r| r.strip_suffix(')')) else {
        return Err(format!("expected `allow(<rule>, reason = \"...\")`, got `{s}`"));
    };
    let Some((rule, rest)) = inner.split_once(',') else {
        return Err("waiver is missing the `reason = \"...\"` argument".into());
    };
    let rule = rule.trim();
    if rule.is_empty() {
        return Err("waiver names an empty rule".into());
    }
    let rest = rest.trim();
    let Some(q) = rest.strip_prefix("reason").map(str::trim_start) else {
        return Err("second waiver argument must be `reason = \"...\"`".into());
    };
    let Some(q) = q.strip_prefix('=').map(str::trim_start) else {
        return Err("second waiver argument must be `reason = \"...\"`".into());
    };
    let reason = q.strip_prefix('"').and_then(|r| r.strip_suffix('"'));
    match reason {
        Some(r) if !r.trim().is_empty() => Ok((rule.to_string(), r.to_string())),
        Some(_) => Err("waiver reason must not be empty".into()),
        None => Err("waiver reason must be a quoted string".into()),
    }
}

/// Finds `#[cfg(test)]`- and `#[test]`-covered item spans over significant
/// tokens. The scan is brace-matched, not grammar-aware: an attributed item
/// extends to its first top-level `;` or through its first balanced
/// `{ ... }` block, which is exactly right for `mod`, `fn`, `use`, `impl`,
/// and struct items.
fn test_spans(sig: &[Tok<'_>]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < sig.len() {
        if sig[i].text != "#" || sig.get(i + 1).map(|t| t.text) != Some("[") {
            i += 1;
            continue;
        }
        let attr_start = i;
        let Some((attr_end, is_test)) = scan_attr(sig, i + 1) else {
            break;
        };
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes between the test attr and the item.
        let mut j = attr_end + 1;
        while sig.get(j).map(|t| t.text) == Some("#") && sig.get(j + 1).map(|t| t.text) == Some("[")
        {
            match scan_attr(sig, j + 1) {
                Some((end, _)) => j = end + 1,
                None => return spans,
            }
        }
        let item_end = item_end(sig, j);
        spans.push((attr_start, item_end));
        i = item_end + 1;
    }
    spans
}

/// From the `[` at `open`, returns `(index of matching ], attr is a test
/// marker)`. Test markers: `#[test]` and any `#[cfg(...)]` that mentions
/// `test` without `not`.
fn scan_attr(sig: &[Tok<'_>], open: usize) -> Option<(usize, bool)> {
    let mut depth = 0usize;
    let mut saw_test = false;
    let mut saw_not = false;
    let mut k = open;
    while k < sig.len() {
        match sig[k].text {
            "[" | "(" => depth += 1,
            "]" | ")" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
            }
            "test" => saw_test = true,
            "not" => saw_not = true,
            _ => {}
        }
        k += 1;
    }
    if k >= sig.len() {
        return None;
    }
    let head = sig.get(open + 1).map(|t| t.text);
    let is_test = match head {
        Some("test") => k == open + 2, // exactly `#[test]`
        Some("cfg") => saw_test && !saw_not,
        _ => false,
    };
    Some((k, is_test))
}

/// Returns the index of the last token of the item starting at `start`:
/// the first top-level `;`, or the `}` closing the first top-level block.
pub(crate) fn item_end(sig: &[Tok<'_>], start: usize) -> usize {
    let mut depth = 0usize;
    let mut k = start;
    while k < sig.len() {
        match sig[k].text {
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            "{" => {
                // Enter the body, return at its matching close.
                let mut b = 1usize;
                k += 1;
                while k < sig.len() && b > 0 {
                    match sig[k].text {
                        "{" => b += 1,
                        "}" => b -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                return k.saturating_sub(1);
            }
            ";" if depth == 0 => return k,
            _ => {}
        }
        k += 1;
    }
    sig.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_exempt() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn b() { y.unwrap(); }\n}\nfn c() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let unwraps: Vec<bool> = f
            .sig
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "unwrap")
            .map(|(i, _)| f.is_test(i))
            .collect();
        assert_eq!(unwraps, vec![false, true]);
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nfn a() { x.unwrap(); }\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let idx = f.sig.iter().position(|t| t.text == "unwrap").unwrap();
        assert!(!f.is_test(idx));
    }

    #[test]
    fn tests_dir_is_fully_exempt() {
        let f = SourceFile::parse("crates/x/tests/t.rs", "fn a() { x.unwrap(); }");
        let idx = f.sig.iter().position(|t| t.text == "unwrap").unwrap();
        assert!(f.is_test(idx));
    }

    #[test]
    fn waiver_parses_and_targets_next_line() {
        let src = "// aal-lint: allow(unwrap, reason = \"startup config is static\")\nlet x = y.unwrap();\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert_eq!(f.waivers.len(), 1);
        assert_eq!(f.waivers[0].rule, "unwrap");
        assert_eq!(f.waivers[0].target_line, 2);
        assert!(f.waiver_errors.is_empty());
    }

    #[test]
    fn trailing_waiver_targets_own_line() {
        let src = "let x = y.unwrap(); // aal-lint: allow(unwrap, reason = \"ok\")\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert_eq!(f.waivers[0].target_line, 1);
    }

    #[test]
    fn waiver_without_reason_is_an_error() {
        for bad in [
            "// aal-lint: allow(unwrap)",
            "// aal-lint: allow(unwrap, reason = \"\")",
            "// aal-lint: allow(unwrap, because = \"x\")",
            "// aal-lint: deny(unwrap)",
        ] {
            let f = SourceFile::parse("crates/x/src/lib.rs", bad);
            assert_eq!(f.waiver_errors.len(), 1, "{bad}");
        }
    }
}

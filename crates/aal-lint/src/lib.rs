//! `aal-lint` — the workspace invariant linter.
//!
//! The stack's headline guarantees (byte-identical trial logs at any worker
//! count, kill-9-safe persistence, seeded reproducibility) are dynamic-test
//! enforced but easy to silently break: one stray `Instant::now` in a replay
//! path, a `HashMap` iterated into a serialized artifact, a raw
//! `File::create` bypassing append-before-apply. This crate enforces those
//! invariants *statically*, with a project-specific rule catalog
//! ([`rules::RULES`]), an allow-list config (`aal-lint.toml`), and inline
//! waivers that document every exception at its use site.
//!
//! Run it as `cargo run -p aal-lint -- check` (human output) or
//! `-- check --json` (machine-readable). See DESIGN.md §14 for the
//! invariant catalog and the waiver workflow.

pub mod config;
pub mod lexer;
pub mod rules;
pub mod source;

use config::Config;
use rules::{pattern_matches, rule_by_name, unordered_serde_matches, RawMatch, RULES};
use serde::Serialize;
use source::SourceFile;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One reported violation.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    /// Rule name (`wall-clock`, `unwrap`, ... or `waiver-syntax` /
    /// `unused-waiver` for waiver hygiene).
    pub rule: String,
    /// Rule category (`determinism`, `crash-safety`, `concurrency`,
    /// `panic-policy`, `waiver`).
    pub category: String,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line of the first offending token.
    pub line: u32,
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// Totals for one lint run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Summary {
    pub files_scanned: usize,
    pub findings: usize,
    pub waivers_used: usize,
    /// Finding count per rule (only non-zero entries).
    pub by_rule: BTreeMap<String, usize>,
}

/// Full machine-readable report (`check --json`).
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Report schema version.
    pub version: u32,
    pub summary: Summary,
    pub findings: Vec<Finding>,
}

/// Lints a single file's source under `cfg`. `rel_path` is the
/// workspace-relative path used for scoping and reporting.
#[must_use]
pub fn lint_source(rel_path: &str, src: &str, cfg: &Config) -> (Vec<Finding>, usize) {
    let mut file = SourceFile::parse(rel_path, src);
    let lines: Vec<&str> = src.lines().collect();
    let snippet = |line: u32| -> String {
        lines.get(line as usize - 1).map_or(String::new(), |l| l.trim().to_string())
    };

    // Collect raw matches for every rule active on this path.
    let mut raw: Vec<RawMatch> = Vec::new();
    for rule in RULES {
        if !cfg.rule_applies(rule.name, rel_path) {
            continue;
        }
        if rule.name == "unordered-serde" {
            raw.extend(unordered_serde_matches(&file, rule));
        } else {
            raw.extend(pattern_matches(&file, rule));
        }
    }

    // `.lock().unwrap()` is the lock-unwrap rule's finding, not a second
    // `unwrap` finding: drop panic-policy matches contained in a
    // concurrency match span so each site needs exactly one waiver.
    let lock_spans: Vec<(usize, usize)> =
        raw.iter().filter(|m| m.rule.name == "lock-unwrap").map(|m| (m.start, m.end)).collect();
    raw.retain(|m| {
        m.rule.name != "unwrap" || !lock_spans.iter().any(|&(a, b)| m.start >= a && m.end <= b)
    });

    let mut findings = Vec::new();
    let mut waivers_used = 0usize;
    for m in raw {
        if file.try_waive(m.rule.name, m.line) {
            waivers_used += 1;
            continue;
        }
        findings.push(Finding {
            rule: m.rule.name.to_string(),
            category: m.rule.category.to_string(),
            path: rel_path.to_string(),
            line: m.line,
            message: format!("{} (found `{}`) — {}", m.rule.desc, m.what, m.rule.instead),
            snippet: snippet(m.line),
        });
    }

    // Waiver hygiene: malformed directives, unknown rules, dead waivers.
    for e in &file.waiver_errors {
        findings.push(Finding {
            rule: "waiver-syntax".into(),
            category: "waiver".into(),
            path: rel_path.to_string(),
            line: e.line,
            message: e.message.clone(),
            snippet: snippet(e.line),
        });
    }
    for w in &file.waivers {
        if rule_by_name(&w.rule).is_none() {
            findings.push(Finding {
                rule: "waiver-syntax".into(),
                category: "waiver".into(),
                path: rel_path.to_string(),
                line: w.line,
                message: format!("waiver names unknown rule `{}`", w.rule),
                snippet: snippet(w.line),
            });
        } else if !w.used {
            findings.push(Finding {
                rule: "unused-waiver".into(),
                category: "waiver".into(),
                path: rel_path.to_string(),
                line: w.line,
                message: format!("waiver for `{}` suppresses nothing — remove it", w.rule),
                snippet: snippet(w.line),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    (findings, waivers_used)
}

/// Recursively collects `.rs` files under `root`-relative scan roots,
/// honoring excludes, in sorted (deterministic) order.
pub fn collect_files(root: &Path, cfg: &Config) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    for scan_root in &cfg.roots {
        let dir = root.join(scan_root);
        if !dir.exists() {
            continue;
        }
        walk(root, &dir, cfg, &mut out)?;
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, cfg: &Config, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let rel = rel_path(root, dir);
    if cfg.is_excluded(&rel) || rel.split('/').any(|s| s == "target" || s == ".git") {
        return Ok(());
    }
    if dir.is_file() {
        if dir.extension().is_some_and(|e| e == "rs") {
            out.push(dir.to_path_buf());
        }
        return Ok(());
    }
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
        walk(root, &entry.path(), cfg, out)?;
    }
    Ok(())
}

/// Workspace-relative display path with `/` separators.
#[must_use]
pub fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Lints every file in `files`, producing the final report.
pub fn lint_files(root: &Path, files: &[PathBuf], cfg: &Config) -> Result<Report, String> {
    let mut findings = Vec::new();
    let mut summary = Summary::default();
    for path in files {
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = rel_path(root, path);
        let (file_findings, waived) = lint_source(&rel, &src, cfg);
        summary.files_scanned += 1;
        summary.waivers_used += waived;
        findings.extend(file_findings);
    }
    for f in &findings {
        *summary.by_rule.entry(f.rule.clone()).or_insert(0) += 1;
    }
    summary.findings = findings.len();
    Ok(Report { version: 1, summary, findings })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::default()
    }

    #[test]
    fn end_to_end_finding_and_waiver() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let (f, waived) = lint_source("crates/x/src/lib.rs", src, &cfg());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wall-clock");
        assert_eq!(f[0].line, 1);
        assert_eq!(waived, 0);

        let waived_src = "// aal-lint: allow(wall-clock, reason = \"self-timing only\")\nfn f() { let t = std::time::Instant::now(); }\n";
        let (f, waived) = lint_source("crates/x/src/lib.rs", waived_src, &cfg());
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(waived, 1);
    }

    #[test]
    fn lock_unwrap_needs_one_waiver_not_two() {
        let src = "fn f(m: &std::sync::Mutex<u8>) { *m.lock().unwrap() += 1; }\n";
        let (f, _) = lint_source("crates/x/src/lib.rs", src, &cfg());
        let rules: Vec<&str> = f.iter().map(|x| x.rule.as_str()).collect();
        assert_eq!(rules, vec!["lock-unwrap"]);
    }

    #[test]
    fn unused_waiver_is_reported() {
        let src = "// aal-lint: allow(unwrap, reason = \"nothing here\")\nfn f() {}\n";
        let (f, _) = lint_source("crates/x/src/lib.rs", src, &cfg());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unused-waiver");
    }

    #[test]
    fn unknown_rule_waiver_is_reported() {
        let src = "// aal-lint: allow(no-such-rule, reason = \"x\")\nfn f() { y.unwrap(); }\n";
        let (f, _) = lint_source("crates/x/src/lib.rs", src, &cfg());
        assert!(f.iter().any(|x| x.rule == "waiver-syntax"));
    }

    #[test]
    fn config_scoping_disables_rules_per_path() {
        let cfg = Config::parse("[rules.wall-clock]\nallow = [\"crates/telemetry\"]\n").unwrap();
        let src = "fn f() { let t = Instant::now(); }\n";
        let (f, _) = lint_source("crates/telemetry/src/lib.rs", src, &cfg);
        assert!(f.is_empty());
        let (f, _) = lint_source("crates/cli/src/main.rs", src, &cfg);
        assert_eq!(f.len(), 1);
    }
}

//! End-to-end server tests: the full job lifecycle over real sockets,
//! the cached read path, event streaming, and crash-recovery resume
//! with byte-identical trial logs.

use serde_json::{json, Value};
use serve::client;
use serve::{ServeConfig, Server};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn temp_root(name: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("aaltune-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn config(root: &Path) -> ServeConfig {
    ServeConfig {
        root: root.to_path_buf(),
        addr: "127.0.0.1:0".to_string(),
        http_workers: 2,
        job_workers: 2,
        devices: 2,
        quiet: true,
        snapshot_interval: Duration::from_millis(200),
        ..ServeConfig::default()
    }
}

fn submit(addr: &str, body: &Value) -> String {
    let (code, resp) = client::request(addr, "POST", "/jobs", Some(body)).expect("submit");
    assert_eq!(code, 202, "submit should be accepted: {resp}");
    resp["id"].as_str().expect("job id").to_string()
}

fn wait_done(addr: &str, id: &str) -> Value {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (code, body) =
            client::request(addr, "GET", &format!("/jobs/{id}"), None).expect("status");
        assert_eq!(code, 200, "status of a known job: {body}");
        match body["state"].as_str() {
            Some("done") => return body,
            Some("failed") => panic!("job {id} failed: {body}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "timeout waiting for {id}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn spec(tenant: &str, seed: u64, n_trial: u64) -> Value {
    json!({
        "tenant": tenant,
        "model": "squeezenet",
        "task": 0u64,
        "method": "random",
        "n_trial": n_trial,
        "seed": seed,
    })
}

#[test]
fn full_job_lifecycle_read_path_and_event_stream() {
    let root = temp_root("lifecycle");
    let server = Server::start(config(&root)).expect("server starts");
    let addr = server.addr().to_string();

    // The bound address is published for `aaltune client --root`.
    let published = std::fs::read_to_string(root.join("serve.addr")).expect("serve.addr");
    assert_eq!(published, addr);

    // Garbage in → typed errors out, before anything is journaled.
    let (code, body) =
        client::request(&addr, "POST", "/jobs", Some(&json!({"model": "nope"}))).unwrap();
    assert_eq!(code, 400, "unknown model: {body}");
    let (code, _) = client::request(&addr, "GET", "/jobs/j99", None).unwrap();
    assert_eq!(code, 404);
    let (code, _) = client::request(&addr, "GET", "/nope", None).unwrap();
    assert_eq!(code, 404);
    let (code, _) = client::request(&addr, "DELETE", "/jobs", None).unwrap();
    assert_eq!(code, 405);

    // Two tenants, two jobs.
    let j1 = submit(&addr, &spec("alpha", 3, 24));
    let j2 = submit(&addr, &spec("beta", 9, 16));
    assert_eq!((j1.as_str(), j2.as_str()), ("j1", "j2"));

    // A result query before completion is a typed 409, not a hang.
    let (code, body) = client::request(&addr, "GET", "/jobs/j1/result", None).unwrap();
    assert!(code == 409 || code == 200, "premature result is 409 (or the job already won): {body}");

    let s1 = wait_done(&addr, &j1);
    assert_eq!(s1["tenant"].as_str(), Some("alpha"));
    wait_done(&addr, &j2);

    let (code, result) = client::request(&addr, "GET", "/jobs/j1/result", None).unwrap();
    assert_eq!(code, 200, "finished job has a result: {result}");
    assert_eq!(result["job"].as_str(), Some("j1"));
    assert_eq!(result["tasks"][0]["trials"].as_u64(), Some(24));
    assert!(result["tasks"][0]["best_gflops"].as_f64().unwrap() > 0.0);

    // The read path answers from the database the jobs populated.
    let (code, best) =
        client::request(&addr, "GET", "/best?model=squeezenet&task=0&device=gtx1080ti", None)
            .unwrap();
    assert_eq!(code, 200, "tuned task has a db record: {best}");
    assert_eq!(best["source"].as_str(), Some("exact"));
    assert!(best["record"]["best_gflops"].as_f64().unwrap() > 0.0);
    // An untuned task of the same model still gets a nearest-neighbor hint.
    let (code, near) =
        client::request(&addr, "GET", "/best?model=squeezenet&task=5", None).unwrap();
    assert_eq!(code, 200, "nearest fallback: {near}");
    assert_eq!(near["source"].as_str(), Some("nearest"));
    // A bad query is a 400, not a panic — and an unknown device is
    // rejected before it can mint a spec-cache entry.
    let (code, _) = client::request(&addr, "GET", "/best?task=0", None).unwrap();
    assert_eq!(code, 400);
    let (code, body) =
        client::request(&addr, "GET", "/best?model=squeezenet&device=tpu", None).unwrap();
    assert_eq!(code, 400, "unknown device: {body}");

    // The event stream replays the ring and terminates at the terminal
    // event even for a long-finished job.
    let mut events: Vec<Value> = Vec::new();
    client::stream_events(&addr, &format!("/jobs/{j1}/events"), |v| {
        events.push(v.clone());
        true
    })
    .expect("event stream");
    assert_eq!(events.first().and_then(|v| v["event"].as_str()), Some("job.start"));
    assert_eq!(events.last().and_then(|v| v["event"].as_str()), Some("job.done"));
    assert!(
        events.iter().filter(|v| v["event"].as_str() == Some("job.trial")).count() >= 24,
        "every live trial is streamed"
    );
    let seqs: Vec<u64> = events.iter().filter_map(|v| v["seq"].as_u64()).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "events arrive in seq order");

    // Metrics snapshots land in the serve root (what `aaltune top` tails).
    assert!(root.join(telemetry::SNAPSHOT_FILE).exists(), "live snapshot published");

    // Graceful shutdown over HTTP; wait() must return.
    let (code, _) = client::request(&addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(code, 202);
    server.wait();

    // After the drain, the journal holds both terminal lines.
    let journal = std::fs::read_to_string(root.join("journal.jsonl")).expect("journal");
    assert_eq!(journal.matches("\"submitted\"").count(), 2);
    assert_eq!(journal.matches("\"done\"").count(), 2);
    let _ = std::fs::remove_dir_all(&root);
}

/// Runs a twin server to completion, then reconstructs a "crashed" root
/// (journal acknowledges both jobs; one run dir torn mid-task, the other
/// never started) and requires the restarted server to finish both with
/// trial logs byte-identical to the twin's.
#[test]
fn restart_resumes_queue_with_byte_identical_logs() {
    let twin_root = temp_root("twin");
    let twin = Server::start(config(&twin_root)).expect("twin starts");
    let addr = twin.addr().to_string();
    let j1 = submit(&addr, &spec("alpha", 3, 40));
    let j2 = submit(&addr, &spec("beta", 9, 24));
    wait_done(&addr, &j1);
    wait_done(&addr, &j2);
    twin.shutdown();
    twin.wait();

    // Build the crashed root: journal as of the 202 acks (no terminal
    // lines — the "crash" predates both completions)...
    let crash_root = temp_root("crash");
    std::fs::create_dir_all(crash_root.join("jobs")).unwrap();
    let submitted: String = std::fs::read_to_string(twin_root.join("journal.jsonl"))
        .unwrap()
        .lines()
        .filter(|l| l.contains("\"submitted\""))
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(crash_root.join("journal.jsonl"), submitted).unwrap();

    // ...j1's run dir torn mid-task: log truncated on a line boundary
    // after 11 lines (header + 10 trials), checkpoint mid-flight...
    let twin_j1 = twin_root.join("jobs").join(&j1);
    let log_name = std::fs::read_dir(twin_j1.join("logs"))
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .find(|n| n.to_string_lossy().ends_with(".jsonl"))
        .expect("twin j1 task log");
    let crash_j1 = active_learning::records::RunDir::create(crash_root.join("jobs").join(&j1))
        .expect("crashed run dir");
    std::fs::copy(twin_j1.join("manifest.json"), crash_j1.path().join("manifest.json")).unwrap();
    let full_log = std::fs::read_to_string(twin_j1.join("logs").join(&log_name)).unwrap();
    let torn: String = full_log.lines().take(11).map(|l| format!("{l}\n")).collect();
    assert!(full_log.len() > torn.len(), "the twin log must extend past the tear");
    std::fs::write(twin_j1.join("logs").join(&log_name), &full_log).unwrap();
    std::fs::write(crash_j1.path().join("logs").join(&log_name), &torn).unwrap();
    let task_name = {
        let header: Value = serde_json::from_str(full_log.lines().next().unwrap()).unwrap();
        header["task_name"].as_str().unwrap().to_string()
    };
    crash_j1
        .write_checkpoint(&active_learning::Checkpoint {
            schema_version: Some(active_learning::CHECKPOINT_SCHEMA_VERSION),
            completed_tasks: Vec::new(),
            in_flight: Some(task_name),
            trials_logged: Some(10),
            quarantine: None,
        })
        .unwrap();
    // ...and j2 not started at all (journaled, no run dir).

    let server = Server::start(config(&crash_root)).expect("restarted server");
    let addr = server.addr().to_string();
    wait_done(&addr, &j1);
    wait_done(&addr, &j2);
    server.shutdown();
    server.wait();

    for id in [&j1, &j2] {
        let twin_logs = twin_root.join("jobs").join(id).join("logs");
        for entry in std::fs::read_dir(&twin_logs).unwrap() {
            let name = entry.unwrap().file_name();
            let twin_bytes = std::fs::read(twin_logs.join(&name)).unwrap();
            let crash_bytes =
                std::fs::read(crash_root.join("jobs").join(id).join("logs").join(&name))
                    .unwrap_or_else(|_| panic!("{id} log {name:?} missing after resume"));
            assert_eq!(
                twin_bytes, crash_bytes,
                "{id} log {name:?} must be byte-identical after crash + resume"
            );
        }
        let twin_result = std::fs::read(twin_root.join("jobs").join(id).join("result.json"));
        let crash_result = std::fs::read(crash_root.join("jobs").join(id).join("result.json"));
        assert_eq!(twin_result.unwrap(), crash_result.unwrap(), "{id} result matches");
    }
    // A fresh server on the now-complete journal restores both jobs as
    // terminal with empty event rings; the stream must synthesize the
    // terminal line and finish instead of polling until shutdown.
    let server = Server::start(config(&crash_root)).expect("post-resume restart");
    let addr = server.addr().to_string();
    let mut events: Vec<Value> = Vec::new();
    client::stream_events(&addr, &format!("/jobs/{j1}/events"), |v| {
        events.push(v.clone());
        true
    })
    .expect("replayed job streams");
    assert_eq!(events.last().and_then(|v| v["event"].as_str()), Some("job.done"));
    assert_eq!(events.last().and_then(|v| v["replayed"].as_bool()), Some(true));
    server.shutdown();
    server.wait();

    let _ = std::fs::remove_dir_all(&twin_root);
    let _ = std::fs::remove_dir_all(&crash_root);
}

/// A client that sends request headers and then stalls must not pin an
/// HTTP worker past shutdown: even with every worker mid-read, the
/// drain completes within the idle-poll tick.
#[test]
fn stalled_clients_do_not_block_shutdown() {
    use std::io::Write;

    let root = temp_root("stall");
    let server = Server::start(config(&root)).expect("server starts");
    let addr = server.addr();

    // More stalled connections than http_workers (2), each promising a
    // body that never arrives.
    let mut stalled = Vec::new();
    for _ in 0..3 {
        let mut s = std::net::TcpStream::connect(addr).expect("connect");
        s.write_all(b"POST /jobs HTTP/1.1\r\nContent-Length: 64\r\n\r\n").expect("partial write");
        stalled.push(s);
    }
    // Let the workers pick the connections up and enter the body read.
    std::thread::sleep(Duration::from_millis(200));

    server.shutdown();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        server.wait();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(10))
        .expect("shutdown must drain despite stalled clients");
    drop(stalled);
    let _ = std::fs::remove_dir_all(&root);
}

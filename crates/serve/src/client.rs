//! A minimal blocking HTTP/1.1 client for `aaltune client`, the
//! end-to-end tests, and the loadgen bench.
//!
//! Mirrors the server's hand-rolled subset: fixed `Content-Length`
//! responses (with keep-alive reuse via [`ClientConn`]) and chunked
//! event streams (line-by-line callback).

use serde_json::Value;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One response: status code + parsed JSON body.
pub type Response = (u16, Value);

/// A reusable keep-alive connection (the loadgen hot path: no TCP
/// handshake per lookup).
#[derive(Debug)]
pub struct ClientConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl ClientConn {
    /// Connects with Nagle disabled and a generous read timeout.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic when the connection cannot be established.
    pub fn connect(addr: &str) -> Result<ClientConn, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream.set_nodelay(true).map_err(|e| format!("nodelay: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .map_err(|e| format!("read timeout: {e}"))?;
        Ok(ClientConn { stream, buf: Vec::new() })
    }

    /// Sends one request and reads its fixed-length response.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic on I/O failure or a malformed response.
    pub fn roundtrip(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Value>,
    ) -> Result<Response, String> {
        let payload = body.map(Value::to_string).unwrap_or_default();
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: aaltune\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            payload.len()
        );
        self.stream
            .write_all(head.as_bytes())
            .and_then(|()| self.stream.write_all(payload.as_bytes()))
            .and_then(|()| self.stream.flush())
            .map_err(|e| format!("send: {e}"))?;
        let (status, body_bytes) = self.read_response()?;
        let body = if body_bytes.is_empty() {
            Value::Null
        } else {
            serde_json::from_str(
                std::str::from_utf8(&body_bytes).map_err(|_| "non-UTF-8 response".to_string())?,
            )
            .map_err(|e| format!("bad response JSON: {e}"))?
        };
        Ok((status, body))
    }

    fn read_response(&mut self) -> Result<(u16, Vec<u8>), String> {
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            self.fill()?;
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let body_start = head_end + 4;
        let mut lines = head.split("\r\n");
        let status: u16 = lines
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .ok_or("malformed status line")?;
        let mut content_length = 0usize;
        let mut chunked = false;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length =
                        value.trim().parse().map_err(|_| "bad content-length".to_string())?;
                } else if name.eq_ignore_ascii_case("transfer-encoding")
                    && value.trim().eq_ignore_ascii_case("chunked")
                {
                    chunked = true;
                }
            }
        }
        if chunked {
            return Err("unexpected chunked response (use stream_events)".to_string());
        }
        while self.buf.len() < body_start + content_length {
            self.fill()?;
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);
        Ok((status, body))
    }

    fn fill(&mut self) -> Result<(), String> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Err("connection closed mid-response".to_string()),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(())
            }
            Err(e) => Err(format!("recv: {e}")),
        }
    }
}

/// One-shot request on a fresh connection.
///
/// # Errors
///
/// Returns a diagnostic on connection or protocol failure.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&Value>,
) -> Result<Response, String> {
    ClientConn::connect(addr)?.roundtrip(method, path, body)
}

/// Streams `GET <path>` (a chunked JSONL endpoint), invoking `on_line`
/// for each JSON line until the stream terminates or `on_line` returns
/// `false`.
///
/// # Errors
///
/// Returns a diagnostic on connection or protocol failure.
pub fn stream_events(
    addr: &str,
    path: &str,
    mut on_line: impl FnMut(&Value) -> bool,
) -> Result<(), String> {
    let mut conn = ClientConn::connect(addr)?;
    let head = format!("GET {path} HTTP/1.1\r\nHost: aaltune\r\n\r\n");
    conn.stream
        .write_all(head.as_bytes())
        .and_then(|()| conn.stream.flush())
        .map_err(|e| format!("send: {e}"))?;
    // Read the response head; require chunked.
    let head_end = loop {
        if let Some(pos) = conn.buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        conn.fill()?;
    };
    let head = String::from_utf8_lossy(&conn.buf[..head_end]).into_owned();
    conn.buf.drain(..head_end + 4);
    if !head.to_ascii_lowercase().contains("transfer-encoding: chunked") {
        return Err(format!("not a chunked stream: {}", head.lines().next().unwrap_or("")));
    }
    let mut carry = String::new();
    loop {
        // Chunk size line.
        let line_end = loop {
            if let Some(pos) = conn.buf.windows(2).position(|w| w == b"\r\n") {
                break pos;
            }
            conn.fill()?;
        };
        let size = usize::from_str_radix(String::from_utf8_lossy(&conn.buf[..line_end]).trim(), 16)
            .map_err(|_| "bad chunk size".to_string())?;
        conn.buf.drain(..line_end + 2);
        if size == 0 {
            return Ok(()); // terminal chunk (trailing CRLF may or may not arrive)
        }
        while conn.buf.len() < size + 2 {
            conn.fill()?;
        }
        carry.push_str(&String::from_utf8_lossy(&conn.buf[..size]));
        conn.buf.drain(..size + 2);
        while let Some(nl) = carry.find('\n') {
            let line: String = carry.drain(..=nl).collect();
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v: Value =
                serde_json::from_str(line).map_err(|e| format!("bad event line: {e}"))?;
            if !on_line(&v) {
                return Ok(());
            }
        }
    }
}

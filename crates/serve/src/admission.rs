//! Multi-tenant admission: bounded per-tenant backlogs, fair-share
//! scheduling, and the drain protocol.
//!
//! Scheduling picks, among queued jobs, the one whose tenant currently
//! runs the fewest jobs (fair share), breaking ties by priority (higher
//! first) then submission order (FIFO). Each tenant's *queued* backlog
//! is bounded; beyond it, submissions get a typed rejection the HTTP
//! layer turns into a 429 — backpressure belongs at admission, not in
//! an unbounded queue.
//!
//! Draining (graceful shutdown): no new submissions, workers finish
//! their in-flight job and then exit; queued jobs stay journaled and
//! are re-enqueued by the next start. A kill -9 skips the protocol
//! entirely and relies on the same journal + checkpoint replay.

use crate::job::{JobSpec, JobState};
use serde_json::{json, Value};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex, PoisonError};
use telemetry::sync::lock_or_recover;

/// Per-job telemetry events kept for replay to late `/events` readers.
const EVENT_RING: usize = 512;

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reject {
    /// The tenant's queued backlog is full. Fields: queued, backlog.
    BacklogFull(usize, usize),
    /// The server is draining for shutdown.
    Draining,
}

impl Reject {
    /// HTTP status + JSON body for this rejection.
    #[must_use]
    pub fn to_http(&self, tenant: &str) -> (u16, Value) {
        match self {
            Reject::BacklogFull(queued, backlog) => (
                429,
                json!({
                    "error": "backlog_full",
                    "tenant": tenant,
                    "queued": *queued as u64,
                    "backlog": *backlog as u64,
                }),
            ),
            Reject::Draining => (503, json!({ "error": "draining" })),
        }
    }
}

/// Why [`Admission::submit`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission refused the job (backpressure or drain).
    Rejected(Reject),
    /// The journal append failed; the job was never acknowledged.
    Persist(String),
}

/// Everything the server remembers about one job.
#[derive(Debug)]
struct JobRecord {
    spec: JobSpec,
    state: JobState,
    error: Option<String>,
    /// Recent progress events (with terminal event), for `/events`
    /// replay; seq-stamped so a streamer can dedup against live ones.
    events: VecDeque<Value>,
    next_event_seq: u64,
}

#[derive(Debug, Default)]
struct AdmState {
    jobs: BTreeMap<String, JobRecord>,
    /// Queued job ids in submission order.
    queue: Vec<String>,
    /// Running jobs per tenant.
    running: BTreeMap<String, usize>,
    draining: bool,
    next_id: u64,
}

/// The admission controller; shared between HTTP and job workers.
#[derive(Debug, Default)]
pub struct Admission {
    state: Mutex<AdmState>,
    work: Condvar,
    backlog: usize,
}

impl Admission {
    /// A controller admitting at most `backlog` queued jobs per tenant.
    #[must_use]
    pub fn new(backlog: usize) -> Admission {
        Admission {
            state: Mutex::new(AdmState::default()),
            work: Condvar::new(),
            backlog: backlog.max(1),
        }
    }

    /// Admits `spec`, assigning the next sequential id. `persist` runs
    /// under the admission lock *before* the job becomes visible, so the
    /// journal's submission order always matches id order — the property
    /// the kill -9 twin test pins.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Rejected`] when draining or over the tenant's
    /// backlog; [`SubmitError::Persist`] when journaling fails (the job
    /// is then dropped).
    pub fn submit(
        &self,
        spec: JobSpec,
        persist: impl FnOnce(&str, &JobSpec) -> Result<(), String>,
    ) -> Result<String, SubmitError> {
        let mut st = lock_or_recover(&self.state);
        if st.draining {
            return Err(SubmitError::Rejected(Reject::Draining));
        }
        let queued = st.queue.iter().filter(|id| st.jobs[*id].spec.tenant == spec.tenant).count();
        if queued >= self.backlog {
            return Err(SubmitError::Rejected(Reject::BacklogFull(queued, self.backlog)));
        }
        st.next_id += 1;
        let id = format!("j{}", st.next_id);
        persist(&id, &spec).map_err(SubmitError::Persist)?;
        st.jobs.insert(
            id.clone(),
            JobRecord {
                spec,
                state: JobState::Queued,
                error: None,
                events: VecDeque::new(),
                next_event_seq: 0,
            },
        );
        st.queue.push(id.clone());
        drop(st);
        self.work.notify_one();
        Ok(id)
    }

    /// Re-installs a journaled job during startup replay. Terminal jobs
    /// are recorded for status queries; incomplete ones re-enter the
    /// queue in replay (= original submission) order.
    pub fn restore(&self, id: &str, spec: JobSpec, state: JobState, error: Option<String>) {
        let mut st = lock_or_recover(&self.state);
        let seq: u64 = id.strip_prefix('j').and_then(|s| s.parse().ok()).unwrap_or(0);
        st.next_id = st.next_id.max(seq);
        st.jobs.insert(
            id.to_string(),
            JobRecord { spec, state, error, events: VecDeque::new(), next_event_seq: 0 },
        );
        if state == JobState::Queued {
            st.queue.push(id.to_string());
        }
        drop(st);
        self.work.notify_one();
    }

    /// Blocks until a job is schedulable, returning `(id, spec)` with the
    /// job marked running — or `None` once draining (workers then exit).
    pub fn next_job(&self) -> Option<(String, JobSpec)> {
        let mut st = lock_or_recover(&self.state);
        loop {
            if st.draining {
                return None;
            }
            if let Some(pos) = pick(&st) {
                let id = st.queue.remove(pos);
                // aal-lint: allow(unwrap, reason = "queue ids always have a job record; enforced by submit/restore")
                let job = st.jobs.get_mut(&id).expect("queued id has a record");
                job.state = JobState::Running;
                let spec = job.spec.clone();
                *st.running.entry(spec.tenant.clone()).or_insert(0) += 1;
                return Some((id, spec));
            }
            st = self.work.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Marks a running job terminal and releases its tenant slot.
    pub fn complete(&self, id: &str, outcome: Result<(), String>) {
        let mut st = lock_or_recover(&self.state);
        if let Some(job) = st.jobs.get_mut(id) {
            let tenant = job.spec.tenant.clone();
            match outcome {
                Ok(()) => job.state = JobState::Done,
                Err(e) => {
                    job.state = JobState::Failed;
                    job.error = Some(e);
                }
            }
            if let Some(n) = st.running.get_mut(&tenant) {
                *n = n.saturating_sub(1);
            }
        }
        drop(st);
        self.work.notify_all();
    }

    /// Appends a seq-stamped progress event to the job's replay ring,
    /// returning the stamped payload (for the live bus).
    pub fn push_event(&self, id: &str, mut fields: Value) -> Option<Value> {
        let mut st = lock_or_recover(&self.state);
        let job = st.jobs.get_mut(id)?;
        let seq = job.next_event_seq;
        job.next_event_seq += 1;
        if let Value::Object(obj) = &mut fields {
            obj.insert("job".into(), Value::String(id.to_string()));
            obj.insert("seq".into(), Value::from(seq));
        }
        if job.events.len() >= EVENT_RING {
            job.events.pop_front();
        }
        job.events.push_back(fields.clone());
        Some(fields)
    }

    /// Snapshot for `/jobs/:id`: `(status body, state)`.
    #[must_use]
    pub fn status(&self, id: &str) -> Option<(Value, JobState)> {
        let st = lock_or_recover(&self.state);
        let job = st.jobs.get(id)?;
        let mut body = json!({
            "id": id,
            "state": job.state.as_str(),
            "tenant": job.spec.tenant.clone(),
            "model": job.spec.model.clone(),
        });
        if let (Value::Object(obj), Some(e)) = (&mut body, &job.error) {
            obj.insert("error".into(), Value::String(e.clone()));
        }
        Some((body, job.state))
    }

    /// Snapshot for `/jobs/:id/events` replay: the ring plus the job's
    /// current state (terminal ⇒ the ring already holds the last event).
    #[must_use]
    pub fn events_snapshot(&self, id: &str) -> Option<(Vec<Value>, JobState)> {
        let st = lock_or_recover(&self.state);
        let job = st.jobs.get(id)?;
        Some((job.events.iter().cloned().collect(), job.state))
    }

    /// Queued jobs right now (all tenants).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        lock_or_recover(&self.state).queue.len()
    }

    /// Starts the drain: refuse new jobs, stop handing out queued ones.
    pub fn drain(&self) {
        lock_or_recover(&self.state).draining = true;
        self.work.notify_all();
    }

    /// True once draining has started.
    #[must_use]
    pub fn draining(&self) -> bool {
        lock_or_recover(&self.state).draining
    }
}

/// The scheduling decision: index into the queue of the job to run next.
fn pick(st: &AdmState) -> Option<usize> {
    st.queue
        .iter()
        .enumerate()
        .min_by_key(|(i, id)| {
            let job = &st.jobs[*id];
            let running = st.running.get(&job.spec.tenant).copied().unwrap_or(0);
            // Fewest running, then highest priority, then FIFO.
            (running, std::cmp::Reverse(job.spec.priority), *i)
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn spec(tenant: &str, priority: u8) -> JobSpec {
        JobSpec {
            tenant: tenant.into(),
            model: "squeezenet".into(),
            task: Some(0),
            method: "random".into(),
            n_trial: 8,
            seed: 0,
            device: "gtx1080ti".into(),
            priority,
        }
    }

    fn ok_persist(_: &str, _: &JobSpec) -> Result<(), String> {
        Ok(())
    }

    #[test]
    fn ids_are_sequential_and_backlog_binds_per_tenant() {
        let adm = Admission::new(2);
        assert_eq!(adm.submit(spec("a", 0), ok_persist).unwrap(), "j1");
        assert_eq!(adm.submit(spec("a", 0), ok_persist).unwrap(), "j2");
        assert!(matches!(
            adm.submit(spec("a", 0), ok_persist),
            Err(SubmitError::Rejected(Reject::BacklogFull(2, 2)))
        ));
        // Another tenant still has room.
        assert_eq!(adm.submit(spec("b", 0), ok_persist).unwrap(), "j3");
        assert_eq!(adm.queue_depth(), 3);
    }

    #[test]
    fn failed_persist_drops_the_job_but_not_the_id() {
        let adm = Admission::new(4);
        assert!(adm.submit(spec("a", 0), |_, _| Err("disk full".into())).is_err());
        // The id was consumed; the next submission is j2 and the journal
        // (which never got j1) replays consistently because j1 has no
        // acknowledged existence.
        assert_eq!(adm.submit(spec("a", 0), ok_persist).unwrap(), "j2");
        assert_eq!(adm.queue_depth(), 1);
    }

    #[test]
    fn scheduling_favors_idle_tenants_then_priority_then_fifo() {
        let adm = Admission::new(8);
        let a1 = adm.submit(spec("a", 0), ok_persist).unwrap();
        let a2 = adm.submit(spec("a", 5), ok_persist).unwrap();
        let b1 = adm.submit(spec("b", 0), ok_persist).unwrap();
        // First pick: both tenants idle → priority wins within the tie.
        let (first, _) = adm.next_job().unwrap();
        assert_eq!(first, a2, "priority beats FIFO when tenants tie");
        // Tenant a now runs a job → b gets the next slot (fair share).
        let (second, _) = adm.next_job().unwrap();
        assert_eq!(second, b1);
        let (third, _) = adm.next_job().unwrap();
        assert_eq!(third, a1);
        adm.complete(&first, Ok(()));
        adm.complete(&second, Ok(()));
        adm.complete(&third, Err("boom".into()));
        assert_eq!(adm.status(&third).unwrap().1, JobState::Failed);
        assert_eq!(adm.status(&first).unwrap().1, JobState::Done);
    }

    #[test]
    fn drain_refuses_new_jobs_and_wakes_waiting_workers() {
        let adm = std::sync::Arc::new(Admission::new(4));
        let waiter = {
            let adm = std::sync::Arc::clone(&adm);
            std::thread::spawn(move || adm.next_job())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        adm.drain();
        assert_eq!(waiter.join().unwrap(), None, "blocked worker wakes on drain");
        assert!(matches!(
            adm.submit(spec("a", 0), ok_persist),
            Err(SubmitError::Rejected(Reject::Draining))
        ));
    }

    #[test]
    fn event_ring_is_bounded_and_seq_stamped() {
        let adm = Admission::new(4);
        let id = adm.submit(spec("a", 0), ok_persist).unwrap();
        for i in 0..(EVENT_RING + 5) {
            let stamped = adm.push_event(&id, json!({"trial": i as u64})).unwrap();
            assert_eq!(stamped["seq"].as_u64().unwrap(), i as u64);
            assert_eq!(stamped["job"].as_str().unwrap(), id);
        }
        let (ring, _) = adm.events_snapshot(&id).unwrap();
        assert_eq!(ring.len(), EVENT_RING);
        assert_eq!(ring[0]["seq"].as_u64().unwrap(), 5, "oldest entries evicted");
    }
}

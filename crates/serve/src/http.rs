//! A minimal HTTP/1.1 layer over `std::net::TcpStream`.
//!
//! The build is offline (no tokio, no hyper), so this module hand-rolls
//! exactly the subset the job API needs — request-line + headers +
//! `Content-Length` bodies in, fixed or chunked responses out — the way
//! `aal-lint` hand-rolled its Rust lexer. Keep-alive is supported via a
//! per-connection carry buffer; pipelined bytes beyond the current
//! request simply wait there for the next parse.

use serde_json::Value;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request body; bigger submissions get a 413.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Largest accepted header block, bounding a slow-loris peer's memory.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// How long a keep-alive read blocks before yielding [`ReadOutcome::Idle`]
/// so the worker can check the shutdown flag.
pub const IDLE_POLL: Duration = Duration::from_millis(200);

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path without the query string.
    pub path: String,
    /// Decoded query parameters.
    pub query: BTreeMap<String, String>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// What a blocking read on a keep-alive connection produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// Peer closed the connection cleanly.
    Eof,
    /// Read timed out between requests; poll shutdown and retry.
    Idle,
    /// Malformed request head; the connection should be dropped after
    /// the carried 400 response.
    Bad(&'static str),
    /// Body larger than [`MAX_BODY_BYTES`].
    TooLarge,
}

/// A server-side connection: the stream plus carried-over bytes.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Conn {
    /// Wraps an accepted stream, disabling Nagle (the read path answers
    /// sub-millisecond requests; a 40 ms coalescing delay would dominate
    /// p99) and arming the idle-poll read timeout.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn new(stream: TcpStream) -> std::io::Result<Conn> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(IDLE_POLL))?;
        Ok(Conn { stream, buf: Vec::new() })
    }

    /// Reads the next request off the connection.
    ///
    /// # Errors
    ///
    /// Propagates hard I/O errors (connection reset etc.); timeouts are
    /// [`ReadOutcome::Idle`], not errors.
    pub fn read_request(&mut self) -> std::io::Result<ReadOutcome> {
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                break pos;
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Ok(ReadOutcome::Bad("header block too large"));
            }
            match self.fill()? {
                Filled::Data => {}
                Filled::Eof => {
                    return Ok(if self.buf.is_empty() {
                        ReadOutcome::Eof
                    } else {
                        ReadOutcome::Bad("connection closed mid-request")
                    });
                }
                Filled::Timeout => {
                    // Mid-head timeouts only idle out between requests;
                    // a half-sent head keeps waiting (the peer may be
                    // slow, and shutdown kills the socket anyway).
                    if self.buf.is_empty() {
                        return Ok(ReadOutcome::Idle);
                    }
                }
            }
        };
        let head = match std::str::from_utf8(&self.buf[..head_end]) {
            Ok(h) => h.to_string(),
            Err(_) => return Ok(ReadOutcome::Bad("non-UTF-8 request head")),
        };
        let body_start = head_end + 4;
        let mut lines = head.split("\r\n");
        let Some(request_line) = lines.next() else {
            return Ok(ReadOutcome::Bad("empty request"));
        };
        let mut parts = request_line.split_whitespace();
        let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
            return Ok(ReadOutcome::Bad("malformed request line"));
        };
        let method = method.to_ascii_uppercase();
        let mut content_length = 0usize;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = match value.trim().parse() {
                        Ok(n) => n,
                        Err(_) => return Ok(ReadOutcome::Bad("bad content-length")),
                    };
                }
            }
        }
        if content_length > MAX_BODY_BYTES {
            self.buf.clear();
            return Ok(ReadOutcome::TooLarge);
        }
        while self.buf.len() < body_start + content_length {
            match self.fill()? {
                Filled::Data => {}
                Filled::Eof => return Ok(ReadOutcome::Bad("connection closed mid-body")),
                Filled::Timeout => {}
            }
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);
        let (path, query) = parse_target(target);
        Ok(ReadOutcome::Request(Request { method, path, query, body }))
    }

    fn fill(&mut self) -> std::io::Result<Filled> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Ok(Filled::Eof),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(Filled::Data)
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(Filled::Timeout)
            }
            Err(e) => Err(e),
        }
    }

    /// Writes a complete JSON response.
    ///
    /// # Errors
    ///
    /// Propagates write failures (peer gone).
    pub fn respond_json(&mut self, status: u16, body: &Value) -> std::io::Result<()> {
        let bytes = body.to_string().into_bytes();
        self.respond_bytes(status, "application/json", &bytes)
    }

    /// Writes a complete response with the given content type.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn respond_bytes(
        &mut self,
        status: u16,
        content_type: &str,
        body: &[u8],
    ) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            status_text(status),
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()
    }

    /// Starts a chunked (streaming) response; follow with
    /// [`Conn::write_chunk`] calls and one [`Conn::finish_chunked`].
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn start_chunked(&mut self, status: u16, content_type: &str) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status_text(status)
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.flush()
    }

    /// Writes one chunk of a chunked response.
    ///
    /// # Errors
    ///
    /// Propagates write failures — the signal a streaming handler uses
    /// to notice the client went away.
    pub fn write_chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(()); // an empty chunk would terminate the stream
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates a chunked response.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn finish_chunked(&mut self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

enum Filled {
    Data,
    Eof,
    Timeout,
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Splits a request target into decoded path + query map.
fn parse_target(target: &str) -> (String, BTreeMap<String, String>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut params = BTreeMap::new();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        params.insert(percent_decode(k), percent_decode(v));
    }
    (percent_decode(path), params)
}

/// Decodes `%XX` escapes and `+`-as-space.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// The reason phrase for the handful of statuses the server uses.
fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_parsing_decodes_path_and_query() {
        let (path, q) = parse_target("/best?model=squeezenet_v1.1&task=3&x=a%20b+c");
        assert_eq!(path, "/best");
        assert_eq!(q["model"], "squeezenet_v1.1");
        assert_eq!(q["task"], "3");
        assert_eq!(q["x"], "a b c");
        let (path, q) = parse_target("/jobs/j1");
        assert_eq!(path, "/jobs/j1");
        assert!(q.is_empty());
    }

    #[test]
    fn percent_decode_handles_malformed_escapes() {
        assert_eq!(percent_decode("a%2Fb"), "a/b");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }
}

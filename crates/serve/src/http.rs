//! A minimal HTTP/1.1 layer over `std::net::TcpStream`.
//!
//! The build is offline (no tokio, no hyper), so this module hand-rolls
//! exactly the subset the job API needs — request-line + headers +
//! `Content-Length` bodies in, fixed or chunked responses out — the way
//! `aal-lint` hand-rolled its Rust lexer. Keep-alive is supported via a
//! per-connection carry buffer; pipelined bytes beyond the current
//! request simply wait there for the next parse.

use serde_json::Value;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Largest accepted request body; bigger submissions get a 413.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Largest accepted header block, bounding a slow-loris peer's memory.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// How long a keep-alive read blocks before yielding [`ReadOutcome::Idle`]
/// so the worker can check the shutdown flag.
pub const IDLE_POLL: Duration = Duration::from_millis(200);

/// Total time a peer gets to deliver one request once its first byte
/// has arrived. A client that stalls mid-head or mid-body past this is
/// dropped, so it cannot pin an HTTP worker (slow-loris defense).
pub const READ_DEADLINE: Duration = Duration::from_secs(10);

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path without the query string.
    pub path: String,
    /// Decoded query parameters.
    pub query: BTreeMap<String, String>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// What a blocking read on a keep-alive connection produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// Peer closed the connection cleanly.
    Eof,
    /// Read timed out between requests; poll shutdown and retry.
    Idle,
    /// Malformed request head; the connection should be dropped after
    /// the carried 400 response.
    Bad(&'static str),
    /// Body larger than [`MAX_BODY_BYTES`].
    TooLarge,
    /// The server is shutting down; drop the connection without a
    /// response (the peer's request was incomplete anyway).
    Shutdown,
}

/// A server-side connection: the stream plus carried-over bytes.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    shutdown: Option<Arc<AtomicBool>>,
    deadline: Duration,
}

impl Conn {
    /// Wraps an accepted stream, disabling Nagle (the read path answers
    /// sub-millisecond requests; a 40 ms coalescing delay would dominate
    /// p99) and arming the idle-poll read timeout.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn new(stream: TcpStream) -> std::io::Result<Conn> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(IDLE_POLL))?;
        Ok(Conn { stream, buf: Vec::new(), shutdown: None, deadline: READ_DEADLINE })
    }

    /// Attaches the server shutdown flag: every read-timeout tick checks
    /// it, so a connection mid-request cannot outlive a drain by more
    /// than one [`IDLE_POLL`].
    #[must_use]
    pub fn with_shutdown(mut self, flag: Arc<AtomicBool>) -> Conn {
        self.shutdown = Some(flag);
        self
    }

    /// Overrides the per-request read deadline (tests shrink it; the
    /// default is [`READ_DEADLINE`]).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Conn {
        self.deadline = deadline;
        self
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.as_ref().is_some_and(|f| f.load(Ordering::Acquire))
    }

    /// Reads the next request off the connection.
    ///
    /// # Errors
    ///
    /// Propagates hard I/O errors (connection reset etc.); timeouts are
    /// [`ReadOutcome::Idle`], not errors.
    pub fn read_request(&mut self) -> std::io::Result<ReadOutcome> {
        // The deadline clock starts when this call does; once the first
        // byte is buffered the loops below never return Idle, so a
        // partial request must complete within `deadline` or be dropped.
        let started = Instant::now();
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                break pos;
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Ok(ReadOutcome::Bad("header block too large"));
            }
            match self.fill()? {
                Filled::Data => {}
                Filled::Eof => {
                    return Ok(if self.buf.is_empty() {
                        ReadOutcome::Eof
                    } else {
                        ReadOutcome::Bad("connection closed mid-request")
                    });
                }
                Filled::Timeout => {
                    if self.shutting_down() {
                        return Ok(ReadOutcome::Shutdown);
                    }
                    if self.buf.is_empty() {
                        return Ok(ReadOutcome::Idle);
                    }
                    if started.elapsed() > self.deadline {
                        return Ok(ReadOutcome::Bad("request read timed out"));
                    }
                }
            }
        };
        let head = match std::str::from_utf8(&self.buf[..head_end]) {
            Ok(h) => h.to_string(),
            Err(_) => return Ok(ReadOutcome::Bad("non-UTF-8 request head")),
        };
        let body_start = head_end + 4;
        let mut lines = head.split("\r\n");
        let Some(request_line) = lines.next() else {
            return Ok(ReadOutcome::Bad("empty request"));
        };
        let mut parts = request_line.split_whitespace();
        let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
            return Ok(ReadOutcome::Bad("malformed request line"));
        };
        let method = method.to_ascii_uppercase();
        let mut content_length = 0usize;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = match value.trim().parse() {
                        Ok(n) => n,
                        Err(_) => return Ok(ReadOutcome::Bad("bad content-length")),
                    };
                }
            }
        }
        if content_length > MAX_BODY_BYTES {
            self.buf.clear();
            return Ok(ReadOutcome::TooLarge);
        }
        while self.buf.len() < body_start + content_length {
            match self.fill()? {
                Filled::Data => {}
                Filled::Eof => return Ok(ReadOutcome::Bad("connection closed mid-body")),
                Filled::Timeout => {
                    if self.shutting_down() {
                        return Ok(ReadOutcome::Shutdown);
                    }
                    if started.elapsed() > self.deadline {
                        return Ok(ReadOutcome::Bad("request read timed out"));
                    }
                }
            }
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);
        let (path, query) = parse_target(target);
        Ok(ReadOutcome::Request(Request { method, path, query, body }))
    }

    fn fill(&mut self) -> std::io::Result<Filled> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Ok(Filled::Eof),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(Filled::Data)
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(Filled::Timeout)
            }
            Err(e) => Err(e),
        }
    }

    /// Writes a complete JSON response.
    ///
    /// # Errors
    ///
    /// Propagates write failures (peer gone).
    pub fn respond_json(&mut self, status: u16, body: &Value) -> std::io::Result<()> {
        let bytes = body.to_string().into_bytes();
        self.respond_bytes(status, "application/json", &bytes)
    }

    /// Writes a complete response with the given content type.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn respond_bytes(
        &mut self,
        status: u16,
        content_type: &str,
        body: &[u8],
    ) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            status_text(status),
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()
    }

    /// Starts a chunked (streaming) response; follow with
    /// [`Conn::write_chunk`] calls and one [`Conn::finish_chunked`].
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn start_chunked(&mut self, status: u16, content_type: &str) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status_text(status)
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.flush()
    }

    /// Writes one chunk of a chunked response.
    ///
    /// # Errors
    ///
    /// Propagates write failures — the signal a streaming handler uses
    /// to notice the client went away.
    pub fn write_chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(()); // an empty chunk would terminate the stream
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates a chunked response.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn finish_chunked(&mut self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

enum Filled {
    Data,
    Eof,
    Timeout,
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Splits a request target into decoded path + query map.
fn parse_target(target: &str) -> (String, BTreeMap<String, String>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut params = BTreeMap::new();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        params.insert(percent_decode(k), percent_decode(v));
    }
    (percent_decode(path), params)
}

/// Decodes `%XX` escapes and `+`-as-space.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// The reason phrase for the handful of statuses the server uses.
fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_parsing_decodes_path_and_query() {
        let (path, q) = parse_target("/best?model=squeezenet_v1.1&task=3&x=a%20b+c");
        assert_eq!(path, "/best");
        assert_eq!(q["model"], "squeezenet_v1.1");
        assert_eq!(q["task"], "3");
        assert_eq!(q["x"], "a b c");
        let (path, q) = parse_target("/jobs/j1");
        assert_eq!(path, "/jobs/j1");
        assert!(q.is_empty());
    }

    #[test]
    fn percent_decode_handles_malformed_escapes() {
        assert_eq!(percent_decode("a%2Fb"), "a/b");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    /// Accepted `Conn` + a client stream it is reading from.
    fn socket_pair() -> (Conn, TcpStream) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        (Conn::new(accepted).unwrap(), client)
    }

    #[test]
    fn stalled_body_hits_the_read_deadline() {
        let (conn, mut client) = socket_pair();
        let mut conn = conn.with_deadline(Duration::from_millis(50));
        // Headers promise a body that never arrives.
        client.write_all(b"POST /jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\n").unwrap();
        let start = Instant::now();
        match conn.read_request().unwrap() {
            ReadOutcome::Bad(msg) => assert!(msg.contains("timed out"), "{msg}"),
            other => panic!("expected deadline Bad, got {other:?}"),
        }
        assert!(start.elapsed() < Duration::from_secs(5), "deadline bounds the stall");
    }

    #[test]
    fn stalled_head_yields_to_shutdown() {
        let (conn, mut client) = socket_pair();
        let flag = Arc::new(AtomicBool::new(false));
        let mut conn = conn.with_shutdown(Arc::clone(&flag));
        // Half a request head, then silence; shutdown must still win.
        client.write_all(b"GET /best?model=sq").unwrap();
        flag.store(true, Ordering::Release);
        match conn.read_request().unwrap() {
            ReadOutcome::Shutdown => {}
            other => panic!("expected Shutdown, got {other:?}"),
        }
    }
}

//! Job specifications, states, and the crash-safe submission journal.
//!
//! The journal is the queue's durability: one JSONL line per lifecycle
//! transition (`submitted`, `done`, `failed`), appended and flushed
//! *before* the client's 202 acknowledgement. On restart the server
//! replays the journal in order; every acknowledged job whose terminal
//! line is missing is re-enqueued in its original submission order, so
//! job ids — assigned sequentially from the journal — are identical to
//! an uninterrupted twin's, and the per-job run directories resume
//! through the same replay machinery `tune --resume` uses.

use active_learning::Method;
use dnn_graph::{models, Graph};
use gpu_sim::GpuDevice;
use serde::{Deserialize, Serialize};
use serde_json::Value;

/// Ceiling on requested trials per task, bounding a hostile submission.
pub const MAX_TRIALS: usize = 100_000;

/// Longest accepted tenant name; tenants label metric names, so their
/// length (like their cardinality) must be bounded at admission.
pub const MAX_TENANT_LEN: usize = 64;

/// A validated tuning-job request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Submitting tenant; device quotas and fair share key off this.
    pub tenant: String,
    /// Model name (see [`model_by_name`]).
    pub model: String,
    /// Task index within the model (`None` = every task).
    pub task: Option<usize>,
    /// Method label (see [`method_by_name`]).
    pub method: String,
    /// Trial budget per task.
    pub n_trial: usize,
    /// Master seed.
    pub seed: u64,
    /// Simulated device preset (see [`device_by_name`]).
    pub device: String,
    /// Scheduling priority within the tenant (higher first).
    pub priority: u8,
}

impl JobSpec {
    /// Parses a submission body. The vendored serde has no field
    /// defaulting, so optional fields are filled in by hand here — which
    /// also yields better error messages than a derive would.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field; every name is
    /// validated eagerly so a bad job is rejected at submit, not at run.
    pub fn from_value(v: &Value) -> Result<JobSpec, String> {
        let obj = v.as_object().ok_or("job spec must be a JSON object")?;
        let str_field = |name: &str, default: &str| -> Result<String, String> {
            match obj.get(name) {
                None => Ok(default.to_string()),
                Some(Value::String(s)) if !s.is_empty() => Ok(s.clone()),
                Some(_) => Err(format!("field `{name}` must be a non-empty string")),
            }
        };
        let uint_field = |name: &str, default: u64| -> Result<u64, String> {
            match obj.get(name) {
                None => Ok(default),
                Some(v) => v.as_u64().ok_or_else(|| format!("field `{name}` must be an integer")),
            }
        };
        let spec = JobSpec {
            tenant: str_field("tenant", "default")?,
            model: str_field("model", "")?,
            task: match obj.get("task") {
                None | Some(Value::Null) => None,
                Some(v) => Some(
                    usize::try_from(v.as_u64().ok_or("field `task` must be an integer")?)
                        .map_err(|_| "field `task` out of range")?,
                ),
            },
            method: str_field("method", "bted+bao")?,
            n_trial: usize::try_from(uint_field("n_trial", 64)?)
                .map_err(|_| "field `n_trial` out of range")?,
            seed: uint_field("seed", 0)?,
            device: str_field("device", "gtx1080ti")?,
            priority: u8::try_from(uint_field("priority", 0)?)
                .map_err(|_| "field `priority` must fit in u8")?,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Re-checks every resolvable name (also run on journal replay, so a
    /// journal written by a newer build degrades to a failed job instead
    /// of a panicking worker).
    ///
    /// # Errors
    ///
    /// Returns the first resolution failure.
    pub fn validate(&self) -> Result<(), String> {
        if self.model.is_empty() {
            return Err("field `model` is required".into());
        }
        if self.tenant.chars().any(|c| !c.is_alphanumeric() && c != '-' && c != '_') {
            return Err("field `tenant` must be alphanumeric (plus `-`/`_`)".into());
        }
        if self.tenant.len() > MAX_TENANT_LEN {
            return Err(format!("field `tenant` must be at most {MAX_TENANT_LEN} bytes"));
        }
        if self.n_trial == 0 || self.n_trial > MAX_TRIALS {
            return Err(format!("field `n_trial` must be in 1..={MAX_TRIALS}"));
        }
        let graph = model_by_name(&self.model)?;
        if let Some(i) = self.task {
            let n = dnn_graph::task::extract_tasks(&graph).len();
            if i >= n {
                return Err(format!("task index {i} out of range (model has {n})"));
            }
        }
        method_by_name(&self.method)?;
        device_by_name(&self.device)?;
        Ok(())
    }
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and journaled, waiting for a worker.
    Queued,
    /// A worker is tuning it.
    Running,
    /// Finished; `result.json` is in its run directory.
    Done,
    /// Terminated with an error.
    Failed,
}

impl JobState {
    /// Wire name of the state.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// One journal line. `spec` rides on `submitted` entries; `error` on
/// `failed` ones.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JournalLine {
    /// `submitted`, `done`, or `failed`.
    pub entry: String,
    /// Job id (`j1`, `j2`, ... in submission order).
    pub id: String,
    /// The job spec (submission entries only).
    pub spec: Option<JobSpec>,
    /// Failure diagnostic (failed entries only).
    pub error: Option<String>,
}

/// Resolves a model name (the CLI's resolver, duplicated because `cli`
/// is a binary crate; `bench` does the same).
///
/// # Errors
///
/// Returns an error listing the valid names.
pub fn model_by_name(name: &str) -> Result<Graph, String> {
    match name {
        "alexnet" => Ok(models::alexnet(1)),
        "resnet18" => Ok(models::resnet18(1)),
        "resnet34" => Ok(models::resnet34(1)),
        "vgg16" => Ok(models::vgg16(1)),
        "vgg19" => Ok(models::vgg19(1)),
        "mobilenet_v1" | "mobilenet" => Ok(models::mobilenet_v1(1)),
        "squeezenet_v1.1" | "squeezenet" => Ok(models::squeezenet_v1_1(1)),
        other => Err(format!(
            "unknown model `{other}` (alexnet, resnet18, resnet34, vgg16, vgg19, \
             mobilenet_v1, squeezenet_v1.1)"
        )),
    }
}

/// Resolves a method label.
///
/// # Errors
///
/// Returns an error listing the valid labels.
pub fn method_by_name(name: &str) -> Result<Method, String> {
    match name {
        "random" => Ok(Method::Random),
        "autotvm" => Ok(Method::AutoTvm),
        "bted" => Ok(Method::Bted),
        "bted+bao" | "bao" | "ours" => Ok(Method::BtedBao),
        other => Err(format!("unknown method `{other}` (random, autotvm, bted, bted+bao)")),
    }
}

/// Resolves a device preset.
///
/// # Errors
///
/// Returns an error listing the valid names.
pub fn device_by_name(name: &str) -> Result<GpuDevice, String> {
    match name {
        "gtx1080ti" | "1080ti" => Ok(GpuDevice::gtx_1080_ti()),
        "v100" => Ok(GpuDevice::tesla_v100()),
        "jetson" | "tx2" => Ok(GpuDevice::jetson_tx2()),
        other => Err(format!("unknown device `{other}` (gtx1080ti, v100, jetson)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn spec_parsing_fills_defaults_and_validates_names() {
        let spec = JobSpec::from_value(&json!({"model": "squeezenet", "task": 2})).unwrap();
        assert_eq!(spec.tenant, "default");
        assert_eq!(spec.method, "bted+bao");
        assert_eq!(spec.n_trial, 64);
        assert_eq!(spec.task, Some(2));

        assert!(JobSpec::from_value(&json!({})).unwrap_err().contains("model"));
        assert!(JobSpec::from_value(&json!({"model": "nope"})).unwrap_err().contains("nope"));
        assert!(JobSpec::from_value(&json!({"model": "squeezenet", "task": 99}))
            .unwrap_err()
            .contains("out of range"));
        assert!(JobSpec::from_value(&json!({"model": "squeezenet", "n_trial": 0})).is_err());
        assert!(JobSpec::from_value(&json!({"model": "squeezenet", "tenant": "a b"})).is_err());
        let long = "x".repeat(MAX_TENANT_LEN + 1);
        assert!(JobSpec::from_value(&json!({"model": "squeezenet", "tenant": long})).is_err());
    }

    #[test]
    fn journal_lines_round_trip() {
        let spec = JobSpec::from_value(&json!({"model": "squeezenet"})).unwrap();
        let line = JournalLine {
            entry: "submitted".into(),
            id: "j1".into(),
            spec: Some(spec.clone()),
            error: None,
        };
        let s = serde_json::to_string(&line).unwrap();
        let back: JournalLine = serde_json::from_str(&s).unwrap();
        assert_eq!(back.spec.unwrap(), spec);
    }
}

//! The `aaltune serve` server: accept loop, HTTP workers, job workers,
//! and the wiring between them.
//!
//! Thread layout (all plain OS threads; the build is offline, so no
//! async runtime):
//!
//! ```text
//! accept ──> BoundedQueue<TcpStream> ──> http workers (keep-alive loop)
//!                                          │ POST /jobs ─> Admission ─> journal
//!                                          └ GET  /best ─> ReadHandle (no locks held long)
//! Admission ──> job workers ──> runner::run_job ──> shared DevicePool
//!                                          └──────> TuningDb upserts
//! ```
//!
//! Every layer reports through one [`MetricsRegistry`]; a
//! [`SnapshotWriter`] publishes it into the serve root so `aaltune top
//! ROOT` works against a live server. Graceful shutdown (`POST
//! /shutdown`) drains: in-flight jobs finish through their checkpoint
//! machinery, queued jobs stay journaled for the next start. A kill -9
//! skips all of that and relies on journal + checkpoint replay alone.

use crate::admission::{Admission, SubmitError};
use crate::http::{Conn, ReadOutcome, Request, IDLE_POLL};
use crate::job::{device_by_name, model_by_name, JobSpec, JobState, JournalLine};
use crate::runner::run_job;
use dnn_graph::task::extract_tasks;
use executor::{BoundedQueue, DevicePool};
use schedule::template::space_for_task;
use serde_json::{json, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use telemetry::sync::{lock_or_recover, read_or_recover, write_or_recover};
use telemetry::{
    FileSink, MetricsRegistry, Record, ReporterSink, SnapshotWriter, TeeSink, Telemetry,
};
use tuning_db::{LockOptions, ReadHandle, TaskSpec, TuningDb};

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Serve root: journal, job run dirs, metrics snapshots, db default.
    pub root: PathBuf,
    /// Bind address; port 0 picks a free port (the bound address is
    /// written to `<root>/serve.addr` either way).
    pub addr: String,
    /// HTTP worker threads (each owns one connection at a time).
    pub http_workers: usize,
    /// Job worker threads (max concurrently-running jobs).
    pub job_workers: usize,
    /// Simulated devices in the shared pool.
    pub devices: usize,
    /// Measurement worker threads per running job (device leases per job
    /// never exceed this).
    pub exec_workers: usize,
    /// Emulated device occupancy per measurement (real time per lease);
    /// zero means leases release immediately.
    pub device_hold: Duration,
    /// Max queued jobs per tenant before 429.
    pub backlog: usize,
    /// Hard device quota per tenant (`None` = soft fair share only).
    pub tenant_devices: Option<usize>,
    /// Tuning-database directory (`None` = `<root>/db`).
    pub db: Option<PathBuf>,
    /// Metrics snapshot cadence.
    pub snapshot_interval: Duration,
    /// Suppress human-readable event logging on stderr.
    pub quiet: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            root: PathBuf::from("serve-root"),
            addr: "127.0.0.1:0".to_string(),
            http_workers: 4,
            job_workers: 2,
            devices: 4,
            exec_workers: 2,
            device_hold: Duration::ZERO,
            backlog: 16,
            tenant_devices: None,
            db: None,
            snapshot_interval: Duration::from_millis(500),
            quiet: false,
        }
    }
}

/// Entries kept in [`Shared::spec_cache`]. The key space is finite once
/// model/task/device are validated, but a cap keeps a misbehaving churn
/// of valid keys from mattering either.
const SPEC_CACHE_CAP: usize = 512;

/// Distinct tenants that get their own metric names; later tenants are
/// aggregated under `other` so unauthenticated submissions cannot grow
/// the registry without bound.
const TENANT_LABEL_CAP: usize = 64;

/// State shared by every server thread.
struct Shared {
    cfg: ServeConfig,
    addr: SocketAddr,
    admission: Admission,
    journal: Mutex<std::fs::File>,
    pool: Arc<DevicePool>,
    db: Mutex<TuningDb>,
    read: ReadHandle,
    bus: telemetry::EventBus,
    tel: Telemetry,
    shutdown: Arc<AtomicBool>,
    conns: BoundedQueue<TcpStream>,
    /// `model/task/device` → (spec, feature): `/best` rebuilds neither
    /// the graph nor the task features on the hot path.
    spec_cache: RwLock<BTreeMap<String, (TaskSpec, Vec<f64>)>>,
    /// Tenants granted per-tenant metric names (bounded; see
    /// [`TENANT_LABEL_CAP`]).
    tenant_labels: Mutex<BTreeSet<String>>,
}

impl Shared {
    /// Starts the drain exactly once: no new work, close the connection
    /// queue, and poke the accept loop awake.
    fn trigger_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.admission.drain();
        self.conns.close();
        let _ = TcpStream::connect(self.addr);
    }

    /// Appends one journal line and flushes it before returning — the
    /// durability point for every lifecycle transition.
    fn journal_append(&self, line: &JournalLine) -> Result<(), String> {
        let payload = serde_json::to_string(line).map_err(|e| format!("journal encode: {e}"))?;
        let mut f = lock_or_recover(&self.journal);
        writeln!(f, "{payload}").and_then(|()| f.flush()).map_err(|e| format!("journal write: {e}"))
    }

    /// The metric label for `tenant`: its own name for the first
    /// [`TENANT_LABEL_CAP`] distinct tenants, `other` afterwards —
    /// client-chosen strings must not grow the registry unboundedly.
    fn tenant_label(&self, tenant: &str) -> String {
        let mut labels = lock_or_recover(&self.tenant_labels);
        if labels.contains(tenant) {
            return tenant.to_string();
        }
        if labels.len() < TENANT_LABEL_CAP {
            labels.insert(tenant.to_string());
            return tenant.to_string();
        }
        "other".to_string()
    }
}

/// A running server; dropping it does **not** stop the threads — call
/// [`Server::shutdown`] then [`Server::wait`] (or hit `POST /shutdown`).
pub struct Server {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    snapshots: Option<SnapshotWriter>,
}

impl Server {
    /// Binds, replays the journal, and spawns the worker threads.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic when the root, database, journal, or socket
    /// cannot be set up.
    pub fn start(cfg: ServeConfig) -> Result<Server, String> {
        std::fs::create_dir_all(cfg.root.join("jobs"))
            .map_err(|e| format!("cannot create serve root: {e}"))?;

        let registry = Arc::new(MetricsRegistry::new());
        // The bus instance inside the tee is what subscribers must attach
        // to, so build it first and clone it into the tee.
        let bus = telemetry::EventBus::default();
        let tee = TeeSink::new()
            .with(
                FileSink::append(cfg.root.join("trace.jsonl"))
                    .map_err(|e| format!("cannot open trace log: {e}"))?,
            )
            .with(bus.clone());
        let tee = if cfg.quiet { tee } else { tee.with(ReporterSink::human()) };
        let tel = Telemetry::with_registry(tee, Arc::clone(&registry));
        telemetry::set_global(tel.clone());

        let db_root = cfg.db.clone().unwrap_or_else(|| cfg.root.join("db"));
        let db = TuningDb::open(&db_root, &LockOptions::default())
            .map_err(|e| format!("cannot open tuning database: {e}"))?;
        let read = db.read_handle();
        let pool = DevicePool::with_hold(cfg.devices.max(1), cfg.device_hold);

        let admission = Admission::new(cfg.backlog);
        let journal_path = cfg.root.join("journal.jsonl");
        let replayed = replay_journal(&journal_path)?;
        for (id, spec, state, error) in replayed {
            if let Some(q) = cfg.tenant_devices {
                pool.set_tag_cap(&spec.tenant, Some(q));
            }
            admission.restore(&id, spec, state, error);
        }
        let journal = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal_path)
            .map_err(|e| format!("cannot open journal: {e}"))?;

        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
        let addr = listener.local_addr().map_err(|e| format!("no local addr: {e}"))?;
        telemetry::stream::write_atomic(&cfg.root.join("serve.addr"), addr.to_string().as_bytes())
            .map_err(|e| format!("cannot record serve.addr: {e}"))?;

        let snapshots = SnapshotWriter::start(
            cfg.root.clone(),
            Arc::clone(&registry),
            cfg.snapshot_interval,
            tel.clone(),
        );

        let shared = Arc::new(Shared {
            addr,
            admission,
            journal: Mutex::new(journal),
            pool,
            db: Mutex::new(db),
            read,
            bus,
            tel,
            shutdown: Arc::new(AtomicBool::new(false)),
            conns: BoundedQueue::new(64, "serve.conns.depth"),
            spec_cache: RwLock::new(BTreeMap::new()),
            tenant_labels: Mutex::new(BTreeSet::new()),
            cfg,
        });
        shared.tel.gauge("serve.queue.depth", to_f64(shared.admission.queue_depth()));

        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            threads.push(spawn_named("serve-accept", move || accept_loop(&shared, &listener)));
        }
        for i in 0..shared.cfg.http_workers.max(1) {
            let shared = Arc::clone(&shared);
            threads.push(spawn_named(&format!("serve-http-{i}"), move || http_worker(&shared)));
        }
        for i in 0..shared.cfg.job_workers.max(1) {
            let shared = Arc::clone(&shared);
            threads.push(spawn_named(&format!("serve-job-{i}"), move || job_worker(&shared)));
        }
        Ok(Server { shared, threads, snapshots: Some(snapshots) })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Initiates a graceful drain (idempotent; `POST /shutdown` does the
    /// same thing).
    pub fn shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Blocks until every worker thread exits (i.e. until someone calls
    /// [`Server::shutdown`] or hits `POST /shutdown`), then flushes
    /// metrics and telemetry.
    pub fn wait(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(s) = self.snapshots.take() {
            s.finish();
        }
        self.shared.tel.flush();
    }
}

/// Spawns a named worker thread.
fn spawn_named(name: &str, f: impl FnOnce() + Send + 'static) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(f)
        // aal-lint: allow(unwrap, reason = "thread spawn fails only on OS resource exhaustion; no recovery at this layer")
        .expect("spawn server thread")
}

/// One journal entry replayed at startup: `(id, spec, final state, error)`.
type ReplayedJob = (String, JobSpec, JobState, Option<String>);

/// Reads the journal back into replayed jobs in submission order. A torn
/// final line (kill -9 mid-append) is skipped; its job was never
/// acknowledged, so dropping it is correct.
fn replay_journal(path: &std::path::Path) -> Result<Vec<ReplayedJob>, String> {
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("cannot read journal: {e}")),
    };
    let mut order: Vec<String> = Vec::new();
    let mut jobs: BTreeMap<String, (JobSpec, JobState, Option<String>)> = BTreeMap::new();
    for line in std::io::BufReader::new(file).lines() {
        let line = line.map_err(|e| format!("cannot read journal: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let Ok(entry) = serde_json::from_str::<JournalLine>(&line) else {
            continue; // torn tail from a crash mid-append
        };
        match entry.entry.as_str() {
            "submitted" => {
                if let Some(spec) = entry.spec {
                    order.push(entry.id.clone());
                    jobs.insert(entry.id, (spec, JobState::Queued, None));
                }
            }
            "done" => {
                if let Some(j) = jobs.get_mut(&entry.id) {
                    j.1 = JobState::Done;
                }
            }
            "failed" => {
                if let Some(j) = jobs.get_mut(&entry.id) {
                    j.1 = JobState::Failed;
                    j.2 = entry.error;
                }
            }
            _ => {}
        }
    }
    Ok(order
        .into_iter()
        .filter_map(|id| jobs.remove(&id).map(|(spec, state, err)| (id, spec, state, err)))
        .collect())
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if shared.conns.push(stream).is_err() {
                    return; // queue closed by shutdown
                }
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // A persistent failure (e.g. EMFILE) would otherwise
                // busy-spin this thread at 100% CPU; back off briefly.
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

fn http_worker(shared: &Arc<Shared>) {
    while let Some(stream) = shared.conns.pop() {
        serve_conn(shared, stream);
    }
}

fn serve_conn(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(conn) = Conn::new(stream) else { return };
    let mut conn = conn.with_shutdown(Arc::clone(&shared.shutdown));
    loop {
        match conn.read_request() {
            Ok(ReadOutcome::Request(req)) => {
                shared.tel.count("serve.http.requests", 1);
                match handle(shared, &mut conn, &req) {
                    Ok(true) => {}
                    Ok(false) | Err(_) => return,
                }
            }
            Ok(ReadOutcome::Idle) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Ok(ReadOutcome::Bad(msg)) => {
                let _ = conn.respond_json(400, &json!({ "error": msg }));
                return;
            }
            Ok(ReadOutcome::TooLarge) => {
                let _ = conn.respond_json(413, &json!({ "error": "body too large" }));
                return;
            }
            Ok(ReadOutcome::Eof | ReadOutcome::Shutdown) | Err(_) => return,
        }
    }
}

/// Routes one request. Returns `Ok(true)` to keep the connection alive.
fn handle(shared: &Arc<Shared>, conn: &mut Conn, req: &Request) -> std::io::Result<bool> {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/jobs") => post_job(shared, conn, req).map(|()| true),
        ("GET", "/best") => get_best(shared, conn, req).map(|()| true),
        ("GET", "/healthz") => conn
            .respond_json(
                200,
                &json!({
                    "status": if shared.admission.draining() { "draining" } else { "ok" },
                    "queued": to_f64(shared.admission.queue_depth()),
                }),
            )
            .map(|()| true),
        ("POST", "/shutdown") => {
            conn.respond_json(202, &json!({ "status": "draining" }))?;
            shared.trigger_shutdown();
            Ok(false)
        }
        ("GET", path) if path.starts_with("/jobs/") => {
            let rest = &path["/jobs/".len()..];
            match rest.split('/').collect::<Vec<_>>().as_slice() {
                [id] => job_status(shared, conn, id).map(|()| true),
                [id, "result"] => job_result(shared, conn, id).map(|()| true),
                [id, "events"] => job_events(shared, conn, id),
                _ => conn.respond_json(404, &json!({ "error": "not found" })).map(|()| true),
            }
        }
        (_, "/jobs" | "/best" | "/healthz" | "/shutdown") => {
            conn.respond_json(405, &json!({ "error": "method not allowed" })).map(|()| true)
        }
        _ => conn.respond_json(404, &json!({ "error": "not found" })).map(|()| true),
    }
}

fn post_job(shared: &Arc<Shared>, conn: &mut Conn, req: &Request) -> std::io::Result<()> {
    let parsed = std::str::from_utf8(&req.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(|s| serde_json::from_str::<Value>(s).map_err(|e| format!("bad JSON: {e}")))
        .and_then(|v| JobSpec::from_value(&v));
    let spec = match parsed {
        Ok(s) => s,
        Err(e) => return conn.respond_json(400, &json!({ "error": e })),
    };
    let tenant = spec.tenant.clone();
    let label = shared.tenant_label(&tenant);
    if let Some(q) = shared.cfg.tenant_devices {
        shared.pool.set_tag_cap(&tenant, Some(q));
    }
    let outcome = shared.admission.submit(spec, |id, spec| {
        shared.journal_append(&JournalLine {
            entry: "submitted".to_string(),
            id: id.to_string(),
            spec: Some(spec.clone()),
            error: None,
        })
    });
    match outcome {
        Ok(id) => {
            shared.tel.count("serve.admitted", 1);
            shared.tel.count(&format!("serve.tenant.{label}.admitted"), 1);
            shared.tel.gauge("serve.queue.depth", to_f64(shared.admission.queue_depth()));
            conn.respond_json(202, &json!({ "id": id, "status": "queued" }))
        }
        Err(SubmitError::Rejected(reject)) => {
            shared.tel.count("serve.rejected", 1);
            shared.tel.count(&format!("serve.tenant.{label}.rejected"), 1);
            let (status, body) = reject.to_http(&tenant);
            conn.respond_json(status, &body)
        }
        Err(SubmitError::Persist(e)) => conn.respond_json(500, &json!({ "error": e })),
    }
}

fn get_best(shared: &Arc<Shared>, conn: &mut Conn, req: &Request) -> std::io::Result<()> {
    let start = Instant::now(); // latency histogram only; never a tuning input
    let Some(model) = req.query.get("model") else {
        return conn.respond_json(400, &json!({ "error": "query parameter `model` is required" }));
    };
    let task_idx: usize = match req.query.get("task").map(|s| s.parse()) {
        None => 0,
        Some(Ok(i)) => i,
        Some(Err(_)) => {
            return conn.respond_json(
                400,
                &json!({ "error": "query parameter `task` must be an integer" }),
            )
        }
    };
    let device = req.query.get("device").map_or("gtx1080ti", String::as_str);
    if let Err(e) = device_by_name(device) {
        return conn.respond_json(400, &json!({ "error": e }));
    }
    let key = format!("{model}/{task_idx}/{device}");
    let cached = read_or_recover(&shared.spec_cache).get(&key).cloned();
    let (spec, feature) = match cached {
        Some(hit) => hit,
        None => {
            let graph = match model_by_name(model) {
                Ok(g) => g,
                Err(e) => return conn.respond_json(400, &json!({ "error": e })),
            };
            let tasks = extract_tasks(&graph);
            let Some(task) = tasks.get(task_idx) else {
                return conn.respond_json(
                    400,
                    &json!({ "error": format!("task index {task_idx} out of range (model has {})", tasks.len()) }),
                );
            };
            let space = space_for_task(task);
            let built = (TaskSpec::of(task, &space, device), TaskSpec::features(task));
            let mut cache = write_or_recover(&shared.spec_cache);
            // Every key component is validated above, so the key space is
            // already finite; the cap is a backstop, and dropping the
            // whole map on overflow is fine at this hit rate.
            if cache.len() >= SPEC_CACHE_CAP {
                cache.clear();
            }
            cache.insert(key, built.clone());
            built
        }
    };
    let result = if let Some(rec) = shared.read.lookup(&spec) {
        shared.tel.count("serve.read.hit", 1);
        Some(("exact", rec))
    } else if let Some(rec) = shared.read.nearest(&spec, &feature, 1).into_iter().next() {
        shared.tel.count("serve.read.nearest", 1);
        Some(("nearest", rec))
    } else {
        shared.tel.count("serve.read.miss", 1);
        None
    };
    let elapsed_us = start.elapsed().as_secs_f64() * 1e6;
    shared.tel.observe("serve.read.us", elapsed_us);
    match result {
        Some((source, rec)) => conn
            .respond_json(200, &json!({ "source": source, "record": serde_json::to_value(&rec) })),
        None => conn.respond_json(404, &json!({ "error": "no record for this task" })),
    }
}

fn job_status(shared: &Arc<Shared>, conn: &mut Conn, id: &str) -> std::io::Result<()> {
    match shared.admission.status(id) {
        Some((body, _)) => conn.respond_json(200, &body),
        None => conn.respond_json(404, &json!({ "error": "unknown job" })),
    }
}

fn job_result(shared: &Arc<Shared>, conn: &mut Conn, id: &str) -> std::io::Result<()> {
    match shared.admission.status(id) {
        Some((_, JobState::Done)) => {
            match std::fs::read(shared.cfg.root.join("jobs").join(id).join("result.json")) {
                Ok(bytes) => conn.respond_bytes(200, "application/json", &bytes),
                Err(e) => {
                    conn.respond_json(500, &json!({ "error": format!("result unreadable: {e}") }))
                }
            }
        }
        Some((body, JobState::Failed)) => conn.respond_json(409, &body),
        Some((body, _)) => {
            let mut body = body;
            if let Value::Object(obj) = &mut body {
                obj.insert("error".into(), Value::String("not finished".into()));
            }
            conn.respond_json(409, &body)
        }
        None => conn.respond_json(404, &json!({ "error": "unknown job" })),
    }
}

/// Streams a job's progress events as chunked JSONL: first the replay
/// ring, then live bus events, until a terminal event or client
/// disconnect. Always closes the connection afterwards.
fn job_events(shared: &Arc<Shared>, conn: &mut Conn, id: &str) -> std::io::Result<bool> {
    // Subscribe before snapshotting the ring so nothing falls between;
    // overlap is deduped by seq.
    let sub = shared.bus.subscribe();
    let Some((ring, state)) = shared.admission.events_snapshot(id) else {
        return conn.respond_json(404, &json!({ "error": "unknown job" })).map(|()| true);
    };
    conn.start_chunked(200, "application/jsonl")?;
    let mut last_seq: i64 = -1;
    let mut terminal = false;
    for v in &ring {
        conn.write_chunk(format!("{v}\n").as_bytes())?;
        if let Some(s) = v["seq"].as_u64() {
            last_seq = cast_seq(s);
        }
        terminal = terminal || is_terminal(v);
    }
    // A job restored terminal from the journal has an empty ring: no
    // terminal event will ever arrive on the bus, so synthesize one and
    // finish instead of polling until server shutdown.
    if !terminal && matches!(state, JobState::Done | JobState::Failed) {
        let name = if state == JobState::Done { "job.done" } else { "job.failed" };
        let line = json!({ "event": name, "job": id, "replayed": true });
        conn.write_chunk(format!("{line}\n").as_bytes())?;
        terminal = true;
    }
    while !terminal && !shared.shutdown.load(Ordering::Acquire) {
        match sub.recv_timeout(IDLE_POLL) {
            telemetry::BusRecv::Event(Record::Event { fields, .. }) => {
                if fields["job"].as_str() != Some(id) {
                    continue;
                }
                let seq = fields["seq"].as_u64().map_or(-1, cast_seq);
                if seq <= last_seq {
                    continue;
                }
                conn.write_chunk(format!("{fields}\n").as_bytes())?;
                last_seq = seq;
                terminal = is_terminal(&fields);
            }
            telemetry::BusRecv::Event(_) | telemetry::BusRecv::Timeout => {}
            telemetry::BusRecv::Closed => break,
        }
    }
    conn.finish_chunked()?;
    Ok(false)
}

fn is_terminal(fields: &Value) -> bool {
    matches!(fields["event"].as_str(), Some("job.done" | "job.failed"))
}

#[allow(clippy::cast_possible_wrap)]
fn cast_seq(s: u64) -> i64 {
    s.min(i64::MAX as u64) as i64
}

#[allow(clippy::cast_precision_loss)]
fn to_f64(n: usize) -> f64 {
    n as f64
}

fn job_worker(shared: &Arc<Shared>) {
    while let Some((id, spec)) = shared.admission.next_job() {
        shared.tel.gauge("serve.queue.depth", to_f64(shared.admission.queue_depth()));
        shared.tel.gauge_add("serve.jobs.running", 1.0);
        emit_event(
            shared,
            &id,
            "job.start",
            json!({ "tenant": spec.tenant.clone(), "model": spec.model.clone() }),
        );
        let emit = |name: &str, fields: Value| emit_event(shared, &id, name, fields);
        let outcome = run_job(
            &shared.cfg.root.join("jobs"),
            &id,
            &spec,
            &shared.pool,
            shared.cfg.exec_workers.max(1),
            Some(&shared.db),
            &emit,
        );
        shared.tel.gauge_add("serve.jobs.running", -1.0);
        let terminal = match &outcome {
            Ok(_) => {
                shared.tel.count("serve.jobs.completed", 1);
                JournalLine { entry: "done".into(), id: id.clone(), spec: None, error: None }
            }
            Err(e) => {
                shared.tel.count("serve.jobs.failed", 1);
                JournalLine {
                    entry: "failed".into(),
                    id: id.clone(),
                    spec: None,
                    error: Some(e.clone()),
                }
            }
        };
        // Journal the terminal state before anything observes it; a crash
        // right here simply re-runs the job, which is idempotent (the run
        // dir is complete, so the rerun just re-reads its logs).
        if let Err(e) = shared.journal_append(&terminal) {
            shared.tel.count("serve.journal.errors", 1);
            if !shared.cfg.quiet {
                eprintln!("serve: journal append failed for {id}: {e}");
            }
        }
        match &outcome {
            Ok(_) => emit_event(shared, &id, "job.done", json!({})),
            Err(e) => emit_event(shared, &id, "job.failed", json!({ "error": e.clone() })),
        }
        shared.admission.complete(&id, outcome.map(|_| ()));
    }
}

/// Stamps `event`/`job`/`seq` into `fields`, records it in the job's
/// replay ring, and publishes it to the live bus + trace.
fn emit_event(shared: &Shared, id: &str, name: &str, mut fields: Value) {
    if let Value::Object(obj) = &mut fields {
        obj.insert("event".into(), Value::String(name.to_string()));
    }
    if let Some(stamped) = shared.admission.push_event(id, fields) {
        shared.tel.event(name, || stamped);
    }
}

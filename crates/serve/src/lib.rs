//! Tuning-as-a-service: a long-running server exposing the tuning loop
//! as a multi-tenant job API plus a high-QPS cached read path.
//!
//! The build is fully offline, so the HTTP layer is a hand-rolled
//! HTTP/1.1 subset over [`std::net`] (see [`http`]); everything else is
//! composition of existing subsystems:
//!
//! * jobs run through the same crash-safe run-directory machinery as
//!   `aaltune tune` (journal + per-task logs + checkpoints), so a
//!   killed server resumes its queue on restart with byte-identical
//!   trial logs ([`runner`]);
//! * tenants share one device pool with fair-share scheduling and
//!   optional hard quotas ([`admission`] + `executor::DevicePool` tag
//!   caps);
//! * `GET /best` answers from the tuning database's lock-light
//!   [`tuning_db::ReadHandle`] without ever touching the tuning loop;
//! * all activity flows through one `telemetry::MetricsRegistry`, so
//!   `aaltune top <root>` monitors a live server.

pub mod admission;
pub mod client;
pub mod http;
pub mod job;
pub mod runner;
pub mod server;

pub use admission::{Admission, Reject, SubmitError};
pub use job::{JobSpec, JobState, JournalLine};
pub use server::{ServeConfig, Server};

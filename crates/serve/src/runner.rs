//! Executes one tuning job inside its per-job run directory.
//!
//! This is the CLI `tune` loop reduced to its durable core: per-task
//! crash-safe trial logs, checkpoint every 16 trials, and replay-based
//! resume — so a server killed mid-job continues exactly where the log
//! ends, and the finished logs are byte-identical to an uninterrupted
//! run. Two deliberate simplifications keep that guarantee simple:
//!
//! * jobs tune **cold** (no database warm start), so the trial stream
//!   is a pure function of the spec — independent of what other tenants
//!   upserted meanwhile, which is what makes the kill -9 twin
//!   comparison in CI byte-exact;
//! * the measurement stack is a plain [`SimMeasurer`] behind the shared
//!   executor (no fault injection, no quarantine) — chaos testing
//!   belongs to the `tune` CLI, not the service.
//!
//! Results are folded into the shared tuning database after each task
//! (append-before-apply, under the server's writer lock), which is what
//! the high-QPS `/best` read path serves from.

use crate::job::{device_by_name, method_by_name, model_by_name, JobSpec};
use active_learning::records::{Checkpoint, RunDir, TuningLog, CHECKPOINT_SCHEMA_VERSION};
use active_learning::{tune_task_with, RunManifest, TrialRecord, TuneHooks, TuneOptions};
use dnn_graph::task::{extract_tasks, TuningTask};
use executor::{DevicePool, Executor, ExecutorConfig};
use gpu_sim::SimMeasurer;
use schedule::template::space_for_task;
use serde_json::{json, Value};
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::{Arc, Mutex};
use telemetry::sync::lock_or_recover;
use tuning_db::{
    decimate_curve, DbRecord, TaskSpec, TopConfig, TuningDb, DB_SCHEMA_VERSION, TOP_K,
};

/// Tuning options for a job: the smoke profile (small models, fast
/// surrogates) with the job's budget and seed applied.
#[must_use]
pub fn job_options(spec: &JobSpec) -> TuneOptions {
    TuneOptions {
        n_trial: spec.n_trial,
        early_stopping: spec.n_trial,
        seed: spec.seed,
        capture_model: Some(false),
        ..TuneOptions::smoke()
    }
}

/// Runs (or resumes) job `id` to completion. `emit` receives progress
/// events (`job.trial`, one per live trial) already scoped to this job.
///
/// # Errors
///
/// Returns a diagnostic; the caller marks the job failed and journals it.
pub fn run_job(
    jobs_root: &Path,
    id: &str,
    spec: &JobSpec,
    pool: &Arc<DevicePool>,
    workers: usize,
    db: Option<&Mutex<TuningDb>>,
    emit: &dyn Fn(&str, Value),
) -> Result<Value, String> {
    spec.validate()?;
    let model = model_by_name(&spec.model)?;
    let method = method_by_name(&spec.method)?;
    let device = device_by_name(&spec.device)?;
    let device_name = spec.device.clone();
    let opts = job_options(spec);

    let dir = RunDir::create(jobs_root.join(id))
        .map_err(|e| format!("cannot create run dir for {id}: {e}"))?;
    let tasks = extract_tasks(&model);
    let selected: Vec<usize> = match spec.task {
        Some(i) if i < tasks.len() => vec![i],
        Some(i) => return Err(format!("task index {i} out of range (model has {})", tasks.len())),
        None => (0..tasks.len()).collect(),
    };
    let task_names: Vec<String> = selected.iter().map(|&i| tasks[i].name.clone()).collect();

    // Resume iff a checkpoint exists; its `completed_tasks` list is the
    // same advisory state `tune --resume` uses (correctness rests on the
    // logs themselves).
    let checkpoint = dir.read_checkpoint().map_err(|e| format!("bad checkpoint for {id}: {e}"))?;
    let resume = checkpoint.is_some();
    let mut completed: Vec<String> = checkpoint.map(|c| c.completed_tasks).unwrap_or_default();
    if !resume {
        dir.write_manifest(&RunManifest {
            model: spec.model.clone(),
            method: method.label().to_string(),
            tasks: task_names.clone(),
            seed: spec.seed,
            options: opts,
            schema_version: Some(active_learning::records::MANIFEST_SCHEMA_VERSION),
            git_describe: None,
            wall_time_s: None,
            device: Some(device_name.clone()),
            fault: None,
            resumed: None,
            workers: Some(workers),
            devices: None,
            db: None,
        })
        .map_err(|e| format!("cannot write manifest for {id}: {e}"))?;
    }

    // The executor leases from the server-wide pool under the *tenant*
    // tag, so fair share and hard quotas apply across every concurrent
    // job, not per task name.
    let exec = Executor::with_pool(
        SimMeasurer::new(device),
        ExecutorConfig::for_workers(workers.max(1)),
        Arc::clone(pool),
        Some(spec.tenant.clone()),
    );

    let write_ckpt = |completed: &[String], in_flight: Option<&str>, trials: Option<u64>| {
        dir.write_checkpoint(&Checkpoint {
            schema_version: Some(CHECKPOINT_SCHEMA_VERSION),
            completed_tasks: completed.to_vec(),
            in_flight: in_flight.map(str::to_string),
            trials_logged: trials,
            quarantine: None,
        })
        .map_err(|e| format!("cannot write checkpoint for {id}: {e}"))
    };
    if !resume {
        write_ckpt(&completed, None, None)?;
    }

    let mut summaries = Vec::new();
    for &ti in &selected {
        let task = &tasks[ti];
        let log = if completed.contains(&task.name) {
            let f = std::fs::File::open(dir.log_path(&task.name))
                .map_err(|e| format!("cannot reopen log of {}: {e}", task.name))?;
            TuningLog::read_jsonl(std::io::BufReader::new(f))
                .map_err(|e| format!("bad log for completed task {}: {e}", task.name))?
        } else {
            let log = tune_one(&dir, task, &exec, method, &opts, resume, id, emit)?;
            upsert_result(db, task, &device_name, method.label(), spec.seed, &log)?;
            completed.push(task.name.clone());
            write_ckpt(&completed, None, None)?;
            log
        };
        let best = log.best_gflops();
        summaries.push(json!({
            "task": task.name.clone(),
            "trials": log.records.len() as u64,
            "best_gflops": best,
        }));
    }

    let result = json!({
        "schema_version": 1u64,
        "job": id,
        "model": spec.model.clone(),
        "method": method.label(),
        "seed": spec.seed,
        "tasks": summaries,
    });
    // Atomic, wall-clock-free: the twin comparison may diff result files
    // too, and a torn result must never be served.
    telemetry::stream::write_atomic(
        &dir.path().join("result.json"),
        // aal-lint: allow(unwrap, reason = "result is plain JSON built above; serialization cannot fail")
        serde_json::to_string_pretty(&result).expect("result serializes").as_bytes(),
    )
    .map_err(|e| format!("cannot write result for {id}: {e}"))?;
    Ok(result)
}

/// Tunes one task with durable logging + replay resume (the crash-safe
/// core of the CLI's `run_task`).
#[allow(clippy::too_many_arguments)]
fn tune_one(
    dir: &RunDir,
    task: &TuningTask,
    exec: &Executor<SimMeasurer>,
    method: active_learning::Method,
    opts: &TuneOptions,
    resume: bool,
    id: &str,
    emit: &dyn Fn(&str, Value),
) -> Result<TuningLog, String> {
    let (replay, mut writer) = {
        let recovered = if resume {
            dir.recover_log(&task.name)
                .map_err(|e| format!("cannot recover log of {}: {e}", task.name))?
        } else {
            None
        };
        match recovered {
            Some((rec, w)) => (rec.log.records, w),
            None => (
                Vec::new(),
                dir.create_log(&task.name, method.label())
                    .map_err(|e| format!("cannot create log of {}: {e}", task.name))?,
            ),
        }
    };
    dir.write_checkpoint(&Checkpoint {
        schema_version: Some(CHECKPOINT_SCHEMA_VERSION),
        completed_tasks: completed_of(dir),
        in_flight: Some(task.name.clone()),
        trials_logged: Some(replay.len() as u64),
        quarantine: None,
    })
    .map_err(|e| format!("cannot write checkpoint for {id}: {e}"))?;

    let trials_logged = std::cell::Cell::new(replay.len() as u64);
    let write_err: std::cell::RefCell<Option<String>> = std::cell::RefCell::new(None);
    let mut sink = |rec: &TrialRecord| {
        if let Err(e) = writer.append(rec) {
            write_err.borrow_mut().get_or_insert(e.to_string());
        }
        trials_logged.set(trials_logged.get() + 1);
        if trials_logged.get().is_multiple_of(16) {
            let _ = dir.write_checkpoint(&Checkpoint {
                schema_version: Some(CHECKPOINT_SCHEMA_VERSION),
                completed_tasks: completed_of(dir),
                in_flight: Some(task.name.clone()),
                trials_logged: Some(trials_logged.get()),
                quarantine: None,
            });
        }
        emit(
            "job.trial",
            json!({
                "task": task.name.clone(),
                "trial": rec.trial,
                "gflops": rec.gflops,
                "best_gflops": rec.best_gflops,
            }),
        );
    };
    let r = tune_task_with(
        task,
        exec,
        method,
        opts,
        TuneHooks { on_trial: Some(&mut sink), replay: Some(&replay), ..TuneHooks::default() },
    );
    if let Some(e) = write_err.into_inner() {
        return Err(format!("trial log of {} failed to write: {e}", task.name));
    }
    if let Some(diag) = &r.aborted {
        return Err(format!("{} aborted: {diag}", task.name));
    }
    Ok(r.log)
}

/// Reads the completed-task list back from the current checkpoint (the
/// per-trial sink can't borrow the caller's mutable list while the tuner
/// holds the closure).
fn completed_of(dir: &RunDir) -> Vec<String> {
    dir.read_checkpoint().ok().flatten().map(|c| c.completed_tasks).unwrap_or_default()
}

/// Folds a finished task's log into the tuning database (same top-k
/// ranking the CLI's `upsert_result` uses).
fn upsert_result(
    db: Option<&Mutex<TuningDb>>,
    task: &TuningTask,
    device_name: &str,
    method_label: &str,
    seed: u64,
    log: &TuningLog,
) -> Result<(), String> {
    let Some(store) = db else { return Ok(()) };
    let space = space_for_task(task);
    let mut ranked: Vec<&TrialRecord> = log.records.iter().filter(|r| r.gflops > 0.0).collect();
    ranked.sort_by(|a, b| b.gflops.total_cmp(&a.gflops).then(a.config_index.cmp(&b.config_index)));
    let mut seen = BTreeSet::new();
    let mut top_k = Vec::new();
    for r in ranked {
        if top_k.len() >= TOP_K {
            break;
        }
        if !seen.insert(r.config_index) {
            continue;
        }
        let cfg = space.config(r.config_index).map_err(|e| {
            format!("bad config index {} in log of {}: {e}", r.config_index, task.name)
        })?;
        top_k.push(TopConfig {
            config_index: r.config_index,
            choices: cfg.choices,
            gflops: r.gflops,
            latency_s: r.latency_s,
        });
    }
    if top_k.is_empty() {
        return Ok(());
    }
    let rec = DbRecord {
        schema_version: DB_SCHEMA_VERSION,
        spec: TaskSpec::of(task, &space, device_name),
        feature: TaskSpec::features(task),
        method: method_label.to_string(),
        seed,
        n_trials: log.records.len() as u64,
        best_gflops: top_k[0].gflops,
        top_k,
        curve: decimate_curve(&log.convergence_curve(), 64),
    };
    lock_or_recover(store)
        .upsert(rec)
        .map_err(|e| format!("cannot upsert {} into tuning database: {e}", task.name))
}

//! # executor — parallel batched measurement execution
//!
//! The measurement subsystem between the tuning loop and the (simulated)
//! hardware: an AutoTVM-style builder/runner pool that measures whole
//! candidate batches concurrently while keeping results — and therefore
//! tuner behavior and trial logs — byte-identical to the serial path.
//!
//! Three layers, bottom up:
//!
//! * [`BoundedQueue`] — a blocking bounded MPMC queue: backpressured
//!   submission, close-to-drain shutdown.
//! * [`DevicePool`] / [`DeviceLease`] — N simulated device slots with
//!   per-task fair-share allocation and optional real-time occupancy
//!   emulation.
//! * [`Executor`] — the two-stage build→run pipeline. It implements
//!   [`gpu_sim::Measurer`], overriding `measure_batch` to fan a batch out
//!   over the pools and re-sequence results by submission index; wrap any
//!   measurer stack (`RobustMeasurer<FaultInjectingMeasurer<SimMeasurer>>`
//!   included) and hand it to the existing tuning loop unchanged.
//!
//! [`run_ordered`] adds task-level scheduling on top: tune several
//! `TuningTask`s concurrently with deterministic result ordering, while
//! the shared [`DevicePool`] arbitrates devices between them fairly.
//!
//! ## Determinism contract
//!
//! For a fixed seed, `tune --workers N` produces byte-identical trial
//! logs for every `N`. This holds because (a) results are re-sequenced by
//! submission index before the tuner sees them, (b) the simulated
//! measurement is a pure function of `(task, config, trial_seed)`, and
//! (c) fault/retry bookkeeping is keyed per `(task, config)` with all
//! attempts of one configuration confined to a single worker.

pub mod device;
pub mod pool;
pub mod queue;
pub mod scheduler;

pub use device::{DeviceLease, DevicePool};
pub use pool::{BatchHandle, Executor, ExecutorConfig};
pub use queue::BoundedQueue;
pub use scheduler::run_ordered;

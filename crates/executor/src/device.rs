//! [`DevicePool`]: N simulated device slots with fair-share allocation.
//!
//! Runner workers acquire a device lease before measuring, exactly like
//! AutoTVM runners attaching to boards on an RPC tracker. The pool adds
//! two behaviors on top of plain slot handout:
//!
//! * **fair share across tasks** — leases are tagged (by task name); when
//!   several tasks compete for the pool, a task already holding its fair
//!   share (`ceil(devices / active_tags)`) yields to a waiting task
//!   instead of monopolizing the pool. The cap is *soft*: a surplus of
//!   free devices, or the absence of any other waiter, lets a task exceed
//!   it, so devices never idle while exactly one task wants them.
//! * **hard per-tag quotas** — [`DevicePool::set_tag_cap`] pins an
//!   absolute ceiling on the devices one tag may hold at once. Unlike the
//!   soft fair-share cap it is never exceeded, even when the rest of the
//!   pool sits idle: a serving deployment uses it as the per-tenant device
//!   quota, so one tenant's burst cannot occupy another tenant's share.
//! * **occupancy emulation** — an optional real-time hold keeps the
//!   device (and its runner) busy for a configurable duration per lease,
//!   standing in for the device-side round-trip a simulator otherwise
//!   lacks. Results are unaffected; only wall-clock occupancy is modeled.
//!
//! Fairness can transiently leave a free device idle when every waiting
//! tag is at its cap; the next lease release re-evaluates, so stalls are
//! bounded by a single measurement. Telemetry: per-device acquire/busy
//! counters (`exec.device.N.*`) and a pool-wide busy histogram.

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};
use telemetry::sync::lock_or_recover;

/// A pool of simulated device slots shared by runner workers.
#[derive(Debug)]
pub struct DevicePool {
    state: Mutex<PoolState>,
    freed: Condvar,
    devices: usize,
    hold: Duration,
}

#[derive(Debug)]
struct PoolState {
    /// Free device ids (LIFO: hot devices are reused first).
    free: Vec<usize>,
    /// Per-tag accounting; entries are removed once a tag goes idle.
    tags: BTreeMap<String, TagState>,
    /// Hard per-tag ceilings ([`DevicePool::set_tag_cap`]). Kept separate
    /// from `tags` so a quota outlives the tag going idle.
    caps: BTreeMap<String, usize>,
}

#[derive(Debug, Default)]
struct TagState {
    in_use: usize,
    waiting: usize,
}

impl DevicePool {
    /// A pool of `devices` slots with no occupancy emulation.
    #[must_use]
    pub fn new(devices: usize) -> Arc<Self> {
        Self::with_hold(devices, Duration::ZERO)
    }

    /// A pool of `devices` slots whose leases each occupy their device for
    /// at least `hold` of real time.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero.
    #[must_use]
    pub fn with_hold(devices: usize, hold: Duration) -> Arc<Self> {
        assert!(devices > 0, "a device pool needs at least one device");
        Arc::new(DevicePool {
            state: Mutex::new(PoolState {
                free: (0..devices).rev().collect(),
                tags: BTreeMap::new(),
                caps: BTreeMap::new(),
            }),
            freed: Condvar::new(),
            devices,
            hold,
        })
    }

    /// Number of device slots.
    #[must_use]
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Devices currently free (diagnostic).
    #[must_use]
    pub fn free_now(&self) -> usize {
        lock_or_recover(&self.state).free.len()
    }

    /// Sets (or with `None` clears) a *hard* ceiling on the devices `tag`
    /// may hold concurrently. The quota composes with the soft fair-share
    /// cap: a tag is eligible only when it is under both. A cap of zero is
    /// clamped to one — a zero quota would block that tag's `acquire`
    /// forever. Already-held leases are unaffected; the quota bites on the
    /// next acquisition.
    pub fn set_tag_cap(&self, tag: &str, cap: Option<usize>) {
        let mut st = lock_or_recover(&self.state);
        match cap {
            Some(c) => {
                st.caps.insert(tag.to_string(), c.max(1));
            }
            None => {
                st.caps.remove(tag);
            }
        }
        drop(st);
        // A raised/cleared quota may make a blocked waiter eligible.
        self.freed.notify_all();
    }

    /// The hard quota currently set for `tag`, if any.
    #[must_use]
    pub fn tag_cap(&self, tag: &str) -> Option<usize> {
        lock_or_recover(&self.state).caps.get(tag).copied()
    }

    /// Blocks until a device is available to `tag` under fair share, then
    /// leases it. The lease releases its device on drop.
    #[must_use]
    pub fn acquire(self: &Arc<Self>, tag: &str) -> DeviceLease {
        let mut st = lock_or_recover(&self.state);
        st.tags.entry(tag.to_string()).or_default().waiting += 1;
        loop {
            if let Some(id) = self.try_take(&mut st, tag) {
                // aal-lint: allow(unwrap, reason = "the tag was registered earlier in this function")
                let me = st.tags.get_mut(tag).expect("tag registered above");
                me.waiting -= 1;
                me.in_use += 1;
                drop(st);
                let tel = telemetry::global();
                tel.count("exec.device.acquires", 1);
                tel.count(&format!("exec.device.{id}.acquires"), 1);
                #[allow(clippy::cast_precision_loss)]
                let busy = (self.devices - self.free_now()) as f64;
                tel.observe("exec.device.pool_busy", busy);
                if tel.has_live_registry() {
                    tel.gauge("exec.devices.busy.now", busy);
                    tel.gauge(&format!("exec.device.{id}.busy.now"), 1.0);
                }
                return DeviceLease {
                    pool: Arc::clone(self),
                    id,
                    tag: tag.to_string(),
                    // aal-lint: allow(wall-clock, reason = "device lease hold-time metric; observability only")
                    acquired: Instant::now(),
                };
            }
            st = self.freed.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Pops a free device for `tag` if fair share allows it right now.
    fn try_take(&self, st: &mut PoolState, tag: &str) -> Option<usize> {
        if st.free.is_empty() {
            return None;
        }
        let active = st.tags.values().filter(|t| t.in_use + t.waiting > 0).count().max(1);
        let cap = self.devices.div_ceil(active);
        // aal-lint: allow(unwrap, reason = "acquire registers the tag before try_take can run")
        let me = st.tags.get(tag).expect("tag registered before try_take");
        // A hard quota is absolute: at the ceiling the tag is ineligible no
        // matter how idle the rest of the pool is.
        if let Some(&hard) = st.caps.get(tag) {
            if me.in_use >= hard {
                return None;
            }
        }
        let other_waiters =
            st.tags.iter().filter(|(name, t)| name.as_str() != tag && t.waiting > 0).count();
        // Under the cap: always eligible. Over it: only when no other tag
        // is waiting, or enough free devices remain for every other
        // waiting tag to take one anyway.
        let eligible = me.in_use < cap || other_waiters == 0 || st.free.len() > other_waiters;
        if eligible {
            st.free.pop()
        } else {
            None
        }
    }

    /// Returns `id` to the pool (lease drop).
    fn release(&self, id: usize, tag: &str) {
        let mut st = lock_or_recover(&self.state);
        st.free.push(id);
        if let Some(me) = st.tags.get_mut(tag) {
            me.in_use = me.in_use.saturating_sub(1);
            if me.in_use == 0 && me.waiting == 0 {
                st.tags.remove(tag);
            }
        }
        drop(st);
        self.freed.notify_all();
    }
}

/// An exclusive hold on one device slot; releases on drop.
#[derive(Debug)]
pub struct DeviceLease {
    pool: Arc<DevicePool>,
    id: usize,
    tag: String,
    acquired: Instant,
}

impl DeviceLease {
    /// The leased device id, `0..pool.devices()`.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }
}

impl Drop for DeviceLease {
    fn drop(&mut self) {
        // Occupancy emulation: pad the lease to the configured hold, as if
        // the device were still crunching the kernel's timed repeats.
        let elapsed = self.acquired.elapsed();
        if self.pool.hold > elapsed {
            std::thread::sleep(self.pool.hold - elapsed);
        }
        let busy = self.acquired.elapsed();
        let tel = telemetry::global();
        #[allow(clippy::cast_possible_truncation)]
        let busy_us = busy.as_micros() as u64;
        tel.count(&format!("exec.device.{}.busy_us", self.id), busy_us);
        #[allow(clippy::cast_precision_loss)]
        tel.observe("exec.device.busy_us", busy_us as f64);
        self.pool.release(self.id, &self.tag);
        if tel.has_live_registry() {
            tel.gauge(&format!("exec.device.{}.busy.now", self.id), 0.0);
            #[allow(clippy::cast_precision_loss)]
            let busy = (self.pool.devices - self.pool.free_now()) as f64;
            tel.gauge("exec.devices.busy.now", busy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn leases_hand_out_distinct_devices_and_release_on_drop() {
        let pool = DevicePool::new(2);
        let a = pool.acquire("t1");
        let b = pool.acquire("t1");
        assert_ne!(a.id(), b.id());
        assert_eq!(pool.free_now(), 0);
        drop(a);
        assert_eq!(pool.free_now(), 1);
        let c = pool.acquire("t1");
        drop(b);
        drop(c);
        assert_eq!(pool.free_now(), 2);
    }

    #[test]
    fn single_tag_can_use_the_whole_pool() {
        // The cap is soft: with nobody else waiting, one task takes all.
        let pool = DevicePool::new(3);
        let leases: Vec<_> = (0..3).map(|_| pool.acquire("only")).collect();
        assert_eq!(pool.free_now(), 0);
        drop(leases);
    }

    #[test]
    fn fair_share_lets_a_waiting_tag_in() {
        // Tag A holds both devices; when A releases one while B waits, B
        // must get it even if A asked again first.
        let pool = DevicePool::new(2);
        let a1 = pool.acquire("a");
        let a2 = pool.acquire("a");
        let b_got = Arc::new(AtomicUsize::new(usize::MAX));
        let waiter = {
            let (pool, b_got) = (Arc::clone(&pool), Arc::clone(&b_got));
            std::thread::spawn(move || {
                let lease = pool.acquire("b");
                b_got.store(lease.id(), Ordering::SeqCst);
                lease
            })
        };
        // Give the waiter time to register, then free one device. A is at
        // its fair-share cap (ceil(2/2) = 1) while B waits, so the freed
        // device must go to B even though this thread could also re-ask.
        while lock_or_recover(&pool.state).tags.get("b").map_or(0, |t| t.waiting) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(a1);
        let b_lease = waiter.join().unwrap();
        assert_ne!(b_got.load(Ordering::SeqCst), usize::MAX);
        // With B holding one and A holding one, a fresh A request is over
        // cap only if B waits again; B is satisfied, so A may proceed.
        drop(a2);
        let a3 = pool.acquire("a");
        drop(a3);
        drop(b_lease);
        assert_eq!(pool.free_now(), 2);
    }

    #[test]
    fn occupancy_hold_pads_short_leases() {
        let pool = DevicePool::with_hold(1, Duration::from_millis(30));
        let t0 = Instant::now();
        drop(pool.acquire("t"));
        assert!(t0.elapsed() >= Duration::from_millis(30), "lease must hold the device");
    }

    #[test]
    fn hard_cap_binds_even_on_an_idle_pool() {
        // Unlike the soft fair-share cap, a quota holds with zero
        // contention: the tag blocks at its ceiling while devices idle.
        let pool = DevicePool::new(4);
        pool.set_tag_cap("tenant", Some(2));
        assert_eq!(pool.tag_cap("tenant"), Some(2));
        let a = pool.acquire("tenant");
        let b = pool.acquire("tenant");
        assert_eq!(pool.free_now(), 2);
        let blocked = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.acquire("tenant"))
        };
        std::thread::sleep(Duration::from_millis(30));
        assert!(!blocked.is_finished(), "third lease must block at the quota");
        // Another tag is unaffected by tenant's quota.
        let other = pool.acquire("other");
        drop(a);
        let c = blocked.join().unwrap();
        drop(b);
        drop(c);
        drop(other);
        // Clearing the quota lifts the ceiling.
        pool.set_tag_cap("tenant", None);
        let all: Vec<_> = (0..4).map(|_| pool.acquire("tenant")).collect();
        assert_eq!(pool.free_now(), 0);
        drop(all);
        // A zero cap is clamped to one instead of deadlocking acquire.
        pool.set_tag_cap("z", Some(0));
        assert_eq!(pool.tag_cap("z"), Some(1));
        drop(pool.acquire("z"));
    }
}

#[cfg(test)]
mod quota_properties {
    use super::*;
    use proptest::prelude::*;
    use std::panic::AssertUnwindSafe;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Tracks the concurrent high-water mark of leases per tag.
    struct HighWater {
        now: AtomicUsize,
        max: AtomicUsize,
    }

    impl HighWater {
        fn new() -> Self {
            HighWater { now: AtomicUsize::new(0), max: AtomicUsize::new(0) }
        }

        fn enter(&self) {
            let n = self.now.fetch_add(1, Ordering::SeqCst) + 1;
            self.max.fetch_max(n, Ordering::SeqCst);
        }

        fn exit(&self) {
            self.now.fetch_sub(1, Ordering::SeqCst);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Fair share under quotas, ≥3 concurrent tags, panicking workers:
        /// no tag ever holds more devices than its hard cap, and every
        /// lease — including those dropped during a panic unwind — returns
        /// to the pool (no leaks: the pool ends fully free).
        #[test]
        fn quotas_hold_and_leases_never_leak_under_panics(
            devices in 1usize..6,
            caps in proptest::collection::vec(1usize..4, 3..5),
            leases_per_tag in 2usize..8,
            panic_mask in 0u32..64,
        ) {
            let pool = DevicePool::new(devices);
            let tags: Vec<String> = (0..caps.len()).map(|i| format!("tenant-{i}")).collect();
            for (tag, &cap) in tags.iter().zip(&caps) {
                pool.set_tag_cap(tag, Some(cap));
            }
            let water: Vec<Arc<HighWater>> =
                tags.iter().map(|_| Arc::new(HighWater::new())).collect();
            let workers: Vec<_> = tags
                .iter()
                .enumerate()
                .map(|(i, tag)| {
                    let pool = Arc::clone(&pool);
                    let water = Arc::clone(&water[i]);
                    let tag = tag.clone();
                    std::thread::spawn(move || {
                        for n in 0..leases_per_tag {
                            // A panicking worker must still release its
                            // lease through the unwind.
                            let panics = panic_mask & (1 << ((i * leases_per_tag + n) % 6)) != 0;
                            let attempt = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                let lease = pool.acquire(&tag);
                                water.enter();
                                std::thread::sleep(Duration::from_micros(200));
                                water.exit();
                                assert!(!panics, "injected worker panic");
                                drop(lease);
                            }));
                            let _ = attempt;
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
            for (i, (&cap, hw)) in caps.iter().zip(&water).enumerate() {
                let seen = hw.max.load(Ordering::SeqCst);
                prop_assert!(
                    seen <= cap.min(devices),
                    "tag {i} held {seen} devices concurrently, cap {cap}, pool {devices}"
                );
            }
            prop_assert_eq!(pool.free_now(), devices, "leases leaked (panic unwind?)");
        }
    }
}

//! [`DevicePool`]: N simulated device slots with fair-share allocation.
//!
//! Runner workers acquire a device lease before measuring, exactly like
//! AutoTVM runners attaching to boards on an RPC tracker. The pool adds
//! two behaviors on top of plain slot handout:
//!
//! * **fair share across tasks** — leases are tagged (by task name); when
//!   several tasks compete for the pool, a task already holding its fair
//!   share (`ceil(devices / active_tags)`) yields to a waiting task
//!   instead of monopolizing the pool. The cap is *soft*: a surplus of
//!   free devices, or the absence of any other waiter, lets a task exceed
//!   it, so devices never idle while exactly one task wants them.
//! * **occupancy emulation** — an optional real-time hold keeps the
//!   device (and its runner) busy for a configurable duration per lease,
//!   standing in for the device-side round-trip a simulator otherwise
//!   lacks. Results are unaffected; only wall-clock occupancy is modeled.
//!
//! Fairness can transiently leave a free device idle when every waiting
//! tag is at its cap; the next lease release re-evaluates, so stalls are
//! bounded by a single measurement. Telemetry: per-device acquire/busy
//! counters (`exec.device.N.*`) and a pool-wide busy histogram.

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};
use telemetry::sync::lock_or_recover;

/// A pool of simulated device slots shared by runner workers.
#[derive(Debug)]
pub struct DevicePool {
    state: Mutex<PoolState>,
    freed: Condvar,
    devices: usize,
    hold: Duration,
}

#[derive(Debug)]
struct PoolState {
    /// Free device ids (LIFO: hot devices are reused first).
    free: Vec<usize>,
    /// Per-tag accounting; entries are removed once a tag goes idle.
    tags: BTreeMap<String, TagState>,
}

#[derive(Debug, Default)]
struct TagState {
    in_use: usize,
    waiting: usize,
}

impl DevicePool {
    /// A pool of `devices` slots with no occupancy emulation.
    #[must_use]
    pub fn new(devices: usize) -> Arc<Self> {
        Self::with_hold(devices, Duration::ZERO)
    }

    /// A pool of `devices` slots whose leases each occupy their device for
    /// at least `hold` of real time.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero.
    #[must_use]
    pub fn with_hold(devices: usize, hold: Duration) -> Arc<Self> {
        assert!(devices > 0, "a device pool needs at least one device");
        Arc::new(DevicePool {
            state: Mutex::new(PoolState {
                free: (0..devices).rev().collect(),
                tags: BTreeMap::new(),
            }),
            freed: Condvar::new(),
            devices,
            hold,
        })
    }

    /// Number of device slots.
    #[must_use]
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Devices currently free (diagnostic).
    #[must_use]
    pub fn free_now(&self) -> usize {
        lock_or_recover(&self.state).free.len()
    }

    /// Blocks until a device is available to `tag` under fair share, then
    /// leases it. The lease releases its device on drop.
    #[must_use]
    pub fn acquire(self: &Arc<Self>, tag: &str) -> DeviceLease {
        let mut st = lock_or_recover(&self.state);
        st.tags.entry(tag.to_string()).or_default().waiting += 1;
        loop {
            if let Some(id) = self.try_take(&mut st, tag) {
                // aal-lint: allow(unwrap, reason = "the tag was registered earlier in this function")
                let me = st.tags.get_mut(tag).expect("tag registered above");
                me.waiting -= 1;
                me.in_use += 1;
                drop(st);
                let tel = telemetry::global();
                tel.count("exec.device.acquires", 1);
                tel.count(&format!("exec.device.{id}.acquires"), 1);
                #[allow(clippy::cast_precision_loss)]
                let busy = (self.devices - self.free_now()) as f64;
                tel.observe("exec.device.pool_busy", busy);
                if tel.has_live_registry() {
                    tel.gauge("exec.devices.busy.now", busy);
                    tel.gauge(&format!("exec.device.{id}.busy.now"), 1.0);
                }
                return DeviceLease {
                    pool: Arc::clone(self),
                    id,
                    tag: tag.to_string(),
                    // aal-lint: allow(wall-clock, reason = "device lease hold-time metric; observability only")
                    acquired: Instant::now(),
                };
            }
            st = self.freed.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Pops a free device for `tag` if fair share allows it right now.
    fn try_take(&self, st: &mut PoolState, tag: &str) -> Option<usize> {
        if st.free.is_empty() {
            return None;
        }
        let active = st.tags.values().filter(|t| t.in_use + t.waiting > 0).count().max(1);
        let cap = self.devices.div_ceil(active);
        // aal-lint: allow(unwrap, reason = "acquire registers the tag before try_take can run")
        let me = st.tags.get(tag).expect("tag registered before try_take");
        let other_waiters =
            st.tags.iter().filter(|(name, t)| name.as_str() != tag && t.waiting > 0).count();
        // Under the cap: always eligible. Over it: only when no other tag
        // is waiting, or enough free devices remain for every other
        // waiting tag to take one anyway.
        let eligible = me.in_use < cap || other_waiters == 0 || st.free.len() > other_waiters;
        if eligible {
            st.free.pop()
        } else {
            None
        }
    }

    /// Returns `id` to the pool (lease drop).
    fn release(&self, id: usize, tag: &str) {
        let mut st = lock_or_recover(&self.state);
        st.free.push(id);
        if let Some(me) = st.tags.get_mut(tag) {
            me.in_use = me.in_use.saturating_sub(1);
            if me.in_use == 0 && me.waiting == 0 {
                st.tags.remove(tag);
            }
        }
        drop(st);
        self.freed.notify_all();
    }
}

/// An exclusive hold on one device slot; releases on drop.
#[derive(Debug)]
pub struct DeviceLease {
    pool: Arc<DevicePool>,
    id: usize,
    tag: String,
    acquired: Instant,
}

impl DeviceLease {
    /// The leased device id, `0..pool.devices()`.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }
}

impl Drop for DeviceLease {
    fn drop(&mut self) {
        // Occupancy emulation: pad the lease to the configured hold, as if
        // the device were still crunching the kernel's timed repeats.
        let elapsed = self.acquired.elapsed();
        if self.pool.hold > elapsed {
            std::thread::sleep(self.pool.hold - elapsed);
        }
        let busy = self.acquired.elapsed();
        let tel = telemetry::global();
        #[allow(clippy::cast_possible_truncation)]
        let busy_us = busy.as_micros() as u64;
        tel.count(&format!("exec.device.{}.busy_us", self.id), busy_us);
        #[allow(clippy::cast_precision_loss)]
        tel.observe("exec.device.busy_us", busy_us as f64);
        self.pool.release(self.id, &self.tag);
        if tel.has_live_registry() {
            tel.gauge(&format!("exec.device.{}.busy.now", self.id), 0.0);
            #[allow(clippy::cast_precision_loss)]
            let busy = (self.pool.devices - self.pool.free_now()) as f64;
            tel.gauge("exec.devices.busy.now", busy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn leases_hand_out_distinct_devices_and_release_on_drop() {
        let pool = DevicePool::new(2);
        let a = pool.acquire("t1");
        let b = pool.acquire("t1");
        assert_ne!(a.id(), b.id());
        assert_eq!(pool.free_now(), 0);
        drop(a);
        assert_eq!(pool.free_now(), 1);
        let c = pool.acquire("t1");
        drop(b);
        drop(c);
        assert_eq!(pool.free_now(), 2);
    }

    #[test]
    fn single_tag_can_use_the_whole_pool() {
        // The cap is soft: with nobody else waiting, one task takes all.
        let pool = DevicePool::new(3);
        let leases: Vec<_> = (0..3).map(|_| pool.acquire("only")).collect();
        assert_eq!(pool.free_now(), 0);
        drop(leases);
    }

    #[test]
    fn fair_share_lets_a_waiting_tag_in() {
        // Tag A holds both devices; when A releases one while B waits, B
        // must get it even if A asked again first.
        let pool = DevicePool::new(2);
        let a1 = pool.acquire("a");
        let a2 = pool.acquire("a");
        let b_got = Arc::new(AtomicUsize::new(usize::MAX));
        let waiter = {
            let (pool, b_got) = (Arc::clone(&pool), Arc::clone(&b_got));
            std::thread::spawn(move || {
                let lease = pool.acquire("b");
                b_got.store(lease.id(), Ordering::SeqCst);
                lease
            })
        };
        // Give the waiter time to register, then free one device. A is at
        // its fair-share cap (ceil(2/2) = 1) while B waits, so the freed
        // device must go to B even though this thread could also re-ask.
        while lock_or_recover(&pool.state).tags.get("b").map_or(0, |t| t.waiting) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(a1);
        let b_lease = waiter.join().unwrap();
        assert_ne!(b_got.load(Ordering::SeqCst), usize::MAX);
        // With B holding one and A holding one, a fresh A request is over
        // cap only if B waits again; B is satisfied, so A may proceed.
        drop(a2);
        let a3 = pool.acquire("a");
        drop(a3);
        drop(b_lease);
        assert_eq!(pool.free_now(), 2);
    }

    #[test]
    fn occupancy_hold_pads_short_leases() {
        let pool = DevicePool::with_hold(1, Duration::from_millis(30));
        let t0 = Instant::now();
        drop(pool.acquire("t"));
        assert!(t0.elapsed() >= Duration::from_millis(30), "lease must hold the device");
    }
}

//! Task-level scheduling: run many independent work items concurrently
//! while returning results in a deterministic order.
//!
//! This is the layer that tunes multiple `TuningTask`s at once: each item
//! is claimed in index order by a bounded pool of scoped threads, and the
//! result vector is assembled by index, so callers observe exactly the
//! output of the serial loop regardless of completion order. Fair-share
//! *device* allocation between the concurrent tasks happens one layer
//! down, in [`crate::DevicePool`], keyed by the task name each measurement
//! batch carries.

use std::sync::{Mutex, PoisonError};
use std::time::Instant;
use telemetry::sync::lock_or_recover;

/// Runs `f` over every item with up to `concurrency` worker threads,
/// returning results in item order (index `i` of the output is item `i`'s
/// result, as if the loop had run serially).
///
/// `concurrency <= 1` degrades to a plain in-thread loop — no threads are
/// spawned, so the serial path is bit-for-bit the pre-parallel behavior.
///
/// # Panics
///
/// Propagates a panic from `f` once all workers have stopped.
pub fn run_ordered<T, R, F>(items: Vec<T>, concurrency: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let concurrency = concurrency.clamp(1, n.max(1));
    if concurrency <= 1 {
        return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let tel = telemetry::global();
    #[allow(clippy::cast_precision_loss)]
    tel.observe("exec.sched.concurrency", concurrency as f64);
    let work = Mutex::new(items.into_iter().enumerate());
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // aal-lint: allow(wall-clock, reason = "scheduler wall-time metric; trial order is fixed by slot index, not by time")
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..concurrency {
            scope.spawn(|| loop {
                // Claim the next item in index order; drop the lock before
                // the (long) call so claims never serialize the work.
                let claimed = lock_or_recover(&work).next();
                let Some((i, item)) = claimed else { break };
                let r = f(i, item);
                *lock_or_recover(&results[i]) = Some(r);
            });
        }
    });
    tel.observe("exec.sched.wall_us", started.elapsed().as_secs_f64() * 1e6);
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                // aal-lint: allow(unwrap, reason = "scoped join guarantees every claimed slot was filled")
                .expect("scope join guarantees every claimed slot is filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_item_order_for_any_concurrency() {
        let items: Vec<usize> = (0..37).collect();
        let serial = run_ordered(items.clone(), 1, |i, x| (i, x * x));
        for workers in [2, 4, 16] {
            let parallel = run_ordered(items.clone(), workers, |i, x| (i, x * x));
            assert_eq!(parallel, serial, "workers={workers}");
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let hits = AtomicUsize::new(0);
        let out = run_ordered((0..100).collect(), 8, |_, x: i32| {
            hits.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(out.len(), 100);
        assert_eq!(hits.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn concurrency_is_clamped_to_item_count() {
        // 1000 workers over 3 items must not spawn 1000 threads or hang.
        let out = run_ordered(vec![1, 2, 3], 1000, |_, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        assert!(run_ordered(Vec::<u8>::new(), 4, |_, x| x).is_empty());
    }
}

//! The two-stage build→run measurement pipeline.
//!
//! ```text
//!   measure_batch(configs)                      deterministic re-sequencing
//!        │  (backpressured submit)                        ▲
//!        ▼                                                │ slot[seq]
//!   [build queue] → builder workers → [run queue] → runner workers
//!                   (lower/validate)                (DevicePool lease +
//!                                                    Measurer::measure)
//! ```
//!
//! Every job carries its submission index (`seq`); runners write results
//! into that slot of a shared per-batch buffer, so the vector handed back
//! by [`Executor::measure_batch`] is in submission order no matter which
//! worker finished first. Because the wrapped measurer stack is seeded and
//! keyed per `(task, config)` — and one configuration's attempts (first
//! try plus robust retries) always run on a single worker — trial logs are
//! byte-identical to the serial path for any worker count.

use crate::device::DevicePool;
use crate::queue::BoundedQueue;
use dnn_graph::task::TuningTask;
use gpu_sim::{MeasureError, MeasureErrorKind, MeasureResult, Measurer};
use schedule::kernel::lower;
use schedule::{Config, ConfigSpace};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use telemetry::sync::lock_or_recover;

/// Pool sizing and pipeline tuning for [`Executor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorConfig {
    /// Runner worker threads (the `--workers` knob).
    pub workers: usize,
    /// Builder worker threads feeding the runners.
    pub builders: usize,
    /// Simulated devices in the [`DevicePool`] (the `--devices` knob).
    pub devices: usize,
    /// Backpressure bound of each stage queue.
    pub queue_capacity: usize,
    /// Per-lease device occupancy emulation (see [`DevicePool::with_hold`]).
    pub device_hold: Duration,
}

impl ExecutorConfig {
    /// Symmetric sizing for `workers` runner threads: as many builders,
    /// one device per runner, and two queue slots per worker.
    #[must_use]
    pub fn for_workers(workers: usize) -> Self {
        let w = workers.max(1);
        ExecutorConfig {
            workers: w,
            builders: w,
            devices: w,
            queue_capacity: 2 * w,
            device_hold: Duration::ZERO,
        }
    }

    /// Overrides the device count (clamped to at least one).
    #[must_use]
    pub fn with_devices(mut self, devices: usize) -> Self {
        self.devices = devices.max(1);
        self
    }

    /// Overrides the per-stage queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Enables device occupancy emulation: each lease holds its device for
    /// at least `hold` of real time.
    #[must_use]
    pub fn with_device_hold(mut self, hold: Duration) -> Self {
        self.device_hold = hold;
        self
    }
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig::for_workers(1)
    }
}

/// Shared bookkeeping of one submitted batch.
#[derive(Debug)]
struct Batch {
    task: Arc<TuningTask>,
    space: Arc<ConfigSpace>,
    state: Mutex<BatchState>,
    done: Condvar,
}

#[derive(Debug)]
struct BatchState {
    /// Result slots indexed by submission order.
    results: Vec<Option<MeasureResult>>,
    remaining: usize,
}

impl Batch {
    fn complete(&self, seq: usize, result: MeasureResult) {
        let mut st = lock_or_recover(&self.state);
        debug_assert!(st.results[seq].is_none(), "slot {seq} completed twice");
        st.results[seq] = Some(result);
        st.remaining -= 1;
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }
}

/// One configuration travelling the pipeline.
#[derive(Debug)]
struct BuildJob {
    seq: usize,
    config: Config,
    batch: Arc<Batch>,
}

/// A built job heading to the runners.
#[derive(Debug)]
struct RunJob {
    job: BuildJob,
    /// Lowering verdict from the build stage: known-invalid configurations
    /// skip device acquisition (a refused launch never occupies a board).
    valid: bool,
}

/// An in-flight batch; [`BatchHandle::wait`] blocks for the ordered results.
#[derive(Debug)]
pub struct BatchHandle {
    batch: Arc<Batch>,
    submitted: Instant,
}

impl BatchHandle {
    /// Blocks until every job of the batch completed, returning results in
    /// submission order. Completion is guaranteed even if the executor is
    /// dropped after the submit: shutdown drains accepted jobs.
    #[must_use]
    pub fn wait(self) -> Vec<MeasureResult> {
        let mut st = lock_or_recover(&self.batch.state);
        while st.remaining > 0 {
            st = self.batch.done.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        let results: Vec<MeasureResult> = st
            .results
            .drain(..)
            // aal-lint: allow(unwrap, reason = "remaining == 0 means every result slot was filled")
            .map(|r| r.expect("remaining == 0 means every slot filled"))
            .collect();
        drop(st);
        let tel = telemetry::global();
        tel.observe("exec.batch.wall_us", self.submitted.elapsed().as_secs_f64() * 1e6);
        results
    }
}

/// A pooled [`Measurer`]: batches fan out over builder/runner workers and
/// a [`DevicePool`], results come back re-sequenced by submission index.
///
/// Wrap the full measurement stack once and share the executor by
/// reference; per-measure policy (fault injection, retry, quarantine)
/// stays inside the wrapped stack, which worker threads drive through a
/// shared `Arc`.
#[derive(Debug)]
pub struct Executor<M> {
    measurer: Arc<M>,
    build_q: Arc<BoundedQueue<BuildJob>>,
    run_q: Arc<BoundedQueue<RunJob>>,
    devices: Arc<DevicePool>,
    builders: Vec<JoinHandle<()>>,
    runners: Vec<JoinHandle<()>>,
    config: ExecutorConfig,
}

impl<M: Measurer + Send + Sync + 'static> Executor<M> {
    /// Spawns the worker pools and wraps `measurer`, with a private
    /// [`DevicePool`] sized by `config`.
    #[must_use]
    pub fn new(measurer: M, config: ExecutorConfig) -> Self {
        let pool = DevicePool::with_hold(config.devices, config.device_hold);
        Self::with_pool(measurer, config, pool, None)
    }

    /// Like [`Executor::new`], but leasing devices from a caller-provided
    /// (possibly shared) pool instead of a private one, and optionally
    /// overriding the lease tag. By default leases are tagged with the
    /// task name (fair share *between tasks* of one run); a serving
    /// deployment passes the tenant id as `lease_tag` so several
    /// executors sharing one pool contend *between tenants*, with
    /// [`DevicePool::set_tag_cap`] quotas enforced across all of them.
    /// `config.devices` / `config.device_hold` are ignored — the shared
    /// pool's own sizing wins.
    #[must_use]
    pub fn with_pool(
        measurer: M,
        config: ExecutorConfig,
        devices: Arc<DevicePool>,
        lease_tag: Option<String>,
    ) -> Self {
        let measurer = Arc::new(measurer);
        let lease_tag: Option<Arc<str>> = lease_tag.map(Into::into);
        let build_q = Arc::new(BoundedQueue::new(config.queue_capacity, "exec.queue.build.depth"));
        let run_q = Arc::new(BoundedQueue::new(config.queue_capacity, "exec.queue.run.depth"));
        let builders = (0..config.builders.max(1))
            .map(|i| {
                let (bq, rq) = (Arc::clone(&build_q), Arc::clone(&run_q));
                std::thread::Builder::new()
                    .name(format!("exec-build-{i}"))
                    .spawn(move || builder_loop(&bq, &rq))
                    // aal-lint: allow(unwrap, reason = "thread spawn fails only on OS resource exhaustion; no recovery at this layer")
                    .expect("spawn builder")
            })
            .collect();
        let runners = (0..config.workers.max(1))
            .map(|i| {
                let rq = Arc::clone(&run_q);
                let pool = Arc::clone(&devices);
                let m = Arc::clone(&measurer);
                let tag = lease_tag.clone();
                std::thread::Builder::new()
                    .name(format!("exec-run-{i}"))
                    .spawn(move || runner_loop(&rq, &pool, &*m, tag.as_deref()))
                    // aal-lint: allow(unwrap, reason = "thread spawn fails only on OS resource exhaustion; no recovery at this layer")
                    .expect("spawn runner")
            })
            .collect();
        Executor { measurer, build_q, run_q, devices, builders, runners, config }
    }

    /// The wrapped measurer (e.g. for quarantine snapshots).
    #[must_use]
    pub fn inner(&self) -> &M {
        &self.measurer
    }

    /// The pool configuration this executor runs with.
    #[must_use]
    pub fn pool_config(&self) -> &ExecutorConfig {
        &self.config
    }

    /// The shared device pool (diagnostics).
    #[must_use]
    pub fn device_pool(&self) -> &Arc<DevicePool> {
        &self.devices
    }

    /// Submits a batch without waiting; pushes block under backpressure.
    /// Pair with [`BatchHandle::wait`] — [`Executor::measure_batch`] does
    /// exactly that.
    #[must_use]
    pub fn submit_batch(
        &self,
        task: &TuningTask,
        space: &ConfigSpace,
        configs: &[Config],
    ) -> BatchHandle {
        let tel = telemetry::global();
        let batch = Arc::new(Batch {
            task: Arc::new(task.clone()),
            space: Arc::new(space.clone()),
            state: Mutex::new(BatchState {
                results: vec![None; configs.len()],
                remaining: configs.len(),
            }),
            done: Condvar::new(),
        });
        tel.count("exec.batch.submitted", 1);
        #[allow(clippy::cast_precision_loss)]
        tel.observe("exec.batch.size", configs.len() as f64);
        for (seq, config) in configs.iter().enumerate() {
            let job = BuildJob { seq, config: config.clone(), batch: Arc::clone(&batch) };
            if let Err(job) = self.build_q.push(job) {
                // Unreachable while the executor is alive (`&self` blocks
                // `Drop`), but never strand a slot: fail it explicitly.
                job.batch.complete(
                    job.seq,
                    MeasureResult::failed(MeasureError::new(
                        MeasureErrorKind::DeviceLost,
                        "executor shut down during submit",
                    )),
                );
            }
        }
        // aal-lint: allow(wall-clock, reason = "batch wall-time metric; results are ordered by slot, never by time")
        BatchHandle { batch, submitted: Instant::now() }
    }
}

impl<M: Measurer + Send + Sync + 'static> Measurer for Executor<M> {
    fn measure(&self, task: &TuningTask, space: &ConfigSpace, config: &Config) -> MeasureResult {
        self.measure_batch(task, space, std::slice::from_ref(config))
            .pop()
            // aal-lint: allow(unwrap, reason = "submitting one job guarantees one result")
            .expect("one submitted job yields one result")
    }

    fn measure_batch(
        &self,
        task: &TuningTask,
        space: &ConfigSpace,
        configs: &[Config],
    ) -> Vec<MeasureResult> {
        if configs.is_empty() {
            return Vec::new();
        }
        self.submit_batch(task, space, configs).wait()
    }

    fn repeats(&self) -> usize {
        self.measurer.repeats()
    }

    fn quarantined(&self, task: &TuningTask) -> Vec<u64> {
        self.measurer.quarantined(task)
    }
}

impl<M> Drop for Executor<M> {
    fn drop(&mut self) {
        // Two-phase drain: builders first (they still feed the run queue),
        // then runners. Jobs already accepted all complete — `close` only
        // stops *new* submissions.
        self.build_q.close();
        for h in self.builders.drain(..) {
            let _ = h.join();
        }
        self.run_q.close();
        for h in self.runners.drain(..) {
            let _ = h.join();
        }
    }
}

/// Build stage: validate/lower the configuration (AutoTVM's compile step)
/// and forward it to the runners.
fn builder_loop(build_q: &BoundedQueue<BuildJob>, run_q: &BoundedQueue<RunJob>) {
    let tel = telemetry::global();
    loop {
        // aal-lint: allow(wall-clock, reason = "worker idle/busy accounting exported as telemetry only")
        let idle = Instant::now();
        let Some(job) = build_q.pop() else { break };
        record_us(&tel, "exec.worker.build.idle_us", idle);
        // aal-lint: allow(wall-clock, reason = "worker idle/busy accounting exported as telemetry only")
        let busy = Instant::now();
        tel.gauge_add("exec.workers.build.busy.now", 1.0);
        let valid = lower(&job.batch.task, &job.batch.space, &job.config).is_ok();
        tel.count(if valid { "exec.build.ok" } else { "exec.build.invalid" }, 1);
        tel.observe("exec.build_us", busy.elapsed().as_secs_f64() * 1e6);
        record_us(&tel, "exec.worker.build.busy_us", busy);
        tel.gauge_add("exec.workers.build.busy.now", -1.0);
        if run_q.push(RunJob { job, valid }).is_err() {
            // Run queue closed before this job could be forwarded — only
            // possible on teardown after all batches completed; nothing to
            // hand the result to.
            break;
        }
    }
}

/// Run stage: lease a device, measure through the wrapped stack, complete
/// the batch slot. Leases are tagged with `lease_tag` when set (shared
/// pools contending between tenants), else the task name.
fn runner_loop<M: Measurer>(
    run_q: &BoundedQueue<RunJob>,
    pool: &Arc<DevicePool>,
    measurer: &M,
    lease_tag: Option<&str>,
) {
    let tel = telemetry::global();
    loop {
        // aal-lint: allow(wall-clock, reason = "worker idle/busy accounting exported as telemetry only")
        let idle = Instant::now();
        let Some(RunJob { job, valid }) = run_q.pop() else { break };
        record_us(&tel, "exec.worker.run.idle_us", idle);
        // aal-lint: allow(wall-clock, reason = "worker idle/busy accounting exported as telemetry only")
        let busy = Instant::now();
        tel.gauge_add("exec.workers.run.busy.now", 1.0);
        let tag = lease_tag.unwrap_or(&job.batch.task.name);
        let lease = valid.then(|| pool.acquire(tag));
        let result = measurer.measure(&job.batch.task, &job.batch.space, &job.config);
        drop(lease);
        tel.count("exec.jobs.total", 1);
        record_us(&tel, "exec.worker.run.busy_us", busy);
        tel.gauge_add("exec.workers.run.busy.now", -1.0);
        job.batch.complete(job.seq, result);
    }
}

/// Accumulates elapsed-µs into a counter (utilization = busy/(busy+idle)).
fn record_us(tel: &telemetry::Telemetry, name: &str, since: Instant) {
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    tel.count(name, (since.elapsed().as_secs_f64() * 1e6) as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::{models, task::extract_tasks};
    use gpu_sim::{GpuDevice, SimMeasurer};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use schedule::template::space_for_task;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn setup() -> (TuningTask, ConfigSpace) {
        let task = extract_tasks(&models::mobilenet_v1(1)).remove(0);
        let space = space_for_task(&task);
        (task, space)
    }

    fn sample(space: &ConfigSpace, n: usize, seed: u64) -> Vec<Config> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| space.sample(&mut rng)).collect()
    }

    #[test]
    fn batch_results_match_the_serial_path_in_order() {
        let (task, space) = setup();
        let serial = SimMeasurer::new(GpuDevice::gtx_1080_ti());
        let exec = Executor::new(
            SimMeasurer::new(GpuDevice::gtx_1080_ti()),
            ExecutorConfig::for_workers(4),
        );
        let configs = sample(&space, 64, 42);
        let expect: Vec<MeasureResult> =
            configs.iter().map(|c| serial.measure(&task, &space, c)).collect();
        assert_eq!(exec.measure_batch(&task, &space, &configs), expect);
        // And a second batch through the same pools still matches.
        let more = sample(&space, 16, 43);
        let expect2: Vec<MeasureResult> =
            more.iter().map(|c| serial.measure(&task, &space, c)).collect();
        assert_eq!(exec.measure_batch(&task, &space, &more), expect2);
    }

    #[test]
    fn single_measure_goes_through_the_pipeline() {
        let (task, space) = setup();
        let serial = SimMeasurer::new(GpuDevice::gtx_1080_ti());
        let exec =
            Executor::new(SimMeasurer::new(GpuDevice::gtx_1080_ti()), ExecutorConfig::default());
        let cfg = &sample(&space, 1, 7)[0];
        assert_eq!(exec.measure(&task, &space, cfg), serial.measure(&task, &space, cfg));
        assert_eq!(exec.repeats(), serial.repeats());
    }

    /// A measurer that blocks until released, for stall/shutdown tests.
    struct GatedMeasurer {
        inner: SimMeasurer,
        gate: Arc<(Mutex<bool>, Condvar)>,
        measured: Arc<AtomicUsize>,
    }

    impl Measurer for GatedMeasurer {
        fn measure(
            &self,
            task: &TuningTask,
            space: &ConfigSpace,
            config: &Config,
        ) -> MeasureResult {
            let (lock, cv) = &*self.gate;
            let mut open = lock_or_recover(&lock);
            while !*open {
                open = cv.wait(open).unwrap();
            }
            drop(open);
            self.measured.fetch_add(1, Ordering::SeqCst);
            self.inner.measure(task, space, config)
        }
    }

    type Gate = Arc<(Mutex<bool>, Condvar)>;

    fn gated() -> (GatedMeasurer, Gate, Arc<AtomicUsize>) {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let measured = Arc::new(AtomicUsize::new(0));
        let m = GatedMeasurer {
            inner: SimMeasurer::new(GpuDevice::gtx_1080_ti()),
            gate: Arc::clone(&gate),
            measured: Arc::clone(&measured),
        };
        (m, gate, measured)
    }

    fn open_gate(gate: &Arc<(Mutex<bool>, Condvar)>) {
        *lock_or_recover(&gate.0) = true;
        gate.1.notify_all();
    }

    #[test]
    fn submit_applies_backpressure_when_runners_stall() {
        let (task, space) = setup();
        let (m, gate, _measured) = gated();
        // 1 runner, 1 builder, queue capacity 2: with the runner stalled,
        // at most 1 (runner) + 2 (run q) + 1 (builder) + 2 (build q) = 6
        // jobs can be in flight; a 64-config batch must block mid-submit.
        let exec = Arc::new(Executor::new(
            m,
            ExecutorConfig {
                workers: 1,
                builders: 1,
                devices: 1,
                queue_capacity: 2,
                device_hold: Duration::ZERO,
            },
        ));
        let configs = sample(&space, 64, 9);
        let submitter = {
            let (exec, task, space, configs) =
                (Arc::clone(&exec), task.clone(), space.clone(), configs.clone());
            std::thread::spawn(move || exec.measure_batch(&task, &space, &configs).len())
        };
        // The submit thread must still be blocked (bounded memory, no OOM)
        // well after it would have finished unimpeded.
        std::thread::sleep(Duration::from_millis(100));
        assert!(!submitter.is_finished(), "submit must block while runners stall");
        assert!(exec.build_q.len() <= 2, "build queue stays within its bound");
        open_gate(&gate);
        assert_eq!(submitter.join().unwrap(), 64, "all results arrive after the stall clears");
    }

    #[test]
    fn shutdown_mid_batch_drains_without_losing_results() {
        let (task, space) = setup();
        let (m, gate, measured) = gated();
        let exec = Executor::new(
            m,
            ExecutorConfig {
                workers: 2,
                builders: 2,
                devices: 2,
                queue_capacity: 4,
                device_hold: Duration::ZERO,
            },
        );
        let configs = sample(&space, 8, 10);
        let handle = exec.submit_batch(&task, &space, &configs);
        // Drop the executor while every job is still gated. Drop must not
        // deadlock: it closes the queues, opens nothing early, and joins
        // workers only after they drain the accepted jobs.
        let dropper = std::thread::spawn(move || drop(exec));
        std::thread::sleep(Duration::from_millis(50));
        assert!(!dropper.is_finished(), "drop must wait for in-flight jobs");
        open_gate(&gate);
        dropper.join().unwrap();
        let results = handle.wait();
        assert_eq!(results.len(), 8, "no result may be lost on shutdown");
        assert_eq!(measured.load(Ordering::SeqCst), 8, "every job ran exactly once");
    }

    #[test]
    fn empty_batch_returns_immediately() {
        let (task, space) = setup();
        let exec =
            Executor::new(SimMeasurer::new(GpuDevice::gtx_1080_ti()), ExecutorConfig::default());
        assert!(exec.measure_batch(&task, &space, &[]).is_empty());
    }
}

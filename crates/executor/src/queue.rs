//! A bounded multi-producer/multi-consumer queue built on
//! `Mutex` + `Condvar` (the workspace is std-only).
//!
//! Two properties matter to the executor:
//!
//! * **backpressure** — [`BoundedQueue::push`] *blocks* once the queue
//!   holds `capacity` items, so a fast producer (the tuning loop
//!   submitting a batch) can never run ahead of stalled runners by more
//!   than a bounded amount of memory;
//! * **close-to-drain shutdown** — [`BoundedQueue::close`] wakes every
//!   blocked producer and consumer, after which consumers keep draining
//!   the remaining items and only then observe `None`. Nothing already
//!   accepted is ever dropped.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use telemetry::sync::lock_or_recover;

/// A blocking bounded FIFO shared by reference between threads.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    /// Telemetry histogram observed with the queue depth on every push.
    depth_metric: &'static str,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, depth_metric: &'static str) -> Self {
        assert!(capacity > 0, "a zero-capacity queue cannot make progress");
        BoundedQueue {
            state: Mutex::new(State { items: VecDeque::with_capacity(capacity), closed: false }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
            depth_metric,
        }
    }

    /// Enqueues `item`, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue was closed (shutdown) before it
    /// could be accepted.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = lock_or_recover(&self.state);
        loop {
            if st.closed {
                return Err(item);
            }
            if st.items.len() < self.capacity {
                break;
            }
            st = self.not_full.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.items.push_back(item);
        let tel = telemetry::global();
        #[allow(clippy::cast_precision_loss)]
        let depth = st.items.len() as f64;
        tel.observe(self.depth_metric, depth);
        self.publish_depth(&tel, depth);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Mirrors the instantaneous depth into a live gauge (`<metric>.now`)
    /// for dashboards. Only pays the name allocation when a live registry
    /// is actually attached.
    fn publish_depth(&self, tel: &telemetry::Telemetry, depth: f64) {
        if tel.has_live_registry() {
            tel.gauge(&format!("{}.now", self.depth_metric), depth);
        }
    }

    /// Dequeues the next item, blocking while the queue is empty. Returns
    /// `None` only once the queue is closed *and* fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = lock_or_recover(&self.state);
        loop {
            if let Some(item) = st.items.pop_front() {
                let tel = telemetry::global();
                #[allow(clippy::cast_precision_loss)]
                self.publish_depth(&tel, st.items.len() as f64);
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: producers fail fast, consumers drain then stop.
    pub fn close(&self) {
        lock_or_recover(&self.state).closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        lock_or_recover(&self.state).items.len()
    }

    /// True if nothing is queued right now.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The backpressure bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_within_capacity() {
        let q = BoundedQueue::new(4, "test.depth");
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn push_blocks_at_capacity_instead_of_growing() {
        // The backpressure contract: a producer shoving far more items
        // than `capacity` at a stalled consumer must block, not OOM.
        let q = Arc::new(BoundedQueue::new(2, "test.depth"));
        let pushed = Arc::new(AtomicUsize::new(0));
        let producer = {
            let (q, pushed) = (Arc::clone(&q), Arc::clone(&pushed));
            std::thread::spawn(move || {
                for i in 0..50 {
                    q.push(i).unwrap();
                    pushed.fetch_add(1, Ordering::SeqCst);
                }
            })
        };
        // With no consumer, progress must stop at exactly `capacity`.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pushed.load(Ordering::SeqCst) < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(pushed.load(Ordering::SeqCst), 2, "producer must block at capacity");
        assert_eq!(q.len(), 2);
        // Draining un-blocks it and every item arrives in order.
        for i in 0..50 {
            assert_eq!(q.pop(), Some(i));
        }
        producer.join().unwrap();
        assert_eq!(pushed.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn close_drains_remaining_items_then_stops() {
        let q = BoundedQueue::new(8, "test.depth");
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3), "push after close hands the item back");
        assert_eq!(q.pop(), Some(1), "accepted items survive the close");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn depth_gauge_tracks_live_queue_depth() {
        // With a registry-backed global handle, push/pop mirror the
        // instantaneous depth into a `<metric>.now` gauge.
        let reg = Arc::new(telemetry::MetricsRegistry::new());
        telemetry::set_global(telemetry::Telemetry::with_registry(
            telemetry::VecSink::new(),
            Arc::clone(&reg),
        ));
        let q = BoundedQueue::new(8, "gaugetest.depth");
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert!((reg.snapshot().gauge("gaugetest.depth.now") - 2.0).abs() < 1e-12);
        let _ = q.pop();
        assert!((reg.snapshot().gauge("gaugetest.depth.now") - 1.0).abs() < 1e-12);
        telemetry::set_global(telemetry::Telemetry::disabled());
        // Without a registry the gauge path is a no-op and pushes still work.
        q.push(3).unwrap();
        assert!((reg.snapshot().gauge("gaugetest.depth.now") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(2, "test.depth"));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn close_while_many_consumers_blocked_wakes_all_and_drains_exactly_once() {
        // The server's shutdown path: several workers are parked in `pop`
        // on a non-empty-then-empty queue when `close` lands. Every one of
        // them must wake (no deadlocked thread left behind), the remaining
        // items must each be delivered to exactly one consumer, and every
        // consumer must eventually observe `None`.
        for round in 0..20 {
            let q = Arc::new(BoundedQueue::<u32>::new(8, "test.depth"));
            let consumers: Vec<_> = (0..6)
                .map(|_| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Some(item) = q.pop() {
                            got.push(item);
                        }
                        got
                    })
                })
                .collect();
            // Let the consumers park, then race a few items against close.
            // Varying the pre-close sleep across rounds shifts the
            // interleaving between "all parked" and "mid-drain".
            std::thread::sleep(Duration::from_micros(200 * round));
            for i in 0..5 {
                q.push(i).unwrap();
            }
            q.close();
            let mut delivered: Vec<u32> = Vec::new();
            for c in consumers {
                delivered.extend(c.join().expect("no consumer may deadlock or panic"));
            }
            delivered.sort_unstable();
            assert_eq!(delivered, vec![0, 1, 2, 3, 4], "each item drains exactly once");
        }
    }
}

//! Cross-layer determinism: tuning through the parallel [`Executor`] must
//! reproduce the serial measurement path byte-for-byte.
//!
//! This is the contract that makes `tune --workers N` safe to use for
//! paper-figure runs: for a fixed seed, the trial JSONL, the best GFLOPS,
//! and the quarantine state are identical at every worker count — with and
//! without fault injection.

use active_learning::{tune_task, Method, TuneOptions};
use dnn_graph::models;
use dnn_graph::task::extract_tasks;
use executor::{Executor, ExecutorConfig};
use gpu_sim::{
    FaultConfig, FaultInjectingMeasurer, GpuDevice, Quarantine, RetryPolicy, RobustMeasurer,
    SimMeasurer,
};
use proptest::prelude::*;

/// One tuning run through the full production measurer stack
/// (`Executor<RobustMeasurer<FaultInjectingMeasurer<SimMeasurer>>>`),
/// returning the trial log as JSONL bytes plus the best GFLOPS and the
/// final quarantine.
fn tune_with_workers(
    workers: usize,
    seed: u64,
    fault_rate: f64,
    method: Method,
) -> (String, f64, Quarantine) {
    let task = extract_tasks(&models::squeezenet_v1_1(1)).remove(0);
    let sim = SimMeasurer::new(GpuDevice::gtx_1080_ti());
    let faulty = FaultInjectingMeasurer::new(sim, FaultConfig { rate: fault_rate, seed: 7 });
    let robust = RobustMeasurer::new(faulty, RetryPolicy::default());
    let exec = Executor::new(robust, ExecutorConfig::for_workers(workers));
    let opts = TuneOptions { n_trial: 48, early_stopping: 48, seed, ..TuneOptions::smoke() };
    let r = tune_task(&task, &exec, method, &opts);
    let jsonl: String = r
        .log
        .records
        .iter()
        .map(|rec| serde_json::to_string(rec).expect("trial record serializes") + "\n")
        .collect();
    (jsonl, r.best_gflops, exec.inner().quarantine_snapshot())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    /// For any seed, with faults on or off, worker counts 2 and 8 yield the
    /// trial log of the serial run byte-for-byte.
    #[test]
    fn worker_count_never_changes_the_trial_log(
        seed in 0u64..1_000_000,
        fault_rate in prop_oneof![Just(0.0), Just(0.1)],
    ) {
        let (base_log, base_best, base_q) = tune_with_workers(1, seed, fault_rate, Method::Bted);
        prop_assert!(!base_log.is_empty());
        for workers in [2usize, 8] {
            let (log, best, q) = tune_with_workers(workers, seed, fault_rate, Method::Bted);
            prop_assert_eq!(
                &log, &base_log,
                "trial JSONL diverged at workers={} seed={} fault={}", workers, seed, fault_rate
            );
            prop_assert_eq!(best, base_best);
            prop_assert_eq!(&q, &base_q);
        }
    }
}

#[test]
fn faulty_bao_run_is_identical_across_worker_counts() {
    // BAO exercises a different proposal path (bootstrap ensemble +
    // neighborhood search); check it survives parallel measurement too,
    // under a 10% fault rate so retries and quarantine are in play.
    let (base_log, base_best, base_q) = tune_with_workers(1, 42, 0.1, Method::BtedBao);
    assert!(!base_log.is_empty());
    for workers in [2usize, 8] {
        let (log, best, q) = tune_with_workers(workers, 42, 0.1, Method::BtedBao);
        assert_eq!(log, base_log, "workers={workers}");
        assert_eq!(best, base_best);
        assert_eq!(q, base_q);
    }
}

#[test]
fn capture_is_byte_identical_across_worker_counts() {
    // Model-introspection capture must not perturb the measurement loop:
    // with capture ON, trial JSONL at workers {1, 8} stays byte-identical
    // to the capture-OFF serial log, and the captured model records are
    // themselves identical at every worker count.
    use active_learning::{tune_task_with, ModelPredRecord, TuneHooks};

    let run = |workers: usize, capture: bool| -> (String, Vec<ModelPredRecord>) {
        let task = extract_tasks(&models::squeezenet_v1_1(1)).remove(0);
        let sim = SimMeasurer::new(GpuDevice::gtx_1080_ti());
        let exec = Executor::new(sim, ExecutorConfig::for_workers(workers));
        let opts = TuneOptions {
            n_trial: 48,
            early_stopping: 48,
            seed: 11,
            capture_model: Some(capture),
            ..TuneOptions::smoke()
        };
        let mut records = Vec::new();
        let mut sink = |r: &ModelPredRecord| records.push(r.clone());
        let r = tune_task_with(
            &task,
            &exec,
            Method::Bted,
            &opts,
            TuneHooks { on_model: Some(&mut sink), ..TuneHooks::default() },
        );
        let jsonl: String = r
            .log
            .records
            .iter()
            .map(|rec| serde_json::to_string(rec).expect("trial record serializes") + "\n")
            .collect();
        (jsonl, records)
    };

    let (plain_log, plain_records) = run(1, false);
    assert!(plain_records.is_empty(), "capture off must produce no records");
    let (base_log, base_records) = run(1, true);
    assert_eq!(base_log, plain_log, "capture changed the serial trial log");
    assert!(!base_records.is_empty());
    for workers in [2usize, 8] {
        let (log, records) = run(workers, true);
        assert_eq!(log, base_log, "workers={workers}");
        assert_eq!(records, base_records, "workers={workers}");
    }
}

#[test]
fn executor_wrapped_model_tuning_matches_serial() {
    // Task-level parallelism: tune_model_parallel with several tasks in
    // flight must fold to exactly the serial result.
    let g = models::squeezenet_v1_1(1);
    let m = SimMeasurer::new(GpuDevice::gtx_1080_ti());
    let opts = TuneOptions { n_trial: 24, early_stopping: 24, ..TuneOptions::smoke() };
    let serial = active_learning::model_tuning::tune_model(&g, &m, Method::Random, &opts, 60);
    let parallel =
        active_learning::model_tuning::tune_model_parallel(&g, &m, Method::Random, &opts, 60, 4);
    assert_eq!(serde_json::to_string(&parallel).unwrap(), serde_json::to_string(&serial).unwrap());
}

//! Transfer learning across tasks (reference \[17\] in the paper).
//!
//! AutoTVM accelerates tuning by seeding a new task with knowledge from
//! previously tuned, similar tasks. We implement the configuration-transfer
//! variant: take the top configurations from a finished log, map their knob
//! choices into the new task's space (clipping each choice to the new
//! knob's cardinality), and prepend them to the initial measurement set.

use crate::records::TuningLog;
use schedule::{Config, ConfigSpace};

/// Counter bumped once per stale prior record skipped during transfer.
pub const STALE_RECORD_COUNTER: &str = "transfer.stale_record";

/// What happened while mapping a prior log into a new space. A transfer
/// that silently drops records is indistinguishable from one that found
/// nothing worth transferring; these counts make the difference visible.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Successful trials considered (gflops > 0).
    pub considered: usize,
    /// Records whose `config_index` no longer decodes in the prior space —
    /// the log predates a template change. Skipped, counted, reported.
    pub stale: usize,
    /// Configurations that collided with an earlier (better) one after
    /// clipping into the target space.
    pub deduplicated: usize,
    /// Configurations actually transferred.
    pub transferred: usize,
}

/// Maps the top-`k` configurations of `prior` (tuned on `prior_space`) into
/// `space`, best first, returning the configs plus a [`TransferStats`]
/// accounting for every record considered. Stale records (a `config_index`
/// out of range for `prior_space` — the template changed since the log was
/// written) are skipped, counted in the stats, and bumped on the
/// [`STALE_RECORD_COUNTER`]; configurations that collide after clipping
/// are deduplicated.
///
/// Returns no configs when the spaces have different knob counts —
/// transfer only makes sense between tasks of the same template family.
#[must_use]
pub fn warm_start_configs(
    space: &ConfigSpace,
    prior_space: &ConfigSpace,
    prior: &TuningLog,
    k: usize,
) -> (Vec<Config>, TransferStats) {
    let mut stats = TransferStats::default();
    if space.num_knobs() != prior_space.num_knobs() {
        return (Vec::new(), stats);
    }
    let mut ranked: Vec<_> = prior.records.iter().filter(|r| r.gflops > 0.0).collect();
    ranked.sort_by(|a, b| b.gflops.total_cmp(&a.gflops));

    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(k);
    for rec in ranked {
        if out.len() >= k {
            break;
        }
        stats.considered += 1;
        let Ok(prior_cfg) = prior_space.config(rec.config_index) else {
            stats.stale += 1;
            continue;
        };
        // aal-lint: allow(unwrap, reason = "knob-count equality is checked just above")
        let cfg = space.map_choices(&prior_cfg.choices).expect("knob counts checked equal above");
        if seen.insert(cfg.index) {
            out.push(cfg);
        } else {
            stats.deduplicated += 1;
        }
    }
    stats.transferred = out.len();
    if stats.stale > 0 {
        telemetry::global().count(STALE_RECORD_COUNTER, stats.stale as u64);
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::TrialRecord;
    use schedule::Knob;

    fn space(extent: usize) -> ConfigSpace {
        ConfigSpace::new(
            format!("s{extent}"),
            vec![Knob::split("a", extent, 2), Knob::choice("u", vec![0, 1])],
        )
    }

    fn log_with(prior_space: &ConfigSpace, entries: &[(u64, f64)]) -> TuningLog {
        let mut log = TuningLog::new(prior_space.task_name.clone(), "autotvm");
        for (i, &(idx, g)) in entries.iter().enumerate() {
            log.records.push(TrialRecord {
                trial: i,
                config_index: idx,
                gflops: g,
                latency_s: 1e-3,
                best_gflops: g,
            });
        }
        log
    }

    #[test]
    fn transfers_best_first_and_dedupes() {
        let prior_space = space(64);
        let new_space = space(64);
        let log = log_with(&prior_space, &[(0, 10.0), (5, 99.0), (3, 50.0)]);
        let (got, stats) = warm_start_configs(&new_space, &prior_space, &log, 2);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].index, 5);
        assert_eq!(got[1].index, 3);
        assert_eq!(stats.transferred, 2);
        assert_eq!(stats.stale, 0);
    }

    #[test]
    fn clips_choices_into_smaller_space() {
        let prior_space = space(1024); // 11 split candidates
        let new_space = space(16); // 5 split candidates
        let last = prior_space.len() - 1;
        let log = log_with(&prior_space, &[(last, 42.0)]);
        let (got, stats) = warm_start_configs(&new_space, &prior_space, &log, 1);
        assert_eq!(got.len(), 1);
        for (&c, k) in got[0].choices.iter().zip(new_space.knobs()) {
            assert!(c < k.cardinality());
        }
        assert_eq!(stats, TransferStats { considered: 1, transferred: 1, ..Default::default() });
    }

    #[test]
    fn mismatched_templates_transfer_nothing() {
        let prior_space = space(64);
        let other = ConfigSpace::new("other", vec![Knob::choice("x", vec![0, 1])]);
        let log = log_with(&prior_space, &[(1, 5.0)]);
        assert!(warm_start_configs(&other, &prior_space, &log, 4).0.is_empty());
    }

    #[test]
    fn failed_trials_are_ignored() {
        let prior_space = space(64);
        let log = log_with(&prior_space, &[(1, 0.0), (2, 0.0)]);
        let (got, stats) = warm_start_configs(&prior_space, &prior_space, &log, 4);
        assert!(got.is_empty());
        assert_eq!(stats.considered, 0, "failed trials never count as considered");
    }

    #[test]
    fn stale_records_are_skipped_counted_and_reported() {
        let prior_space = space(64);
        let beyond = prior_space.len() + 3;
        // Two stale entries outrank a valid one: both must be surfaced in
        // the stats (and on the telemetry counter), not silently eaten.
        let log = log_with(&prior_space, &[(beyond, 90.0), (beyond + 1, 80.0), (2, 50.0)]);
        let sink = telemetry::VecSink::new();
        telemetry::set_global(telemetry::Telemetry::new(sink.clone()));
        let (got, stats) = warm_start_configs(&prior_space, &prior_space, &log, 4);
        telemetry::global().flush();
        telemetry::set_global(telemetry::Telemetry::disabled());
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].index, 2);
        assert_eq!(stats.stale, 2);
        assert_eq!(stats.considered, 3);
        assert_eq!(stats.transferred, 1);
        let counted: u64 = sink
            .records()
            .iter()
            .filter_map(|r| match r {
                telemetry::Record::Counter { name, value, .. } if name == STALE_RECORD_COUNTER => {
                    Some(*value)
                }
                _ => None,
            })
            .sum();
        assert_eq!(counted, 2, "stale skips must reach the trace");
    }
}

//! Transfer learning across tasks (reference \[17\] in the paper).
//!
//! AutoTVM accelerates tuning by seeding a new task with knowledge from
//! previously tuned, similar tasks. We implement the configuration-transfer
//! variant: take the top configurations from a finished log, map their knob
//! choices into the new task's space (clipping each choice to the new
//! knob's cardinality), and prepend them to the initial measurement set.

use crate::records::TuningLog;
use schedule::{Config, ConfigSpace};

/// Maps the top-`k` configurations of `prior` (tuned on `prior_space`) into
/// `space`, best first. Configurations that collide after clipping are
/// deduplicated.
///
/// Returns an empty vector when the spaces have different knob counts —
/// transfer only makes sense between tasks of the same template family.
#[must_use]
pub fn warm_start_configs(
    space: &ConfigSpace,
    prior_space: &ConfigSpace,
    prior: &TuningLog,
    k: usize,
) -> Vec<Config> {
    if space.num_knobs() != prior_space.num_knobs() {
        return Vec::new();
    }
    let mut ranked: Vec<_> = prior.records.iter().filter(|r| r.gflops > 0.0).collect();
    ranked.sort_by(|a, b| b.gflops.total_cmp(&a.gflops));

    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(k);
    for rec in ranked {
        if out.len() >= k {
            break;
        }
        let Ok(prior_cfg) = prior_space.config(rec.config_index) else {
            continue; // stale log entry
        };
        let choices: Vec<usize> = prior_cfg
            .choices
            .iter()
            .zip(space.knobs())
            .map(|(&c, knob)| c.min(knob.cardinality() - 1))
            .collect();
        let index = space.index_of(&choices);
        if seen.insert(index) {
            out.push(Config { index, choices });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::TrialRecord;
    use schedule::Knob;

    fn space(extent: usize) -> ConfigSpace {
        ConfigSpace::new(
            format!("s{extent}"),
            vec![Knob::split("a", extent, 2), Knob::choice("u", vec![0, 1])],
        )
    }

    fn log_with(prior_space: &ConfigSpace, entries: &[(u64, f64)]) -> TuningLog {
        let mut log = TuningLog::new(prior_space.task_name.clone(), "autotvm");
        for (i, &(idx, g)) in entries.iter().enumerate() {
            log.records.push(TrialRecord {
                trial: i,
                config_index: idx,
                gflops: g,
                latency_s: 1e-3,
                best_gflops: g,
            });
        }
        log
    }

    #[test]
    fn transfers_best_first_and_dedupes() {
        let prior_space = space(64);
        let new_space = space(64);
        let log = log_with(&prior_space, &[(0, 10.0), (5, 99.0), (3, 50.0)]);
        let got = warm_start_configs(&new_space, &prior_space, &log, 2);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].index, 5);
        assert_eq!(got[1].index, 3);
    }

    #[test]
    fn clips_choices_into_smaller_space() {
        let prior_space = space(1024); // 11 split candidates
        let new_space = space(16); // 5 split candidates
        let last = prior_space.len() - 1;
        let log = log_with(&prior_space, &[(last, 42.0)]);
        let got = warm_start_configs(&new_space, &prior_space, &log, 1);
        assert_eq!(got.len(), 1);
        for (&c, k) in got[0].choices.iter().zip(new_space.knobs()) {
            assert!(c < k.cardinality());
        }
    }

    #[test]
    fn mismatched_templates_transfer_nothing() {
        let prior_space = space(64);
        let other = ConfigSpace::new("other", vec![Knob::choice("x", vec![0, 1])]);
        let log = log_with(&prior_space, &[(1, 5.0)]);
        assert!(warm_start_configs(&other, &prior_space, &log, 4).is_empty());
    }

    #[test]
    fn failed_trials_are_ignored() {
        let prior_space = space(64);
        let log = log_with(&prior_space, &[(1, 0.0), (2, 0.0)]);
        assert!(warm_start_configs(&prior_space, &prior_space, &log, 4).is_empty());
    }
}

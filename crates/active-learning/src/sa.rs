//! Simulated annealing over a configuration space.
//!
//! AutoTVM's model-guided proposer (reference \[16\] in the paper): a population of
//! walkers mutates one knob at a time, accepting moves on the model score
//! with a linearly decaying temperature, while a running top-k of every
//! visited point becomes the next measurement plan.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use schedule::{Config, ConfigSpace};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Annealing parameters (AutoTVM defaults, scaled to this harness).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaOptions {
    /// Number of parallel walkers.
    pub parallel_size: usize,
    /// Mutation iterations.
    pub n_iter: usize,
    /// Start temperature (relative score units).
    pub temp_start: f64,
    /// Final temperature.
    pub temp_end: f64,
}

impl Default for SaOptions {
    fn default() -> Self {
        SaOptions { parallel_size: 64, n_iter: 120, temp_start: 1.0, temp_end: 0.0 }
    }
}

/// Mutates one random knob of `cfg` to a different candidate.
fn mutate(space: &ConfigSpace, cfg: &Config, rng: &mut StdRng) -> Config {
    let mut choices = cfg.choices.clone();
    // Find a knob with more than one candidate (spaces of interest always
    // have one, but stay total).
    for _ in 0..16 {
        let k = rng.gen_range(0..choices.len());
        let card = space.knobs()[k].cardinality();
        if card <= 1 {
            continue;
        }
        let mut c = rng.gen_range(0..card - 1);
        if c >= choices[k] {
            c += 1;
        }
        choices[k] = c;
        break;
    }
    let index = space.index_of(&choices);
    Config { index, choices }
}

#[derive(PartialEq)]
struct HeapItem {
    score: f64,
    index: u64,
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on score via reversal so the heap root is the worst of
        // the current top-k.
        other.score.total_cmp(&self.score).then(other.index.cmp(&self.index))
    }
}

/// Runs simulated annealing maximizing `score`, returning up to `plan_size`
/// distinct configurations ordered best-first.
///
/// `score` receives a batch of configurations and returns one value per
/// configuration (so the caller can use a batched model). `exclude` holds
/// already-measured indices that must not appear in the plan.
///
/// # Example
///
/// ```
/// use active_learning::sa::{simulated_annealing, SaOptions};
/// use schedule::{ConfigSpace, Knob};
/// use std::collections::BTreeSet;
///
/// let space = ConfigSpace::new("demo", vec![Knob::split("t", 256, 2)]);
/// // Prefer balanced splits: maximize min(outer, inner).
/// let plan = simulated_annealing(
///     &space,
///     |cands| cands.iter().map(|c| {
///         let f = space.values(c)[0].as_split().unwrap().to_vec();
///         f[0].min(f[1]) as f64
///     }).collect(),
///     &SaOptions::default(),
///     1,
///     &BTreeSet::new(),
///     42,
/// );
/// let best = space.values(&plan[0])[0].as_split().unwrap().to_vec();
/// assert_eq!(best, vec![16, 16]);
/// ```
pub fn simulated_annealing<S>(
    space: &ConfigSpace,
    score: S,
    opts: &SaOptions,
    plan_size: usize,
    exclude: &BTreeSet<u64>,
    seed: u64,
) -> Vec<Config>
where
    S: Fn(&[Config]) -> Vec<f64>,
{
    simulated_annealing_scored(space, score, opts, plan_size, exclude, seed)
        .into_iter()
        .map(|(cfg, _)| cfg)
        .collect()
}

/// [`simulated_annealing`] keeping each plan entry's model score.
///
/// The scores are already tracked by the top-k heap during the search, so
/// returning them costs nothing — this is what lets introspection capture
/// record acquisition scores without re-scoring the plan.
pub fn simulated_annealing_scored<S>(
    space: &ConfigSpace,
    score: S,
    opts: &SaOptions,
    plan_size: usize,
    exclude: &BTreeSet<u64>,
    seed: u64,
) -> Vec<(Config, f64)>
where
    S: Fn(&[Config]) -> Vec<f64>,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points: Vec<Config> = (0..opts.parallel_size).map(|_| space.sample(&mut rng)).collect();
    let mut scores = score(&points);

    // Top-k tracker over every point SA visits.
    let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
    let mut in_heap: BTreeSet<u64> = BTreeSet::new();
    let mut configs_by_index: BTreeMap<u64, Config> = BTreeMap::new();
    let offer = |heap: &mut BinaryHeap<HeapItem>,
                 in_heap: &mut BTreeSet<u64>,
                 configs_by_index: &mut BTreeMap<u64, Config>,
                 cfg: &Config,
                 s: f64| {
        if exclude.contains(&cfg.index) || in_heap.contains(&cfg.index) {
            return;
        }
        if heap.len() < plan_size {
            in_heap.insert(cfg.index);
            configs_by_index.insert(cfg.index, cfg.clone());
            heap.push(HeapItem { score: s, index: cfg.index });
        } else if let Some(worst) = heap.peek() {
            if s > worst.score {
                // aal-lint: allow(unwrap, reason = "guarded by the heap length check above")
                let removed = heap.pop().expect("heap non-empty");
                in_heap.remove(&removed.index);
                configs_by_index.remove(&removed.index);
                in_heap.insert(cfg.index);
                configs_by_index.insert(cfg.index, cfg.clone());
                heap.push(HeapItem { score: s, index: cfg.index });
            }
        }
    };

    for (p, &s) in points.iter().zip(&scores) {
        offer(&mut heap, &mut in_heap, &mut configs_by_index, p, s);
    }

    let tel = telemetry::global();
    let _span = tel.span("sa.search");
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for iter in 0..opts.n_iter {
        let t = opts.temp_start
            + (opts.temp_end - opts.temp_start) * (iter as f64 / opts.n_iter.max(1) as f64);
        let proposals: Vec<Config> = points.iter().map(|p| mutate(space, p, &mut rng)).collect();
        let new_scores = score(&proposals);
        for i in 0..points.len() {
            offer(&mut heap, &mut in_heap, &mut configs_by_index, &proposals[i], new_scores[i]);
            let accept = new_scores[i] > scores[i]
                || (t > 0.0 && rng.gen::<f64>() < ((new_scores[i] - scores[i]) / t).exp());
            if accept {
                accepted += 1;
                points[i] = proposals[i].clone();
                scores[i] = new_scores[i];
            } else {
                rejected += 1;
            }
        }
    }
    // One counter update per SA run, not per proposal: the inner loop stays
    // free of locks even when telemetry is enabled. The `sa.done` event
    // carries the same totals per invocation, so traces can reconstruct the
    // accept rate over time rather than only its end-of-run aggregate.
    tel.count("sa.proposals.accepted", accepted);
    tel.count("sa.proposals.rejected", rejected);
    tel.event(
        telemetry::events::SA_DONE_EVENT,
        || telemetry::json!({ "accepted": accepted, "rejected": rejected }),
    );

    let mut plan: Vec<HeapItem> = heap.into_vec();
    plan.sort_by(|a, b| b.score.total_cmp(&a.score));
    plan.into_iter()
        // aal-lint: allow(unwrap, reason = "offer() inserts into configs_by_index for every index it pushes on the heap")
        .map(|item| (configs_by_index.remove(&item.index).expect("config tracked"), item.score))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedule::Knob;

    fn toy_space() -> ConfigSpace {
        ConfigSpace::new("toy", vec![Knob::split("a", 1024, 2), Knob::split("b", 1024, 2)])
    }

    /// Score peaked at a specific knob combination.
    fn peaked_score(points: &[Config]) -> Vec<f64> {
        points
            .iter()
            .map(|c| {
                let a = c.choices[0] as f64;
                let b = c.choices[1] as f64;
                -((a - 7.0) * (a - 7.0) + (b - 3.0) * (b - 3.0))
            })
            .collect()
    }

    #[test]
    fn finds_the_peak_region() {
        let space = toy_space();
        let plan = simulated_annealing(
            &space,
            peaked_score,
            &SaOptions::default(),
            8,
            &BTreeSet::new(),
            1,
        );
        assert!(!plan.is_empty());
        // Best plan entry should be at/near the peak (7, 3).
        let best = &plan[0];
        assert!((best.choices[0] as f64 - 7.0).abs() <= 1.0);
        assert!((best.choices[1] as f64 - 3.0).abs() <= 1.0);
    }

    #[test]
    fn plan_is_distinct_and_sorted() {
        let space = toy_space();
        let plan = simulated_annealing(
            &space,
            peaked_score,
            &SaOptions::default(),
            16,
            &BTreeSet::new(),
            2,
        );
        let mut seen = BTreeSet::new();
        for c in &plan {
            assert!(seen.insert(c.index), "duplicate plan entry");
        }
        let scores = peaked_score(&plan);
        for w in scores.windows(2) {
            assert!(w[0] >= w[1], "plan not sorted best-first");
        }
    }

    #[test]
    fn excluded_indices_never_returned() {
        let space = toy_space();
        // Exclude the exact peak.
        let peak_choices = vec![7usize, 3usize];
        let peak_index = space.index_of(&peak_choices);
        let mut exclude = BTreeSet::new();
        exclude.insert(peak_index);
        let plan = simulated_annealing(&space, peaked_score, &SaOptions::default(), 8, &exclude, 3);
        assert!(plan.iter().all(|c| c.index != peak_index));
    }

    #[test]
    fn mutation_changes_exactly_one_knob() {
        let space = toy_space();
        let mut rng = StdRng::seed_from_u64(4);
        let base = space.config(100).unwrap();
        for _ in 0..50 {
            let m = mutate(&space, &base, &mut rng);
            let diffs = base.choices.iter().zip(&m.choices).filter(|(a, b)| a != b).count();
            assert_eq!(diffs, 1);
        }
    }

    #[test]
    fn scored_variant_matches_plain_and_reports_true_scores() {
        let space = toy_space();
        let plain = simulated_annealing(
            &space,
            peaked_score,
            &SaOptions::default(),
            8,
            &BTreeSet::new(),
            6,
        );
        let scored = simulated_annealing_scored(
            &space,
            peaked_score,
            &SaOptions::default(),
            8,
            &BTreeSet::new(),
            6,
        );
        assert_eq!(
            plain.iter().map(|c| c.index).collect::<Vec<_>>(),
            scored.iter().map(|(c, _)| c.index).collect::<Vec<_>>(),
            "scored variant must not change the plan"
        );
        for (cfg, s) in &scored {
            let truth = peaked_score(std::slice::from_ref(cfg))[0];
            assert_eq!(*s, truth, "plan score must be the model score of its config");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let space = toy_space();
        let a: Vec<u64> = simulated_annealing(
            &space,
            peaked_score,
            &SaOptions::default(),
            8,
            &BTreeSet::new(),
            9,
        )
        .iter()
        .map(|c| c.index)
        .collect();
        let b: Vec<u64> = simulated_annealing(
            &space,
            peaked_score,
            &SaOptions::default(),
            8,
            &BTreeSet::new(),
            9,
        )
        .iter()
        .map(|c| c.index)
        .collect();
        assert_eq!(a, b);
    }
}

//! End-to-end model tuning: tune every node, deploy, measure latency.
//!
//! Reproduces the paper's Table I protocol: tune each of the model's tasks
//! with a method, deploy the best configurations, run the model 600 times
//! and record the mean latency and its variance.

use crate::options::TuneOptions;
use crate::task_tuning::{tune_task, Method, TaskTuneResult};
use dnn_graph::task::{extract_tasks, TuningTask};
use dnn_graph::Graph;
use gpu_sim::{measure_model, KernelPerf, ModelDeployment, ModelLatency, SimMeasurer};
use schedule::template::space_for_task;
use serde::{Deserialize, Serialize};

/// Result of tuning and deploying one model with one method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelTuneResult {
    /// Model name.
    pub model_name: String,
    /// Method used.
    pub method: Method,
    /// End-to-end latency statistics over the measurement runs.
    pub latency: ModelLatency,
    /// Per-task tuning outcomes.
    pub tasks: Vec<TaskTuneResult>,
    /// Total configurations measured across all tasks.
    pub total_measurements: usize,
}

impl ModelTuneResult {
    /// Mean GFLOPS across tasks, weighted equally (Fig. 5(b) summary).
    #[must_use]
    pub fn mean_task_gflops(&self) -> f64 {
        if self.tasks.is_empty() {
            return 0.0;
        }
        self.tasks.iter().map(|t| t.best_gflops).sum::<f64>() / self.tasks.len() as f64
    }
}

/// Number of end-to-end runs the paper averages (Section V-A).
pub const PAPER_RUNS: usize = 600;

/// Tunes every task of `graph` with `method` and measures the deployed
/// model `runs` times.
///
/// The measurer must be a [`SimMeasurer`] (the deployment step needs
/// noise-free per-kernel performance, which only the simulator interface
/// exposes; a hardware measurer would re-time the kernels instead).
#[must_use]
pub fn tune_model(
    graph: &Graph,
    measurer: &SimMeasurer,
    method: Method,
    opts: &TuneOptions,
    runs: usize,
) -> ModelTuneResult {
    tune_model_parallel(graph, measurer, method, opts, runs, 1)
}

/// [`tune_model`] with up to `tasks_in_flight` tasks tuned concurrently.
///
/// Task seeds are derived from the task index, each task's trial stream is
/// independent of the others, and results are folded in task order, so the
/// outcome is identical to the serial loop for any `tasks_in_flight`.
#[must_use]
pub fn tune_model_parallel(
    graph: &Graph,
    measurer: &SimMeasurer,
    method: Method,
    opts: &TuneOptions,
    runs: usize,
    tasks_in_flight: usize,
) -> ModelTuneResult {
    let tel = telemetry::global();
    let _span = tel.span("tune_model");
    let tasks = extract_tasks(graph);
    let n_tasks = tasks.len();
    let per_task = executor::run_ordered(tasks, tasks_in_flight, |i, task| {
        tel.report(|| format!("{} ({method}): task {}/{n_tasks} {}", graph.name, i + 1, task.name));
        // Derive a per-task seed so tasks explore independently.
        let topts =
            TuneOptions { seed: opts.seed.wrapping_add((i as u64 + 1) * 0x9E37_79B9), ..*opts };
        let r = tune_task(&task, measurer, method, &topts);
        let perf = r.best_config.as_ref().map(|cfg| {
            let space = space_for_task(&task);
            // aal-lint: allow(unwrap, reason = "a positive best_gflops implies the config was measured valid")
            measurer.true_perf(&task, &space, cfg).expect("best config was measured as valid")
        });
        (task, r, perf)
    });

    let mut results = Vec::with_capacity(n_tasks);
    let mut tuned: Vec<(TuningTask, KernelPerf)> = Vec::with_capacity(n_tasks);
    let mut total = 0usize;
    for (task, r, perf) in per_task {
        total += r.num_measured;
        if let Some(perf) = perf {
            tuned.push((task, perf));
        }
        results.push(r);
    }

    let deployment = ModelDeployment::assemble(graph, &tuned, measurer.device());
    let latency = {
        let _deploy = tel.span("deploy_measure");
        measure_model(&deployment, runs, opts.seed)
    };
    ModelTuneResult {
        model_name: graph.name.clone(),
        method,
        latency,
        tasks: results,
        total_measurements: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::models;
    use gpu_sim::GpuDevice;

    #[test]
    fn tunes_and_deploys_squeezenet_smoke() {
        // SqueezeNet is the cheapest model; smoke budget keeps this fast.
        let g = models::squeezenet_v1_1(1);
        let m = SimMeasurer::new(GpuDevice::gtx_1080_ti());
        let opts = TuneOptions { n_trial: 40, early_stopping: 40, ..TuneOptions::smoke() };
        let r = tune_model(&g, &m, Method::AutoTvm, &opts, 60);
        assert_eq!(r.tasks.len(), 18);
        assert!(r.latency.mean_ms > 0.0);
        assert!(r.latency.variance >= 0.0);
        assert!(r.total_measurements > 0);
        assert!(r.mean_task_gflops() > 0.0);
    }
}
